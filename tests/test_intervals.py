"""The interval abstract domain: lattice operations, widening/narrowing
termination, the consts×intervals reduced product behind the domain
protocol, and the Deputy loop-bound discharge it enables."""

import pytest

from repro.dataflow import build_cfg
from repro.dataflow.domains import (
    DEFAULT_DOMAINS,
    DOMAIN_REGISTRY,
    FunctionFacts,
    domain_fingerprint,
    facts_of,
    solve_function_facts,
    solve_program_facts,
)
from repro.dataflow.intervals import (
    TOP,
    eval_interval,
    interval_condition_facts,
    join_interval,
    join_interval_envs,
    meet_interval,
    narrow_interval_envs,
    widen_interval,
    widen_interval_envs,
)
from repro.dataflow.solver import INFEASIBLE, FixpointDivergence
from repro.deputy.checker import (
    DeputyOptions,
    ObligationKind,
    ObligationStatus,
    check_program,
)
from repro.kernel.build import parse_corpus
from repro.kernel.corpus import CorpusFile
from repro.minic.parser import parse_expression


def parse(source: str, filename: str = "test.c"):
    return parse_corpus((CorpusFile(filename, source),))


def solve(source: str, name: str = "f") -> FunctionFacts:
    program = parse(source)
    facts = solve_function_facts(program.functions[name])
    assert facts is not None
    return facts


def expr(text: str):
    return parse_expression(text)


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------

class TestIntervalLattice:
    def test_join_is_hull(self):
        assert join_interval((0, 3), (5, 9)) == (0, 9)
        assert join_interval((None, 3), (5, 9)) == (None, 9)
        assert join_interval((0, None), (5, 9)) == (0, None)
        assert join_interval(TOP, (1, 2)) == TOP

    def test_meet_intersects(self):
        assert meet_interval((0, 10), (5, 20)) == (5, 10)
        assert meet_interval((None, 10), (5, None)) == (5, 10)
        assert meet_interval(TOP, (1, 2)) == (1, 2)

    def test_meet_of_disjoint_is_empty(self):
        assert meet_interval((0, 3), (5, 9)) is None

    def test_widen_drops_unstable_bounds(self):
        # The previous iterate's stable bound survives; a moving bound
        # widens to infinity on its moving side only.
        assert widen_interval((0, 1), (0, 2)) == (0, None)
        assert widen_interval((3, 9), (1, 9)) == (None, 9)
        assert widen_interval((0, 5), (0, 5)) == (0, 5)

    def test_env_widening_shrinks_name_set_monotonically(self):
        old = {"i": (0, 1), "j": TOP}
        new = {"i": (0, 2), "k": (1, 1)}
        widened = widen_interval_envs(old, new)
        # 'k' is absent from the old env (top there), 'j' was already top:
        # neither may reappear, so repeated widening strictly shrinks.
        assert widened == {"i": (0, None)}

    def test_env_join_drops_one_sided_names(self):
        joined = join_interval_envs({"i": (0, 1)}, {"j": (2, 3)})
        assert joined == {}

    def test_narrow_refills_only_widened_bounds(self):
        # Narrowing may recover a bound widening threw to infinity, but must
        # never move a finite bound (that could oscillate forever).
        assert narrow_interval_envs({"i": (0, None)}, {"i": (0, 10)}) == \
            {"i": (0, 10)}
        assert narrow_interval_envs({"i": (0, 5)}, {"i": (0, 3)}) == \
            {"i": (0, 5)}


class TestEvalInterval:
    @pytest.mark.parametrize("text, env, expected", [
        ("i", {"i": (0, 5)}, (0, 5)),
        ("i + 1", {"i": (0, 5)}, (1, 6)),
        ("i - 2", {"i": (0, 5)}, (-2, 3)),
        ("-i", {"i": (0, 5)}, (-5, 0)),
        ("i * 2", {"i": (1, 3)}, (2, 6)),
        ("3", {}, (3, 3)),
        ("i < 10", {"i": (0, 5)}, (1, 1)),
        ("i < 3", {"i": (5, 9)}, (0, 0)),
        ("i < 3", {"i": (0, 9)}, (0, 1)),
    ])
    def test_arithmetic_and_comparisons(self, text, env, expected):
        assert eval_interval(expr(text), env, {}) == expected

    def test_unknown_name_is_top(self):
        assert eval_interval(expr("x + 1"), {}, {}) == TOP

    def test_const_binding_refines(self):
        # The reduction with the constant lattice: a const binding is the
        # point interval even when the interval env knows nothing.
        assert eval_interval(expr("k"), {}, {"k": 7}) == (7, 7)

    def test_condition_facts_relational_effect(self):
        # The true edge of i < n teaches the *bound* something: n > i >= 0.
        facts = interval_condition_facts(expr("i < n"), True,
                                         {"i": (0, None), "n": TOP},
                                         {}, frozenset({"i", "n"}))
        assert facts is not INFEASIBLE
        assert facts["n"] == (1, None)

    def test_condition_facts_bound_index(self):
        facts = interval_condition_facts(expr("i < n"), True,
                                         {"n": (0, 10)},
                                         {}, frozenset({"i", "n"}))
        assert facts is not INFEASIBLE
        assert facts["i"] == (None, 9)

    def test_contradicted_condition_is_infeasible(self):
        facts = interval_condition_facts(expr("i < 0"), True,
                                         {"i": (0, None)}, {},
                                         frozenset({"i"}))
        assert facts is INFEASIBLE


# ---------------------------------------------------------------------------
# Widening termination
# ---------------------------------------------------------------------------

class TestWideningTermination:
    """Loops that diverge without widening must reach a fixpoint within the
    solver's bounded visit budget — no FixpointDivergence."""

    def test_simple_counting_loop(self):
        facts = solve("""
        int f(int n) {
            int i;
            int s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        }
        """)
        envs = {dict(env).get("i") for env in facts.interval_envs.values()}
        assert any(bounds and bounds[0] == 0 for bounds in envs if bounds)

    def test_nested_loops(self):
        solve("""
        int f(int n, int m) {
            int i;
            int j;
            int s = 0;
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < m; j = j + 1) {
                    s = s + i * j;
                }
            }
            return s;
        }
        """)

    def test_while_one_with_break(self):
        program = parse("""
        int f(void) {
            int i = 0;
            while (1) {
                if (i >= 100) { break; }
                i = i + 1;
            }
            return i;
        }
        """)
        func = program.functions["f"]
        facts = solve_function_facts(func)
        envs = [dict(env) for env in facts.interval_envs.values()]
        # Narrowing recovers the loop head's exact range from the back
        # edge, and the break edge's refinement pins the exit value; the
        # exit block itself may retain a widened bound (narrowing runs a
        # bounded number of rounds), which is sound, just less precise.
        assert {"i": (0, 100)} in envs    # loop head
        assert {"i": (100, 100)} in envs  # break arm
        exit_env = dict(facts.interval_envs.get(build_cfg(func).exit, ()))
        assert exit_env.get("i", TOP)[0] == 100

    def test_decrementing_loop(self):
        facts = solve("""
        int f(void) {
            int i = 10;
            int s = 0;
            while (i > 0) {
                s = s + i;
                i = i - 1;
            }
            return s;
        }
        """)
        envs = [dict(env) for env in facts.interval_envs.values()]
        assert any(env.get("i") == (0, 10) for env in envs)

    def test_mutual_recursion_scc(self):
        # Intraprocedural solves are per function; the SCC just means both
        # members solve independently under the same bounded budget.
        program = parse("""
        int is_odd(int n);
        int is_even(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) { }
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        """)
        for name in ("is_even", "is_odd"):
            assert solve_function_facts(program.functions[name]) is not None

    def test_no_divergence_on_two_counter_chase(self):
        # i chases j; both move every iteration.  Without widening this
        # ping-pongs forever.
        try:
            solve("""
            int f(int n) {
                int i = 0;
                int j = 1;
                while (i < n) {
                    i = i + 1;
                    j = j + 2;
                }
                return i + j;
            }
            """)
        except FixpointDivergence as exc:  # pragma: no cover - regression
            pytest.fail(f"widening failed to terminate: {exc}")


# ---------------------------------------------------------------------------
# The product solve and the domain protocol
# ---------------------------------------------------------------------------

class TestProductSolve:
    def test_facts_is_a_function_consts(self):
        from repro.dataflow.consts import FunctionConsts

        facts = solve("int f(int n) { if (n) { return 1; } return 0; }")
        assert isinstance(facts, FunctionConsts)
        assert facts.domains == DEFAULT_DOMAINS

    def test_interval_only_prune_attributed(self):
        # i >= 0 comes only from the interval lattice (the constant lattice
        # cannot represent a range), so the dead negative branch is an
        # interval-attributed prune.
        facts = solve("""
        int f(int n) {
            int i;
            int s = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i < 0) { s = -1; }
            }
            return s;
        }
        """)
        assert facts.interval_pruned
        assert facts.interval_pruned <= facts.infeasible

    def test_consts_prune_not_attributed_to_intervals(self):
        facts = solve("""
        int f(void) {
            int k = 0;
            if (k) { return 1; }
            return 0;
        }
        """)
        assert facts.infeasible
        assert not facts.interval_pruned

    def test_registry_and_fingerprint(self):
        assert set(DEFAULT_DOMAINS) <= set(DOMAIN_REGISTRY)
        assert domain_fingerprint(DEFAULT_DOMAINS) == "consts+intervals+octagons"
        assert domain_fingerprint(("consts",)) == "consts"

    def test_facts_of_caches_and_skips_branchless(self):
        program = parse("""
        int straight(int a) { return a + 1; }
        int branchy(int a) { if (a) { return 1; } return 0; }
        """)
        cache = {}
        assert facts_of(program.functions["straight"], cache=cache) is None
        first = facts_of(program.functions["branchy"], cache=cache)
        again = facts_of(program.functions["branchy"], cache=cache)
        assert first is again
        assert set(cache) == {"straight", "branchy"}

    def test_program_facts_cover_definition_order(self):
        program = parse("""
        int a(int x) { if (x) { return 1; } return 0; }
        int b(int x) { return x; }
        """)
        table = solve_program_facts(program)
        assert list(table) == ["a", "b"]
        assert table["b"] is None


# ---------------------------------------------------------------------------
# Deputy loop-bound discharge
# ---------------------------------------------------------------------------

class TestDeputyDischarge:
    def check(self, source: str):
        return check_program(parse(source), DeputyOptions())

    def index_statuses(self, results, name):
        return [ob.status for ob in results[name].obligations
                if ob.kind is ObligationKind.INDEX]

    def test_canonical_loop_discharges(self):
        results = self.check("""
        int sum(int * count(n) arr, int n) {
            int i;
            int s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        assert self.index_statuses(results, "sum") == [ObligationStatus.STATIC]

    def test_off_by_one_twin_keeps_check(self):
        results = self.check("""
        int sum(int * count(n) arr, int n) {
            int i;
            int s = 0;
            for (i = 0; i <= n; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        assert self.index_statuses(results, "sum") == [ObligationStatus.RUNTIME]

    def test_guarded_single_access_discharges(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i >= 0 && i < n) { return arr[i]; }
            return -1;
        }
        """)
        assert self.index_statuses(results, "get") == [ObligationStatus.STATIC]

    def test_missing_lower_bound_keeps_check(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i < n) { return arr[i]; }
            return -1;
        }
        """)
        assert self.index_statuses(results, "get") == [ObligationStatus.RUNTIME]

    def test_field_relative_count_discharges(self):
        results = self.check("""
        struct vec { int n; int * count(n) a; };
        int sum(struct vec *v nonnull) {
            int i;
            int s = 0;
            for (i = 0; i < v->n; i = i + 1) { s = s + v->a[i]; }
            return s;
        }
        """)
        assert self.index_statuses(results, "sum") == [ObligationStatus.STATIC]

    def test_write_to_index_kills_guard(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i >= 0 && i < n) {
                i = i + 1;
                return arr[i];
            }
            return -1;
        }
        """)
        assert self.index_statuses(results, "get") == [ObligationStatus.RUNTIME]

    def test_call_kills_heap_read_bound_guard(self):
        # g() may write v->n, so the guard recorded from i < v->n must die
        # across the call while a param-bound guard would survive.
        results = self.check("""
        struct vec { int n; int * count(n) a; };
        void g(void);
        int sum(struct vec *v nonnull, int i) {
            if (i >= 0 && i < v->n) {
                g();
                return v->a[i];
            }
            return -1;
        }
        """)
        assert self.index_statuses(results, "sum") == [ObligationStatus.RUNTIME]

    def test_discharge_active_with_optimizer_disabled(self):
        # Like constant facts, interval facts are checker precision, not an
        # optimization: the A1 ablation keeps them.
        results = check_program(parse("""
        int sum(int * count(n) arr, int n) {
            int i;
            int s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """), DeputyOptions(optimize=False))
        assert self.index_statuses(results, "sum") == [ObligationStatus.STATIC]

    def test_corpus_seeds(self):
        results = check_program(parse_corpus(), DeputyOptions())
        assert self.index_statuses(results, "sum_samples") == \
            [ObligationStatus.STATIC]
        assert self.index_statuses(results, "sum_samples_overrun") == \
            [ObligationStatus.RUNTIME]
        assert self.index_statuses(results, "get_sample") == \
            [ObligationStatus.STATIC]
