"""Tests for the two-pass speculative parallel parse front-end.

The contract under test: ``parse_corpus_parallel`` is *byte-identical* with
the serial front-end — adopted TUs validated their full read set against
the canonical shared state, and every TU that could have diverged falls
back to a plain serial parse (reproducing serial semantics, including
errors, exactly).  The effect-delta replay tests pin the tricky cases:
macro shadowing across TUs, struct completion across TUs, and deliberately
conflicting overlays that must fall back.
"""

from __future__ import annotations

import pytest

from repro.dataflow.domains import solve_program_facts
from repro.engine import AnalysisEngine
from repro.kernel.build import (
    PARSE_COUNTS,
    parse_corpus,
    parse_corpus_tolerant,
    reset_parse_counts,
)
from repro.kernel.corpus import KERNEL_FILES, CorpusFile
from repro.kernel.parallel import parse_corpus_parallel
from repro.kernel.synth import generate_corpus
from repro.minic.pretty import render_unit


def render_program(program) -> list[str]:
    return [render_unit(unit) for unit in program.units]


def assert_byte_identical(files, tolerant=False, **kwargs):
    result = parse_corpus_parallel(files, tolerant=tolerant, mode="inline",
                                   **kwargs)
    if tolerant:
        serial_program, serial_diags = parse_corpus_tolerant(files)
        assert ([d.filename for d in result.diagnostics]
                == [d.filename for d in serial_diags])
    else:
        serial_program = parse_corpus(files)
    assert render_program(result.program) == render_program(serial_program)
    return result


class TestEmbeddedCorpusIdentity:
    def test_strict_byte_identical(self):
        result = assert_byte_identical(KERNEL_FILES)
        assert result.stats.units == len(KERNEL_FILES)
        assert result.stats.adopted + result.stats.fallbacks == (
            result.stats.units - 1)

    def test_tolerant_byte_identical(self):
        assert_byte_identical(KERNEL_FILES, tolerant=True)

    def test_parse_counts_once_per_file(self):
        reset_parse_counts()
        parse_corpus_parallel(KERNEL_FILES, mode="inline")
        assert all(PARSE_COUNTS[f.filename] == 1 for f in KERNEL_FILES)

    def test_speculative_facts_exactly_match_serial_solve(self):
        result = parse_corpus_parallel(KERNEL_FILES, mode="inline")
        assert result.stats.facts_speculated > 0
        serial = solve_program_facts(result.program,
                                     sorted(result.facts))
        assert result.facts == serial


class TestSynthCorpusIdentity:
    def test_scale_corpus_fully_adopted(self):
        # All shared state lives in the synthetic corpus's core TU, so
        # every later TU validates cleanly against the seed: zero
        # fallbacks is the scaling story, not just an optimization.
        files = generate_corpus(scale=1)
        result = assert_byte_identical(files)
        assert result.stats.fallbacks == 0
        assert result.stats.adopted == result.stats.units - 1


# ---------------------------------------------------------------------------
# Effect-delta replay: shared-state mutations crossing TU boundaries.
# ---------------------------------------------------------------------------

MACRO_BASE = CorpusFile("shadow/base.c", """
#define WIDTH 4
int base(void) { return WIDTH; }
""")

MACRO_SHADOW = CorpusFile("shadow/mid.c", """
#undef WIDTH
#define WIDTH 8
int mid(void) { return WIDTH; }
""")

MACRO_READER = CorpusFile("shadow/reader.c", """
int reader(void) { return WIDTH; }
""")


class TestMacroShadowing:
    def test_shadowed_macro_replays_in_manifest_order(self):
        files = (MACRO_BASE, MACRO_SHADOW, MACRO_READER)
        result = assert_byte_identical(files)
        # The prescan predicts the canonical macro table exactly, so the
        # reader TU speculates against WIDTH=8 and adopts.
        assert result.stats.adopted == 2
        rendered = render_unit(result.program.units[-1])
        assert "8" in rendered and "WIDTH" not in rendered


STRUCT_FWD = CorpusFile("pkt/fwd.c", """
struct pkt;
struct pkt *alloc_pkt(void);
int fwd(struct pkt *p) { return p != (struct pkt *)0; }
""")

STRUCT_COMPLETE = CorpusFile("pkt/complete.c", """
struct pkt { int len; int cap; };
int length(struct pkt *p) { return p->len; }
""")

STRUCT_USER_FIELDS = CorpusFile("pkt/user.c", """
int use(struct pkt *p) { return p->cap; }
""")


class TestStructCompletionAcrossTUs:
    def test_completion_visible_to_later_tu(self):
        # user.c reads a field of the struct complete.c completed: its
        # speculative parse against the incomplete seed cannot succeed,
        # so the replay must fall back to a serial parse — and still
        # produce the serial result byte-for-byte.
        files = (STRUCT_FWD, STRUCT_COMPLETE, STRUCT_USER_FIELDS)
        result = assert_byte_identical(files)
        assert result.stats.fallbacks >= 1
        assert "cap" in render_unit(result.program.units[-1])

    def test_sizeof_of_completed_struct(self):
        sizeof_user = CorpusFile("pkt/szuser.c", """
int size_of_pkt(void) { return sizeof(struct pkt); }
""")
        files = (STRUCT_FWD, STRUCT_COMPLETE, sizeof_user)
        result = assert_byte_identical(files)
        assert result.stats.fallbacks >= 1


class TestConflictingOverlay:
    def test_typedef_introduced_mid_corpus_forces_fallback(self):
        # TU1 introduces a typedef TU2 needs; TU2's speculative parse
        # against the seed (no typedef) fails, so it must serially
        # re-parse at the canonical state and succeed.
        lib = CorpusFile("conf/lib.c", "int lib(void) { return 1; }\n")
        definer = CorpusFile("conf/def.c", "typedef int u32;\n"
                                           "u32 make(void) { return 0; }\n")
        user = CorpusFile("conf/use.c", "u32 consume(void) { return 9; }\n")
        files = (lib, definer, user)
        result = assert_byte_identical(files)
        assert result.stats.fallbacks >= 1

    def test_enum_constant_conflict_forces_fallback(self):
        lib = CorpusFile("conf2/lib.c", "int lib(void) { return 1; }\n")
        definer = CorpusFile("conf2/def.c",
                             "enum mode { MODE_A = 5, MODE_B = 7 };\n"
                             "int pick(void) { return MODE_A; }\n")
        user = CorpusFile("conf2/use.c",
                          "int choose(void) { return MODE_B; }\n")
        files = (lib, definer, user)
        result = assert_byte_identical(files)
        assert result.stats.fallbacks >= 1
        rendered = render_unit(result.program.units[-1])
        assert "7" in rendered

    def test_broken_tu_isolated_in_tolerant_mode(self):
        broken = CorpusFile("conf3/broken.c", "int oops(void) { return }\n")
        ok = CorpusFile("conf3/ok.c", "int fine(void) { return 2; }\n")
        files = (KERNEL_FILES[0], broken, ok)
        result = assert_byte_identical(files, tolerant=True)
        assert len(result.diagnostics) == 1
        assert result.diagnostics[0].filename == "conf3/broken.c"

    def test_strict_mode_raises_like_serial(self):
        from repro.minic.errors import MiniCError

        broken = CorpusFile("conf4/broken.c", "int oops(void) { return }\n")
        files = (KERNEL_FILES[0], broken)
        with pytest.raises(MiniCError):
            parse_corpus_parallel(files, mode="inline")


# ---------------------------------------------------------------------------
# Engine integration: parallel parse feeds the solver pipeline.
# ---------------------------------------------------------------------------

class TestEngineIntegration:
    @staticmethod
    def normalized(report) -> dict:
        payload = report.to_dict()
        for key in ("elapsed_seconds", "cache_stats", "perf", "jobs",
                    "parallel"):
            payload.pop(key, None)
        return payload

    def test_inline_run_byte_identical_with_serial(self):
        parallel_report = AnalysisEngine().run(jobs=1, scheduler="inline")
        serial_report = AnalysisEngine().run(jobs=1)
        assert self.normalized(parallel_report) == self.normalized(
            serial_report)
        # The parse really went through the two-pass front-end and its
        # speculative facts shrank the consts phase.
        parse = parallel_report.perf["parse"]
        assert parse["mode"] == "inline"
        assert parse["adopted"] > 0
        assert parse["facts_speculated"] > 0

    def test_chunk_recorded_in_perf(self):
        report = AnalysisEngine().run(jobs=1, scheduler="inline", chunk=3)
        assert report.perf["scheduler"]["max_chunk"] == 3
