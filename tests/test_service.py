"""Tests for the analysis service: incremental invalidation correctness,
parse-error isolation, corpus export/watch round-trips, cache eviction,
and the HTTP JSON API.

The invalidation tests assert two things at once: the *work* stays confined
(via the per-process solve/parse counters) and the *answer* stays exact
(reports byte-identical to a from-scratch analysis of the edited sources).
"""

from __future__ import annotations

import copy
import json
import threading
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.dataflow.consts import CONST_SOLVE_COUNTS, reset_const_solve_counts
from repro.dataflow.interproc import SCC_SOLVE_COUNTS, reset_scc_solve_counts
from repro.engine import AnalysisEngine, ArtifactCache
from repro.kernel.build import PARSE_COUNTS, reset_parse_counts
from repro.kernel.corpus import KERNEL_FILES, CorpusFile
from repro.service import (
    AnalysisService,
    CorpusWatcher,
    IncrementalAnalyzer,
    export_corpus,
    load_corpus_dir,
)
from repro.service.api import make_server

# ---------------------------------------------------------------------------
# A small corpus with a cross-file call chain: top -> mid -> leaf, plus an
# unrelated `lone`.  `leaf` blocks under a spinlock so every analyzer that
# matters (summaries, lockcheck, blockstop) has real work to do, and the
# chain makes "transitive callers re-solve, bystanders do not" observable.
# ---------------------------------------------------------------------------

CHAIN_LIB = """
#define CHAIN_BONUS 3
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);
void schedule(void) blocking;
static int chain_lock;
int leaf(void) {
    spin_lock_irqsave(&chain_lock);
    schedule();
    spin_unlock_irqrestore(&chain_lock);
    return 0;
}
int lone(void) {
    return 7;
}
"""

CHAIN_MID = """
int leaf(void);
int mid(void) {
    return leaf() + 1;
}
"""

CHAIN_TOP = """
int mid(void);
int top(void) {
    return mid() + CHAIN_BONUS;
}
"""

CHAIN_FILES = (CorpusFile("lib.c", CHAIN_LIB),
               CorpusFile("mid.c", CHAIN_MID),
               CorpusFile("top.c", CHAIN_TOP))


def edit(files, filename, old, new):
    """Return ``files`` with ``old`` replaced by ``new`` in ``filename``."""
    out = []
    for corpus_file in files:
        if corpus_file.filename == filename:
            assert old in corpus_file.source
            corpus_file = replace(corpus_file,
                                  source=corpus_file.source.replace(old, new))
        out.append(corpus_file)
    return tuple(out)


def reset_counters():
    reset_parse_counts()
    reset_const_solve_counts()
    reset_scc_solve_counts()


def normalized(report):
    """A report dict with runtime-dependent fields removed.

    ``to_dict`` shares live dicts with the report, so deep-copy before
    popping — a shallow pop would corrupt the report for later assertions.
    """
    payload = copy.deepcopy(report.to_dict())
    for key in ("elapsed_seconds", "cache_stats", "jobs", "parallel", "perf"):
        payload.pop(key, None)
    payload["summary_stats"].pop("cache_hit")
    payload["summary_stats"].pop("consts_cache_hit", None)
    return payload


def assert_reports_identical(incremental_report, fresh_report):
    left = json.dumps(normalized(incremental_report), sort_keys=True)
    right = json.dumps(normalized(fresh_report), sort_keys=True)
    assert left == right


# ---------------------------------------------------------------------------
# Invalidation correctness
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_noop_pass_reuses_everything(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        reset_counters()
        report = analyzer.analyze(CHAIN_FILES)
        stats = analyzer.last_stats
        assert stats.parsed_units == 0
        assert stats.dirty_sccs == 0
        assert stats.consts_solved == 0
        assert stats.shards_rerun == 0
        assert not PARSE_COUNTS and not SCC_SOLVE_COUNTS
        assert report.summary_stats["cache_hit"] is True

    def test_body_edit_resolves_only_transitive_callers(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        edited = edit(CHAIN_FILES, "lib.c", "return 0;", "return 1;")
        reset_counters()
        report = analyzer.analyze(edited)
        stats = analyzer.last_stats

        # Work stays confined: one unit re-parsed in place, and only the
        # edited function plus its transitive callers re-solve.
        assert stats.full_reparse is False
        assert dict(PARSE_COUNTS) == {"lib.c": 1}
        resolved = {name for scc in SCC_SOLVE_COUNTS for name in scc}
        assert resolved == {"leaf", "mid", "top"}
        assert set(CONST_SOLVE_COUNTS) <= {"leaf"}
        assert stats.consts_solved == 1
        assert stats.dirty_sccs == 3
        assert "lone" not in resolved

        # The answer stays exact: byte-identical to analyzing the edited
        # corpus from scratch.
        assert_reports_identical(report, IncrementalAnalyzer(files=edited).analyze())

    def test_line_shift_skips_summaries_but_refreshes_findings(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        # A leading blank line shifts every location in the file without
        # changing any rendered function: summaries stay cached (they are
        # location-free), but finding shards re-run for the new line numbers.
        edited = edit(CHAIN_FILES, "mid.c", "int leaf(void);",
                      "\nint leaf(void);")
        reset_counters()
        report = analyzer.analyze(edited)
        stats = analyzer.last_stats
        assert stats.full_reparse is False
        assert stats.dirty_sccs == 0
        assert stats.consts_solved == 0
        assert stats.shards_rerun > 0
        assert_reports_identical(report, IncrementalAnalyzer(files=edited).analyze())

    def test_macro_edit_forces_full_reparse(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        # CHAIN_BONUS is defined in lib.c and expanded in top.c: the shared
        # macro table changes, so the in-place guard must reject the edit
        # and re-parse the whole corpus.
        edited = edit(CHAIN_FILES, "lib.c", "#define CHAIN_BONUS 3",
                      "#define CHAIN_BONUS 4")
        reset_counters()
        report = analyzer.analyze(edited)
        stats = analyzer.last_stats
        assert stats.full_reparse is True
        assert dict(PARSE_COUNTS) == {"lib.c": 2, "mid.c": 1, "top.c": 1}
        assert_reports_identical(report, IncrementalAnalyzer(files=edited).analyze())

    def test_new_global_decl_forces_full_reparse(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        edited = edit(CHAIN_FILES, "top.c", "int mid(void);",
                      "int mid(void);\nstatic int chain_extra;")
        report = analyzer.analyze(edited)
        stats = analyzer.last_stats
        assert stats.full_reparse is True
        assert stats.sccs_reused == 0
        assert_reports_identical(report, IncrementalAnalyzer(files=edited).analyze())

    def test_file_set_change_forces_full_reparse(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        analyzer.analyze()
        extra = CorpusFile("extra.c", "int extra(void) { return 0; }\n")
        report = analyzer.analyze(CHAIN_FILES + (extra,))
        assert analyzer.last_stats.full_reparse is True
        fresh = IncrementalAnalyzer(files=CHAIN_FILES + (extra,)).analyze()
        assert_reports_identical(report, fresh)

    def test_defines_feed_every_cache_key(self):
        plain = IncrementalAnalyzer(files=CHAIN_FILES)
        plain.analyze()
        defined = IncrementalAnalyzer(files=CHAIN_FILES,
                                      defines={"CHAIN_EXTRA": "1"})
        defined.analyze()
        # The define reaches the globals fingerprint, so no SCC key nor
        # shard key can collide between the two configurations.
        assert plain._scc_store.keys().isdisjoint(defined._scc_store.keys())
        assert plain._shard_store.keys().isdisjoint(defined._shard_store.keys())


class TestKernelCorpusEquivalence:
    def test_cold_pass_matches_batch_engine(self):
        incremental = IncrementalAnalyzer().analyze()
        batch = AnalysisEngine(files=KERNEL_FILES, tolerant=True).run(jobs=1)
        assert_reports_identical(incremental, batch)

    def test_parallel_dirty_solve_byte_identical_with_serial(self):
        from repro.engine.scheduler import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        serial = IncrementalAnalyzer(jobs=1).analyze()
        parallel_analyzer = IncrementalAnalyzer(jobs=2)
        parallel = parallel_analyzer.analyze()
        # The cold pass dirties every SCC, so the pool must have engaged.
        assert parallel_analyzer.last_stats.parallel_jobs >= 2
        assert_reports_identical(parallel, serial)

    def test_parallel_touch_pass_byte_identical_with_serial(self):
        from repro.engine.scheduler import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        touched = KERNEL_FILES[:-1] + (replace(
            KERNEL_FILES[-1],
            source=KERNEL_FILES[-1].source
            + "\nint __parallel_touch_a(void) { return 1; }\n"
            + "\nint __parallel_touch_b(void) { return 2; }\n"),)
        reports = []
        for jobs in (1, 2):
            analyzer = IncrementalAnalyzer(jobs=jobs)
            analyzer.analyze()
            reports.append(analyzer.analyze(touched))
        assert_reports_identical(reports[1], reports[0])

    def test_touch_one_unit_dirties_one_scc(self):
        analyzer = IncrementalAnalyzer()
        analyzer.analyze()
        touched = KERNEL_FILES[:-1] + (replace(
            KERNEL_FILES[-1],
            source=KERNEL_FILES[-1].source
            + "\nint __service_touch(void) { return 0; }\n"),)
        analyzer.analyze(touched)
        stats = analyzer.last_stats
        assert stats.full_reparse is False
        assert stats.parsed_units == 1
        assert stats.dirty_sccs == 1
        assert stats.sccs_reused > 100

    def test_touch_mid_corpus_unit_reparses_in_place(self):
        # Regression: a non-final TU's struct tags stay interned in the
        # registry between passes; that leftover state must not disqualify
        # the TU's own in-place re-parse (it once forced a full re-parse
        # for every file but the last).
        analyzer = IncrementalAnalyzer()
        analyzer.analyze()
        touched = (replace(
            KERNEL_FILES[0],
            source=KERNEL_FILES[0].source
            + "\nint __service_touch_first(void) { return 0; }\n"),
        ) + KERNEL_FILES[1:]
        analyzer.analyze(touched)
        stats = analyzer.last_stats
        assert stats.full_reparse is False
        assert stats.parsed_units == 1
        assert stats.dirty_sccs == 1


# ---------------------------------------------------------------------------
# Parse-error isolation
# ---------------------------------------------------------------------------

class TestParseErrorIsolation:
    def test_broken_unit_reports_diagnostic_and_keeps_last_good(self):
        analyzer = IncrementalAnalyzer(files=CHAIN_FILES)
        baseline = analyzer.analyze()
        baseline_findings = [f for f in baseline.all_findings()
                             if f["analysis"] != "diagnostics"]

        broken = edit(CHAIN_FILES, "mid.c", "return leaf() + 1;",
                      "return leaf( + 1;")
        report = analyzer.analyze(broken)
        stats = analyzer.last_stats
        assert stats.parse_errors == 1
        diagnostics = report.analyses["diagnostics"].findings
        assert len(diagnostics) == 1
        assert diagnostics[0]["file"] == "mid.c"
        # Every non-diagnostic finding is served from the last good parse.
        kept = [f for f in report.all_findings()
                if f["analysis"] != "diagnostics"]
        assert kept == baseline_findings

        # Re-analyzing the same broken content re-parses nothing.
        reset_counters()
        analyzer.analyze(broken)
        assert analyzer.last_stats.parsed_units == 0
        assert analyzer.last_stats.parse_errors == 1

        # Fixing the file clears the diagnostic and converges on the fresh
        # answer.
        fixed = analyzer.analyze(CHAIN_FILES)
        assert "diagnostics" not in fixed.analyses
        assert_reports_identical(fixed,
                                 IncrementalAnalyzer(files=CHAIN_FILES).analyze())


# ---------------------------------------------------------------------------
# Artifact-cache eviction
# ---------------------------------------------------------------------------

class TestCacheEviction:
    def test_lru_eviction_respects_budget(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_mb=0.001)
        for index in range(4):
            cache.get_or_build(f"artifact-{index}", lambda: b"x" * 2048)
        assert cache.evictions >= 3
        remaining = sum(p.stat().st_size for p in tmp_path.glob("*.pkl"))
        assert remaining <= cache.max_bytes

    def test_no_budget_means_no_eviction(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        for index in range(4):
            cache.get_or_build(f"artifact-{index}", lambda: b"x" * 2048)
        assert cache.evictions == 0
        assert len(list(tmp_path.glob("*.pkl"))) == 4


# ---------------------------------------------------------------------------
# Corpus export / load / watch
# ---------------------------------------------------------------------------

class TestCorpusOnDisk:
    def test_export_load_round_trip(self, tmp_path):
        manifest = export_corpus(tmp_path, CHAIN_FILES)
        assert manifest.exists()
        assert load_corpus_dir(tmp_path) == CHAIN_FILES

    def test_load_without_manifest_sorts_paths(self, tmp_path):
        export_corpus(tmp_path, CHAIN_FILES)
        (tmp_path / "MANIFEST.json").unlink()
        loaded = load_corpus_dir(tmp_path)
        assert [f.filename for f in loaded] == ["lib.c", "mid.c", "top.c"]
        assert {f.source for f in loaded} == {f.source for f in CHAIN_FILES}

    def test_watcher_fires_once_per_settled_edit(self, tmp_path):
        export_corpus(tmp_path, CHAIN_FILES)
        events = []
        watcher = CorpusWatcher(tmp_path, lambda: events.append(1),
                                poll_seconds=0.01, debounce_seconds=0.01)
        assert watcher.poll_once() is False
        (tmp_path / "mid.c").write_text(CHAIN_MID + "\n// touched\n")
        assert watcher.poll_once() is True
        assert events == [1]
        # The new state is now the baseline; nothing further fires.
        assert watcher.poll_once() is False
        assert events == [1]


# ---------------------------------------------------------------------------
# HTTP API (in-process server on an ephemeral port)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def http_service():
    service = AnalysisService(files=CHAIN_FILES)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]

    def request(path, method="GET"):
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", method=method)
        try:
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    try:
        yield service, request
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestHTTPAPI:
    def test_health_is_503_until_first_pass(self, http_service):
        service, request = http_service
        status, payload = request("/health")
        assert (status, payload["status"]) == (503, "starting")
        status, payload = request("/findings")
        assert status == 503
        service.reconcile()
        status, payload = request("/health")
        assert status == 200
        assert payload["revision"] == 1

    def test_findings_match_snapshot_and_filter(self, http_service):
        service, request = http_service
        service.reconcile()
        expected = service.snapshot.report.all_findings()
        status, payload = request("/findings")
        assert status == 200
        assert payload["count"] == len(expected)
        assert payload["findings"] == expected

        status, payload = request("/findings?checker=blockstop")
        assert status == 200
        assert payload["findings"]
        assert all(f["analysis"] == "blockstop" for f in payload["findings"])

        status, payload = request("/findings?function=leaf")
        assert all(f["function"] == "leaf" for f in payload["findings"])

    def test_summaries_endpoint(self, http_service):
        service, request = http_service
        service.reconcile()
        status, payload = request("/summaries/leaf")
        assert status == 200
        assert payload["function"] == "leaf"
        assert payload["scc"]["members"] == ["leaf"]
        assert payload["scc"]["recursive"] is False
        status, payload = request("/summaries/no_such_function")
        assert status == 404

    def test_stats_and_analyze(self, http_service):
        service, request = http_service
        service.reconcile()
        before = service.passes
        status, payload = request("/analyze", method="POST")
        assert status == 200
        assert payload["status"] == "ok"
        assert service.passes == before + 1
        # Nothing changed between passes, so the forced pass reused it all.
        assert payload["stats"]["dirty_sccs"] == 0

        status, payload = request("/stats")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["finding_count"] == service.snapshot.report.finding_count
        assert payload["totals"]["full_reparses"] >= 1

    def test_unknown_routes_404(self, http_service):
        _, request = http_service
        status, payload = request("/nonsense")
        assert status == 404
        assert "/health" in payload["endpoints"]
        assert "/findings/by-file/<tu>" in payload["endpoints"]
        status, _ = request("/nonsense", method="POST")
        assert status == 404

    def test_findings_by_file(self, http_service):
        service, request = http_service
        service.reconcile()
        all_findings = service.snapshot.report.all_findings()
        expected = [f for f in all_findings if f["file"] == "lib.c"]
        assert expected  # leaf's blocking-under-lock findings live here
        status, payload = request("/findings/by-file/lib.c")
        assert status == 200
        assert payload["file"] == "lib.c"
        assert payload["count"] == len(expected)
        assert payload["findings"] == expected
        # A file with no findings (or not in the corpus) is an empty list,
        # not an error — clients poll files speculatively.
        status, payload = request("/findings/by-file/no_such.c")
        assert (status, payload["count"], payload["findings"]) == (200, 0, [])

    def test_findings_since_current_revision_is_empty_delta(self, http_service):
        service, request = http_service
        service.reconcile()
        revision = service.snapshot.revision
        status, payload = request(f"/findings?since={revision}")
        assert status == 200
        assert payload["delta_base"] == revision
        assert payload["added"] == []
        assert payload["removed"] == []

    def test_findings_since_unknown_revision_degrades_to_full(self, http_service):
        service, request = http_service
        service.reconcile()
        expected = service.snapshot.report.all_findings()
        for since in ("9999", "bogus"):
            status, payload = request(f"/findings?since={since}")
            assert status == 200
            assert payload["delta_base"] is None
            assert payload["findings"] == expected


class TestFindingsDelta:
    """``?since=`` across real revisions: an on-disk edit produces a delta."""

    def _serve(self, service):
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]

        def request(path):
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10) as response:
                return json.load(response)

        return server, request

    def test_edit_shows_up_as_added_findings(self, tmp_path):
        export_corpus(tmp_path, CHAIN_FILES)
        service = AnalysisService(corpus_dir=tmp_path,
                                  poll_seconds=0.05, debounce_seconds=0.01)
        server, request = self._serve(service)
        try:
            service.reconcile()
            base = service.snapshot.report.all_findings()
            # A second blocking-under-lock function: new findings, and the
            # append leaves every existing finding's location untouched.
            (tmp_path / "lib.c").write_text(CHAIN_LIB + """
int leaf_twin(void) {
    spin_lock_irqsave(&chain_lock);
    schedule();
    spin_unlock_irqrestore(&chain_lock);
    return 1;
}
""")
            service.reconcile()
            assert service.snapshot.revision == 2
            payload = request("/findings?since=1")
            assert payload["delta_base"] == 1
            assert payload["revision"] == 2
            assert payload["added"]
            assert all(f["function"] == "leaf_twin" for f in payload["added"])
            assert payload["removed"] == []
            assert payload["count"] == len(base) + len(payload["added"])
            # The reverse direction: reverting the edit removes them again.
            (tmp_path / "lib.c").write_text(CHAIN_LIB)
            service.reconcile()
            payload = request("/findings?since=2")
            assert payload["delta_base"] == 2
            assert payload["added"] == []
            assert all(f["function"] == "leaf_twin" for f in payload["removed"])
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_history_window_ages_out_oldest(self, monkeypatch):
        from repro.service import daemon

        monkeypatch.setattr(daemon, "FINDINGS_HISTORY_LIMIT", 2)
        service = AnalysisService(files=CHAIN_FILES)
        for _ in range(3):
            service.reconcile()
        assert service.findings_at(1) is None
        assert service.findings_at(2) is not None
        assert service.findings_at(3) is not None


class TestServiceWatchesDirectory:
    def test_edit_on_disk_triggers_incremental_pass(self, tmp_path):
        export_corpus(tmp_path, CHAIN_FILES)
        service = AnalysisService(corpus_dir=tmp_path,
                                  poll_seconds=0.05, debounce_seconds=0.01)
        try:
            service.reconcile()
            assert service.snapshot.revision == 1
            (tmp_path / "lib.c").write_text(
                CHAIN_LIB.replace("return 0;", "return 2;"))
            assert service.watcher.poll_once() is True
            snapshot = service.snapshot
            assert snapshot.revision == 2
            assert snapshot.stats.full_reparse is False
            assert snapshot.stats.dirty_sccs == 3
        finally:
            service.stop()
