"""Tests for the abstract machine: memory, values, interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    Interpreter,
    MemoryFault,
    Memory,
    PanicError,
    UndefinedSymbol,
    chunk_range,
    link_units,
)
from repro.machine.cycles import CostModel, CycleCounter
from repro.machine.values import convert
from repro.minic import parse_source
from repro.minic.ctypes import CInt, INT, UINT, pointer_to


def run_program(source, entry="main", *args):
    program = link_units([parse_source(source)])
    interp = Interpreter(program)
    return interp, interp.run(entry, *args)


class TestMemory:
    def test_alloc_and_rw(self):
        memory = Memory()
        block = memory.alloc(64)
        memory.store(block.base, 4, 0xDEADBEEF)
        assert memory.load(block.base, 4) == 0xDEADBEEF

    def test_signed_load(self):
        memory = Memory()
        block = memory.alloc(4)
        memory.store(block.base, 4, 0xFFFFFFFF)
        assert memory.load(block.base, 4, signed=True) == -1

    def test_blocks_do_not_overlap(self):
        memory = Memory()
        blocks = [memory.alloc(24) for _ in range(20)]
        for first, second in zip(blocks, blocks[1:]):
            assert first.end <= second.base

    def test_null_dereference_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.load(0, 4)

    def test_out_of_bounds_faults(self):
        memory = Memory()
        block = memory.alloc(8)
        with pytest.raises(MemoryFault):
            memory.load(block.base + 6, 4)

    def test_use_after_free_faults(self):
        memory = Memory()
        block = memory.alloc(16)
        memory.free(block)
        with pytest.raises(MemoryFault):
            memory.store(block.base, 4, 1)

    def test_double_free_faults(self):
        memory = Memory()
        block = memory.alloc(16)
        memory.free(block)
        with pytest.raises(MemoryFault):
            memory.free(block)

    def test_interior_free_faults(self):
        memory = Memory()
        block = memory.alloc(32)
        with pytest.raises(MemoryFault):
            memory.free_addr(block.base + 8)

    def test_cstring_round_trip(self):
        memory = Memory()
        block = memory.alloc(32)
        memory.store_bytes(block.base, b"hello\0")
        assert memory.load_cstring(block.base) == "hello"

    def test_memcpy_and_memset(self):
        memory = Memory()
        a = memory.alloc(16)
        b = memory.alloc(16)
        memory.memset(a.base, 0x41, 8)
        memory.memcpy(b.base, a.base, 8)
        assert memory.load_bytes(b.base, 8) == b"A" * 8

    def test_chunk_range_covers_object(self):
        chunks = list(chunk_range(0x10000, 40))
        assert len(chunks) == 3

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=30))
    def test_find_block_is_consistent(self, sizes):
        memory = Memory()
        blocks = [memory.alloc(size) for size in sizes]
        for block in blocks:
            assert memory.find_block(block.base) is block
            assert memory.find_block(block.end - 1) is block

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=128), st.integers(min_value=0, max_value=2**32 - 1))
    def test_store_load_round_trip(self, size, value):
        memory = Memory()
        block = memory.alloc(8)
        memory.store(block.base, 4, value)
        assert memory.load(block.base, 4) == value & 0xFFFFFFFF


class TestValuesAndCycles:
    def test_convert_wraps_integers(self):
        assert convert(300, CInt("char", signed=False)) == 44
        assert convert(-1, UINT) == 0xFFFFFFFF

    def test_convert_pointer_masks_to_32_bits(self):
        assert convert(2**40 + 5, pointer_to(INT)) == 5

    def test_cycle_counter_charges_by_category(self):
        counter = CycleCounter(model=CostModel())
        counter.charge("load", times=3)
        counter.charge("store")
        assert counter.cycles == 3 * CostModel().load + CostModel().store
        assert counter.counts["load"] == 3

    def test_smp_rc_cost_is_higher(self):
        assert CostModel(smp=True).rc_cost() > CostModel(smp=False).rc_cost()


class TestInterpreter:
    def test_arithmetic_and_locals(self):
        _, result = run_program("int main(void) { int a = 6; int b = 7; return a * b; }")
        assert result.value == 42

    def test_global_initialization(self):
        _, result = run_program("int base = 10; int main(void) { return base + 1; }")
        assert result.value == 11

    def test_array_sum(self):
        src = """
        int main(void) {
            int t[5];
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) { t[i] = i * i; }
            for (i = 0; i < 5; i++) { total += t[i]; }
            return total;
        }
        """
        _, result = run_program(src)
        assert result.value == 30

    def test_pointer_arithmetic(self):
        src = """
        int main(void) {
            int t[4];
            int *p = t;
            t[0] = 1; t[1] = 2; t[2] = 3; t[3] = 4;
            p = p + 2;
            return *p + p[1];
        }
        """
        _, result = run_program(src)
        assert result.value == 7

    def test_struct_member_access_and_copy(self):
        src = """
        struct point { int x; int y; };
        int main(void) {
            struct point a;
            struct point b;
            a.x = 3; a.y = 4;
            b = a;
            return b.x * 10 + b.y;
        }
        """
        _, result = run_program(src)
        assert result.value == 34

    def test_linked_list_on_heap(self):
        src = """
        struct node { int value; struct node *next; };
        int main(void) {
            struct node *head = 0;
            struct node *n;
            int i;
            int total = 0;
            for (i = 1; i <= 4; i++) {
                n = (struct node *)__raw_alloc(sizeof(struct node));
                n->value = i;
                n->next = head;
                head = n;
            }
            for (n = head; n != 0; n = n->next) { total += n->value; }
            return total;
        }
        """
        _, result = run_program(src)
        assert result.value == 10

    def test_function_pointers_in_struct(self):
        src = """
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        struct ops { int (*f)(int, int); };
        static struct ops table[2] = { { .f = add }, { .f = mul } };
        int main(void) { return table[0].f(2, 3) + table[1].f(2, 3); }
        """
        _, result = run_program(src)
        assert result.value == 11

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
        _, result = run_program(src + " int main(void) { return fib(10); }")
        assert result.value == 55

    def test_goto_cleanup_pattern(self):
        src = """
        int main(void) {
            int rc = 5;
            if (rc > 0) { goto out; }
            rc = 100;
        out:
            return rc + 1;
        }
        """
        _, result = run_program(src)
        assert result.value == 6

    def test_switch_fallthrough(self):
        src = """
        int classify(int x) {
            int r = 0;
            switch (x) {
            case 1:
            case 2: r = 10; break;
            case 3: r = 20; break;
            default: r = -1; break;
            }
            return r;
        }
        int main(void) { return classify(2) + classify(3) + classify(9); }
        """
        _, result = run_program(src)
        assert result.value == 29

    def test_string_literal_and_strlen(self):
        src = 'int main(void) { return (int)strlen("kernel"); }'
        _, result = run_program(src)
        assert result.value == 6

    def test_printk_formats_output(self):
        src = 'int main(void) { printk("pid=%d name=%s\\n", 7, "init"); return 0; }'
        interp, _ = run_program(src)
        assert interp.console_text() == "pid=7 name=init\n"

    def test_panic_raises(self):
        with pytest.raises(PanicError):
            run_program('int main(void) { panic("boom"); return 0; }')

    def test_undefined_function_call(self):
        with pytest.raises(UndefinedSymbol):
            run_program("int main(void) { return missing(); }")

    def test_wild_pointer_faults(self):
        src = "int main(void) { int *p = (int *)12345; return *p; }"
        with pytest.raises(MemoryFault):
            run_program(src)

    def test_stack_buffer_overflow_faults(self):
        src = """
        int main(void) {
            int small[2];
            small[0] = 1;
            small[5] = 9;
            return small[0];
        }
        """
        with pytest.raises(MemoryFault):
            run_program(src)

    def test_division_semantics(self):
        src = "int main(void) { return (-7) / 2 * 100 + (-7) % 2; }"
        _, result = run_program(src)
        assert result.value == -301

    def test_irq_flag_builtins(self):
        src = """
        int main(void) {
            int before = __hw_irqs_disabled();
            __hw_cli();
            int during = __hw_irqs_disabled();
            __hw_sti();
            return before * 10 + during;
        }
        """
        _, result = run_program(src)
        assert result.value == 1

    def test_cycle_accounting_is_deterministic(self):
        src = "int main(void) { int i; int t = 0; for (i = 0; i < 50; i++) { t += i; } return t; }"
        _, first = run_program(src)
        interp_a, _ = run_program(src)
        interp_b, _ = run_program(src)
        assert interp_a.counter.cycles == interp_b.counter.cycles
        assert interp_a.counter.cycles > 0


class TestLinking:
    def test_prototype_annotations_merge_into_definition(self):
        from repro.annotations import AnnotationKind
        unit_a = parse_source("void schedule(void) blocking;")
        unit_b = parse_source("void schedule(void) { }")
        program = link_units([unit_a, unit_b])
        assert program.function_annotations("schedule").has(AnnotationKind.BLOCKING)

    def test_duplicate_definition_rejected(self):
        from repro.minic.errors import SemanticError
        unit_a = parse_source("int f(void) { return 1; }")
        unit_b = parse_source("int f(void) { return 2; }")
        with pytest.raises(SemanticError):
            link_units([unit_a, unit_b])

    def test_cross_unit_calls(self):
        shared = parse_source("int helper(int x) { return x * 2; }")
        main = parse_source("int helper(int x); int main(void) { return helper(21); }")
        program = link_units([shared, main])
        assert Interpreter(program).run("main").value == 42
