"""Tests for the interprocedural summary framework: SCC condensation,
bottom-up summary solving (including every recursion shape), the ported
consumers (lockcheck, blockstop, errcheck, stackcheck), oracle equivalence
against hand-inlined corpora, and the engine/CLI wiring."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.analyses import analyse_locks, analyse_stack, collect_lock_facts
from repro.analyses.errcheck import find_error_returning_functions
from repro.blockstop import build_direct_callgraph, run_blockstop
from repro.blockstop.pointsto import FunctionPointerAnalysis, Precision
from repro.dataflow import (
    condense_callgraph,
    solve_summaries,
)
from repro.engine import AnalysisEngine
from repro.engine.cli import main as cli_main
from repro.machine import link_units
from repro.minic import parse_source


def build(source):
    return link_units([parse_source(source)])


def summarise(source, pointsto=False):
    program = build(source)
    graph, indirect = build_direct_callgraph(program)
    if pointsto:
        analysis = FunctionPointerAnalysis(program, Precision.TYPE_BASED)
        analysis.collect()
        analysis.resolve(graph, indirect)
    return program, graph, solve_summaries(program, graph)


LOCK_PROTOS = """
void spin_lock(int *lock);
void spin_unlock(int *lock);
unsigned long spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock, unsigned long flags);
void local_irq_disable(void);
void local_irq_enable(void);
void schedule(void) blocking;
static int lock_a;
static int lock_b;
"""


# ---------------------------------------------------------------------------
# Condensation: ordering and every recursion shape
# ---------------------------------------------------------------------------

class TestCondensation:
    def test_bottom_up_order_and_waves(self):
        program, graph, _ = summarise("""
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x); }
        int top(int x) { return mid(x) + leaf(x); }
        """)
        condensation = condense_callgraph(graph)
        position = {name: index for index, scc in enumerate(condensation.sccs)
                    for name in scc}
        assert position["leaf"] < position["mid"] < position["top"]
        depth_of = {name: wave_index
                    for wave_index, wave in enumerate(condensation.waves)
                    for scc_index in wave
                    for name in condensation.sccs[scc_index]}
        assert depth_of["leaf"] < depth_of["mid"] < depth_of["top"]
        assert not condensation.recursive_functions()

    def test_self_loop(self):
        _, graph, summaries = summarise("""
        int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
        """)
        condensation = condense_callgraph(graph)
        assert condensation.is_recursive("fact")
        assert condensation.recursive_functions() == {"fact"}
        assert len(condensation.members("fact")) == 1
        assert summaries["fact"].defined    # converged despite the cycle

    def test_mutual_recursion(self):
        _, graph, summaries = summarise("""
        int odd(int n);
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        """)
        condensation = condense_callgraph(graph)
        assert condensation.recursive_functions() == {"even", "odd"}
        assert condensation.members("even") == ("even", "odd")
        assert summaries["even"].defined and summaries["odd"].defined

    def test_indirect_cycle_through_function_pointer(self):
        program, graph, _ = summarise("""
        struct ops { int (*hook)(int); };
        int pong(int x);
        int ping(int x) {
            struct ops o;
            o.hook = pong;
            return o.hook(x);
        }
        int pong(int x) { return ping(x); }
        """, pointsto=True)
        condensation = condense_callgraph(graph)
        # The cycle only closes through the points-to-resolved edge.
        assert condensation.is_recursive("ping")
        assert condensation.is_recursive("pong")
        assert set(condensation.members("ping")) == {"ping", "pong"}


# ---------------------------------------------------------------------------
# Summary contents
# ---------------------------------------------------------------------------

class TestSummaries:
    def test_irq_delta_of_disable_helper(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        void freeze(void) { local_irq_disable(); }
        void thaw(void) { local_irq_enable(); }
        void balanced(void) { local_irq_disable(); local_irq_enable(); }
        """)
        assert summaries["freeze"].irq_delta == 1
        assert summaries["thaw"].irq_delta == -1
        assert summaries["balanced"].irq_delta == 0

    def test_irq_delta_transits_through_wrappers(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        void freeze(void) { local_irq_disable(); }
        void freeze_twice(void) { freeze(); freeze(); }
        """)
        assert summaries["freeze_twice"].irq_delta == 2

    def test_lock_wrapper_holds_and_releases(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        void take(void) { spin_lock(&lock_a); }
        void drop(void) { spin_unlock(&lock_a); }
        void both(void) { take(); drop(); }
        """)
        assert summaries["take"].locks_held == (("&(lock_a)", 1),)
        assert "&(lock_a)" in summaries["take"].may_return_held
        assert summaries["drop"].locks_released == (("&(lock_a)", 1),)
        assert summaries["both"].locks_held == ()
        assert summaries["both"].may_return_held == ()

    def test_leak_is_may_but_not_must(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        int leaky(int n) {
            spin_lock(&lock_a);
            if (n < 0) { return -1; }
            spin_unlock(&lock_a);
            return 0;
        }
        """)
        summary = summaries["leaky"]
        assert summary.locks_held == ()         # not held on every path
        assert summary.may_return_held == ("&(lock_a)",)

    def test_parameter_lock_names_do_not_escape(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        void lock_it(int *which) { spin_lock(which); }
        """)
        summary = summaries["lock_it"]
        assert summary.locks_held == ()
        assert summary.may_return_held == ()
        assert summary.acquires == ()

    def test_may_block_through_recursion(self):
        _, _, summaries = summarise(LOCK_PROTOS + """
        int walk_tree(int n) {
            if (n == 0) { return 0; }
            schedule();
            return walk_tree(n - 1);
        }
        int visits(int n) { return walk_tree(n); }
        """)
        assert summaries["walk_tree"].may_block
        assert summaries["visits"].may_block

    def test_error_return_propagation(self):
        program, _, summaries = summarise("""
        int helper(int n) { if (n < 0) { return -22; } return 0; }
        int wrapper(int n) { return helper(n); }
        int launderer(int n) { helper(n); return 0; }
        """)
        assert summaries["helper"].error_returns == (-22,)
        assert summaries["wrapper"].error_returns == (-22,)
        assert summaries["launderer"].error_returns == ()
        names = find_error_returning_functions(program, summaries)
        assert {"helper", "wrapper"} <= names
        assert "launderer" not in names

    def test_stack_depth_is_bottom_up(self):
        _, _, summaries = summarise("""
        int leaf(int x) { return x; }
        int mid(int x) { return leaf(x); }
        int top(int x) { return mid(x); }
        """)
        assert (summaries["top"].stack_depth
                == summaries["top"].frame_size + summaries["mid"].stack_depth)
        assert (summaries["mid"].stack_depth
                == summaries["mid"].frame_size + summaries["leaf"].stack_depth)


# ---------------------------------------------------------------------------
# Ported consumers on small programs
# ---------------------------------------------------------------------------

class TestInterprocLockcheck:
    def test_returns_with_lock_held_and_caller_inheritance(self):
        report = analyse_locks(build(LOCK_PROTOS + """
        int leaky(int n) {
            spin_lock(&lock_a);
            if (n < 0) { return -1; }
            spin_unlock(&lock_a);
            return 0;
        }
        int caller(int n) { return leaky(n); }
        """))
        flagged = {(leak.function, leak.lock) for leak in report.leaked_returns}
        assert ("leaky", "&(lock_a)") in flagged
        assert ("caller", "&(lock_a)") in flagged
        by_function = {leak.function: leak for leak in report.leaked_returns}
        assert by_function["caller"].via_callee == "leaky"

    def test_balanced_wrappers_are_not_leaks(self):
        report = analyse_locks(build(LOCK_PROTOS + """
        void take(void) { spin_lock(&lock_a); }
        void drop(void) { spin_unlock(&lock_a); }
        int fine(void) { take(); drop(); return 0; }
        """))
        functions = {leak.function for leak in report.leaked_returns}
        # The deliberate wrapper holds on *every* path: its callers' contract.
        assert "fine" not in functions
        assert "drop" not in functions

    def test_interprocedural_double_acquire(self):
        report = analyse_locks(build(LOCK_PROTOS + """
        void helper(void) { spin_lock(&lock_a); spin_unlock(&lock_a); }
        void deadlocks(void) {
            spin_lock(&lock_a);
            helper();
            spin_unlock(&lock_a);
        }
        void fine(void) { helper(); }
        """))
        doubles = {(acq.function, acq.lock, acq.via_callee)
                   for acq in report.double_acquires}
        assert ("deadlocks", "&(lock_a)", "helper") in doubles
        assert all(function != "fine" for function, _, _ in doubles)
        assert not report.deadlock_free

    def test_oracle_matches_hand_inlined_double_acquire(self):
        modular = analyse_locks(build(LOCK_PROTOS + """
        void helper(void) { spin_lock(&lock_a); spin_unlock(&lock_a); }
        void caller(void) { spin_lock(&lock_a); helper(); spin_unlock(&lock_a); }
        """))
        inlined = analyse_locks(build(LOCK_PROTOS + """
        void caller(void) {
            spin_lock(&lock_a);
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
            spin_unlock(&lock_a);
        }
        """))
        assert {acq.function for acq in modular.double_acquires} == {"caller"}
        assert {acq.function for acq in inlined.double_acquires} == {"caller"}
        assert ({acq.lock for acq in modular.double_acquires}
                == {acq.lock for acq in inlined.double_acquires})

    def test_oracle_matches_hand_inlined_leak(self):
        modular = analyse_locks(build(LOCK_PROTOS + """
        int grab(int n) {
            spin_lock(&lock_a);
            if (n < 0) { return -1; }
            spin_unlock(&lock_a);
            return 0;
        }
        int caller(int n) { return grab(n); }
        """))
        inlined = analyse_locks(build(LOCK_PROTOS + """
        int caller(int n) {
            spin_lock(&lock_a);
            if (n < 0) { return -1; }
            spin_unlock(&lock_a);
            return 0;
        }
        """))
        assert "caller" in {leak.function for leak in modular.leaked_returns}
        assert "caller" in {leak.function for leak in inlined.leaked_returns}
        assert ({leak.lock for leak in modular.leaked_returns}
                == {leak.lock for leak in inlined.leaked_returns})


class TestInterprocBlockstop:
    IRQ_DELTA_SOURCE = LOCK_PROTOS + """
    void freeze(void) { local_irq_disable(); }
    void thaw(void) { local_irq_enable(); }
    void bad(void) { freeze(); schedule(); thaw(); }
    void good(void) { freeze(); thaw(); schedule(); }
    """

    def test_atomic_context_through_callee_irq_delta(self):
        result = run_blockstop(build(self.IRQ_DELTA_SOURCE))
        callers = {v.caller for v in result.reported}
        assert "bad" in callers
        assert "good" not in callers

    def test_intraprocedural_scan_misses_it(self):
        program = build(self.IRQ_DELTA_SOURCE)
        graph, _ = build_direct_callgraph(program)
        from repro.blockstop import derive_blocking
        blocking = derive_blocking(program, graph)
        result = run_blockstop(program, graph=graph, blocking=blocking,
                               summaries={})   # summaries withheld
        assert "bad" not in {v.caller for v in result.reported}

    def test_oracle_matches_hand_inlined_corpus(self):
        inlined = run_blockstop(build(LOCK_PROTOS + """
        void bad(void) {
            local_irq_disable();
            schedule();
            local_irq_enable();
        }
        void good(void) {
            local_irq_disable();
            local_irq_enable();
            schedule();
        }
        """))
        modular = run_blockstop(build(self.IRQ_DELTA_SOURCE))
        assert ({v.caller for v in modular.reported}
                == {v.caller for v in inlined.reported} == {"bad"})
        assert ({v.callee for v in modular.reported}
                == {v.callee for v in inlined.reported} == {"schedule"})


class TestInterprocStackcheck:
    def test_bounded_escape_through_recursive_scc_is_not_dropped(self):
        """A bounded chain may pass through a recursive SCC before escaping
        to a deep out-of-SCC callee; that escape depth must survive into
        the SCC members' (and their callers') reported depth."""
        program = build("""
        int helper(void) stacksize(4000) { return 1; }
        int pong(int n);
        int ping(int n) { if (n == 0) { return helper(); } return pong(n - 1); }
        int pong(int n) { return ping(n - 1); }
        int entry(void) { return ping(5); }
        """)
        graph, _ = build_direct_callgraph(program)
        report = analyse_stack(program, graph)
        assert report.recursive_functions == {"ping", "pong"}
        assert report.max_depth["ping"] > 4000
        assert report.max_depth["entry"] > 4000

    def test_recursion_from_condensation(self):
        program = build("""
        int odd(int n);
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        int straight(int n) { return even(n); }
        """)
        graph, _ = build_direct_callgraph(program)
        report = analyse_stack(program, graph)
        assert report.recursive_functions == {"even", "odd"}
        assert "straight" not in report.recursive_functions
        assert report.max_depth["straight"] > 0


# ---------------------------------------------------------------------------
# Kernel-corpus acceptance: the seeded interprocedural bugs
# ---------------------------------------------------------------------------

class TestKernelCorpusInterproc:
    @pytest.fixture(scope="class")
    def artifacts(self, kernel_program):
        from repro.engine.artifacts import build_shared_artifacts
        return build_shared_artifacts(kernel_program)

    def test_seeded_lock_leak_found_and_propagated(self, artifacts):
        facts = collect_lock_facts(artifacts.program,
                                   summaries=artifacts.summaries)
        flagged = {(leak.function, leak.lock) for leak in facts.leaks}
        assert ("audit_reserve_slot", "&(audit_slot_lock)") in flagged
        assert ("buggy_audit_reserve", "&(audit_slot_lock)") in flagged

    def test_seeded_lock_leak_invisible_intraprocedurally(self, artifacts):
        facts = collect_lock_facts(artifacts.program)    # no summaries
        # audit_try_slot_trace is the live if (1) twin of the pruned
        # condition-gated leak: it leaks within one function, while its
        # caller's leak (audit_probe_trace) needs the summaries.
        assert {leak.function for leak in facts.leaks} == {
            "audit_reserve_slot", "audit_try_slot_trace"}

    def test_seeded_irq_delta_bug_found(self, artifacts):
        result = run_blockstop(artifacts.program,
                               graph=artifacts.graph,
                               blocking=artifacts.blocking,
                               irq_handlers=artifacts.irq_handlers,
                               summaries=artifacts.summaries)
        flagged = {(v.caller, v.callee) for v in result.reported}
        assert ("buggy_deferred_flush", "audit_log_event") in flagged

    def test_seeded_irq_delta_bug_invisible_intraprocedurally(self, artifacts):
        result = run_blockstop(artifacts.program,
                               graph=artifacts.graph,
                               blocking=artifacts.blocking,
                               irq_handlers=artifacts.irq_handlers,
                               summaries={})   # summaries withheld
        assert "buggy_deferred_flush" not in {v.caller for v in result.reported}

    def test_corpus_has_no_spurious_leaks(self, artifacts):
        facts = collect_lock_facts(artifacts.program,
                                   summaries=artifacts.summaries)
        # The four leaks are all seeded: the PR 3 interprocedural pair and
        # the PR 4 condition-gated live twin plus its caller.  The if (0)
        # variants (audit_try_slot_debug / audit_probe_debug) must *not*
        # appear — their acquire sits on an infeasible edge.
        assert {leak.function for leak in facts.leaks} == {
            "audit_reserve_slot", "buggy_audit_reserve",
            "audit_try_slot_trace", "audit_probe_trace"}
        assert not facts.interproc_acquires

    def test_blocking_matches_summary_bits(self, artifacts):
        summaries = artifacts.summaries
        derived = {name for name, summary in summaries.items()
                   if summary.may_block} | artifacts.blocking.seeds
        assert derived == artifacts.blocking.may_block


# ---------------------------------------------------------------------------
# Engine wiring: waves, parallel equivalence, persistence
# ---------------------------------------------------------------------------

class TestEngineSummaries:
    def test_wave_parallel_solve_matches_serial(self, kernel_program):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        graph, indirect = build_direct_callgraph(kernel_program)
        analysis = FunctionPointerAnalysis(kernel_program, Precision.TYPE_BASED)
        analysis.collect()
        analysis.resolve(graph, indirect)
        condensation = condense_callgraph(graph)
        serial = solve_summaries(kernel_program, graph, condensation)
        engine = AnalysisEngine()
        parallel = engine._compute_summaries(kernel_program, graph,
                                             condensation, jobs=3)
        assert parallel == serial
        assert list(parallel) == list(serial)   # merge order identical too

    def test_summary_cache_round_trips_through_disk(self, tmp_path):
        first = AnalysisEngine(cache_dir=tmp_path)
        report_one = first.run(analyses="stackcheck")
        assert report_one.summary_stats["cache_hit"] is False
        second = AnalysisEngine(cache_dir=tmp_path)
        report_two = second.run(analyses="stackcheck")
        assert report_two.summary_stats["cache_hit"] is True
        assert (report_one.analyses["stackcheck"].metrics
                == report_two.analyses["stackcheck"].metrics)

    def test_summary_stats_reported(self):
        report = AnalysisEngine().run(analyses="stackcheck")
        stats = report.summary_stats
        assert stats["functions"] > 100
        assert stats["sccs"] > 0
        assert stats["waves"] > 1
        assert "summaries:" in report.render_text()


# ---------------------------------------------------------------------------
# CLI: the callgraph subcommand and the bench trajectory
# ---------------------------------------------------------------------------

class TestCallgraphCli:
    def test_text_output_has_condensation_and_witness(self, capsys):
        assert cli_main(["callgraph"]) == 0
        out = capsys.readouterr().out
        assert "call-graph condensation" in out
        assert "bottom-up waves" in out
        assert "may-block witnesses" in out
        # The seeded interprocedural bug's witness chain is explained.
        assert "buggy_deferred_flush:" in out

    def test_single_function_witness(self, capsys):
        assert cli_main(["callgraph", "--function", "buggy_stats_update"]) == 0
        out = capsys.readouterr().out
        assert "buggy_stats_update -> audit_log_event" in out

    def test_json_output(self, capsys):
        assert cli_main(["callgraph", "--format", "json",
                         "--function", "schedule"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-engine-callgraph/1"
        summary = payload["summaries"]["schedule"]
        assert summary["may_block"] is True
        assert summary["witness"] == ["schedule"]

    def test_unknown_function_rejected(self, capsys):
        assert cli_main(["callgraph", "--function", "nonsense"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_bench_json_accumulates_runs(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        for _ in range(2):
            assert cli_main(["run", "--analyses", "stackcheck",
                             "--cache-dir", str(tmp_path / "cache"),
                             "--bench-json", str(path)]) == 0
            capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-engine-bench/1"
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["summary_stats"]["cache_hit"] is False
        assert payload["runs"][1]["summary_stats"]["cache_hit"] is True
        assert payload["summary_cache_hit_rate"] == 0.5
