"""Unit tests for the MiniC parser."""

import pytest

from repro.annotations import AnnotationKind
from repro.minic import ast, parse_expression, parse_source
from repro.minic.ctypes import CArray, CFunc, CInt, CPointer, CStruct
from repro.minic.errors import ParseError
from repro.minic.parser import evaluate_constant


def parse_one(src):
    unit = parse_source(src)
    assert len(unit.decls) >= 1
    return unit.decls[0]


class TestDeclarations:
    def test_global_int(self):
        decl = parse_one("int counter;")
        assert isinstance(decl, ast.Declaration)
        assert isinstance(decl.type, CInt)

    def test_pointer_declaration(self):
        decl = parse_one("char *name;")
        assert isinstance(decl.type, CPointer)

    def test_array_declaration(self):
        decl = parse_one("int table[16];")
        assert isinstance(decl.type, CArray)
        assert decl.type.length == 16

    def test_array_size_constant_expression(self):
        decl = parse_one("int table[4 * 8];")
        assert decl.type.length == 32

    def test_static_storage(self):
        decl = parse_one("static int x;")
        assert decl.storage == "static"

    def test_typedef_registers_name(self):
        unit = parse_source("typedef unsigned int u32; u32 value;")
        value_decl = unit.decls[1]
        assert value_decl.type.strip().is_integer()

    def test_multiple_declarators(self):
        unit = parse_source("int a, b, c;")
        assert [d.name for d in unit.decls] == ["a", "b", "c"]

    def test_initializer_list_with_designators(self):
        decl = parse_one("struct point { int x; int y; };")
        unit = parse_source(
            "struct point { int x; int y; };"
            "struct point origin = { .x = 1, .y = 2 };")
        init = unit.decls[1].init
        assert init.is_list
        assert init.field_names == ["x", "y"]


class TestStructsAndEnums:
    def test_struct_definition(self):
        decl = parse_one("struct pair { int first; int second; };")
        struct = decl.ctype
        assert isinstance(struct, CStruct)
        assert struct.complete
        assert [f.name for f in struct.fields] == ["first", "second"]

    def test_self_referential_struct(self):
        decl = parse_one("struct node { int v; struct node *next; };")
        next_field = decl.ctype.field_named("next")
        assert isinstance(next_field.type, CPointer)

    def test_union(self):
        decl = parse_one("union value { int i; char c; };")
        assert decl.ctype.is_union

    def test_enum_values(self):
        unit = parse_source("enum state { IDLE, RUNNING = 5, DONE };")
        enum = unit.decls[0].ctype
        assert enum.members == {"IDLE": 0, "RUNNING": 5, "DONE": 6}

    def test_enum_constant_folded_in_expressions(self):
        unit = parse_source("enum state { GO = 3 }; int x = GO + 1;")
        init = unit.decls[1].init
        assert evaluate_constant(init.expr) == 4


class TestFunctions:
    def test_function_definition(self):
        func = parse_one("int add(int a, int b) { return a + b; }")
        assert isinstance(func, ast.FuncDef)
        ftype = func.type
        assert isinstance(ftype, CFunc)
        assert [p.name for p in ftype.params] == ["a", "b"]

    def test_void_parameter_list(self):
        func = parse_one("void init(void) { }")
        assert func.type.params == []

    def test_varargs_prototype(self):
        decl = parse_one("int printk(char *fmt, ...);")
        assert decl.type.strip().varargs

    def test_function_pointer_declarator(self):
        decl = parse_one("int (*handler)(int irq, void *dev);")
        pointer = decl.type
        assert isinstance(pointer, CPointer)
        assert isinstance(pointer.target, CFunc)

    def test_function_pointer_struct_field(self):
        decl = parse_one(
            "struct ops { int (*open)(int fd); int (*close)(int fd); };")
        field = decl.ctype.field_named("open")
        assert isinstance(field.type.strip(), CPointer)

    def test_array_parameter_decays_to_pointer(self):
        func = parse_one("int sum(int values[], int n) { return n; }")
        assert isinstance(func.type.params[0].type, CPointer)


class TestAnnotations:
    def test_count_annotation_on_pointer(self):
        func = parse_one("int sum(int * count(n) buf, int n) { return 0; }")
        pointer = func.type.params[0].type
        annotation = pointer.annotations.get(AnnotationKind.COUNT)
        assert annotation is not None
        assert isinstance(annotation.args[0], ast.Ident)

    def test_nullterm_annotation(self):
        func = parse_one("int slen(char * nullterm s) { return 0; }")
        assert func.type.params[0].type.annotations.has(AnnotationKind.NULLTERM)

    def test_trailing_blocking_annotation(self):
        decl = parse_one("void schedule(void) blocking;")
        assert decl.annotations.has(AnnotationKind.BLOCKING)

    def test_blocking_if_wait(self):
        decl = parse_one("void *kmalloc(unsigned int size, int flags) blocking_if_wait;")
        assert decl.annotations.has(AnnotationKind.BLOCKING_IF_WAIT)

    def test_trusted_block_statement(self):
        func = parse_one("int f(void) { trusted { return 1; } }")
        assert isinstance(func.body.stmts[0], ast.Block)
        assert func.body.stmts[0].trusted

    def test_trusted_cast(self):
        func = parse_one(
            "struct list_head { struct list_head *next; };"
            "struct task { struct list_head run; int pid; };")
        unit = parse_source(
            "struct list_head { struct list_head *next; };"
            "struct task { struct list_head run; int pid; };"
            "struct task *conv(struct list_head *e) {"
            "    return (struct task * trusted)e;"
            "}")
        ret = unit.decls[-1].body.stmts[0]
        assert isinstance(ret.value, ast.Cast)
        assert ret.value.trusted

    def test_plain_variable_named_like_annotation_keyword(self):
        # "int * nullterm;" declares a variable called nullterm.
        decl = parse_one("int * nullterm;")
        assert decl.name == "nullterm"


class TestStatements:
    def test_if_else(self):
        func = parse_one("int f(int x) { if (x) { return 1; } else { return 2; } }")
        assert isinstance(func.body.stmts[0], ast.If)

    def test_for_loop(self):
        func = parse_one("int f(void) { int i; for (i = 0; i < 4; i++) { } return i; }")
        assert any(isinstance(s, ast.For) for s in func.body.stmts)

    def test_while_and_do_while(self):
        func = parse_one("void f(int n) { while (n) { n--; } do { n++; } while (n < 3); }")
        kinds = [type(s).__name__ for s in func.body.stmts]
        assert "While" in kinds and "DoWhile" in kinds

    def test_switch_cases(self):
        func = parse_one(
            "int f(int x) { switch (x) { case 1: return 1; default: return 0; } }")
        switch = func.body.stmts[0]
        assert len(switch.cases) == 2
        assert switch.cases[1].value is None

    def test_goto_and_label(self):
        func = parse_one("int f(void) { goto out; out: return 3; }")
        assert isinstance(func.body.stmts[0], ast.Goto)
        assert isinstance(func.body.stmts[1], ast.Label)

    def test_asm_statement(self):
        func = parse_one('void f(void) { asm("cli"); }')
        assert isinstance(func.body.stmts[0], ast.Asm)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert evaluate_constant(expr) == 7

    def test_parentheses(self):
        assert evaluate_constant(parse_expression("(1 + 2) * 3")) == 9

    def test_ternary(self):
        assert evaluate_constant(parse_expression("1 ? 10 : 20")) == 10

    def test_bitwise_and_shift(self):
        assert evaluate_constant(parse_expression("(1 << 4) | 3")) == 19

    def test_unary_operators(self):
        assert evaluate_constant(parse_expression("-(3) + ~0 + !5")) == -4

    def test_member_and_index_chain(self):
        expr = parse_expression("table[i]->field.next")
        assert isinstance(expr, ast.Member)
        assert not expr.arrow

    def test_call_with_arguments(self):
        expr = parse_expression("kmalloc(sizeof(x), 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_assignment_expression(self):
        expr = parse_expression("a = b = 3")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expression("total += 4")
        assert expr.op == "+="

    def test_comma_operator(self):
        expr = parse_expression("(a, b, c)")
        assert isinstance(expr, ast.Comma)
        assert len(expr.exprs) == 3


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("int x")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse_source("int f(void) { return 0;")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse_expression("1 + * 2 +")

    def test_non_constant_array_size(self):
        with pytest.raises(ParseError):
            parse_source("int f(int n) { int a[n * m]; return 0; }")
