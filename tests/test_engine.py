"""Tests for the unified analysis engine: cache behaviour, parse-once
guarantee, serial/parallel equivalence, standalone-checker equivalence, and
the CLI's report formats."""

from __future__ import annotations

import json

import pytest

from repro.analyses import analyse_error_checks, analyse_locks, analyse_stack
from repro.blockstop import find_irq_handlers, run_blockstop
from repro.deputy import ObligationStatus, check_program
from repro.engine import AnalysisEngine, ArtifactCache, EngineReport
from repro.engine.cli import main as cli_main
from repro.kernel import build as kernel_build
from repro.kernel.corpus import KERNEL_FILES, CorpusFile


@pytest.fixture(scope="module")
def engine():
    return AnalysisEngine()


@pytest.fixture(scope="module")
def engine_report(engine):
    return engine.run(analyses="all", jobs=1)


#: A corpus small enough that cache tests do not pay full-kernel parse costs.
TINY_SOURCE = """
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);
void schedule(void) blocking;
static int lock;
int bad(void) {
    spin_lock_irqsave(&lock);
    schedule();
    spin_unlock_irqrestore(&lock);
    return 0;
}
"""

TINY_FILES = (CorpusFile("tiny.c", TINY_SOURCE),)


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------

class TestArtifactCache:
    def test_hit_and_miss_accounting(self):
        cache = ArtifactCache()
        key = cache.content_key("thing", files=TINY_FILES)
        builds = []
        for _ in range(3):
            cache.get_or_build(key, lambda: builds.append(1) or "value")
        assert builds == [1]
        assert cache.misses == 1
        assert cache.hits == 2

    def test_content_key_invalidates_on_source_change(self):
        cache = ArtifactCache()
        key_before = cache.content_key("program", files=TINY_FILES)
        changed = (CorpusFile("tiny.c", TINY_SOURCE + "\nint extra;\n"),)
        key_after = cache.content_key("program", files=changed)
        assert key_before != key_after
        # Same content, fresh tuple: the key must be stable.
        same = (CorpusFile("tiny.c", TINY_SOURCE),)
        assert cache.content_key("program", files=same) == key_before

    def test_content_key_fields_are_delimited(self):
        # Shifting bytes between adjacent fields must change the key:
        # ('a.c', 'xb') and ('a.cx', 'b') concatenate identically.
        cache = ArtifactCache()
        left = cache.content_key("program", files=(CorpusFile("a.c", "xb"),))
        right = cache.content_key("program", files=(CorpusFile("a.cx", "b"),))
        assert left != right

    def test_content_key_depends_on_defines_and_extra(self):
        cache = ArtifactCache()
        base = cache.content_key("program", files=TINY_FILES)
        assert cache.content_key("program", files=TINY_FILES,
                                 defines={"DEBUG": "1"}) != base
        assert cache.content_key("program", files=TINY_FILES,
                                 extra={"precision": "x"}) != base

    def test_disk_layer_round_trip(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        key = cache.content_key("blob", files=TINY_FILES)
        cache.get_or_build(key, lambda: {"answer": 42})
        # A second cache over the same directory loads from disk.
        reloaded = ArtifactCache(cache_dir=tmp_path)
        value = reloaded.get_or_build(key, lambda: pytest.fail("should hit disk"))
        assert value == {"answer": 42}
        assert reloaded.disk_hits == 1

    def test_engine_disk_cache_skips_reparse(self, tmp_path):
        kernel_build.reset_parse_counts()
        first = AnalysisEngine(files=TINY_FILES, cache_dir=tmp_path)
        first.program()
        assert kernel_build.PARSE_COUNTS["tiny.c"] == 1
        second = AnalysisEngine(files=TINY_FILES, cache_dir=tmp_path)
        second.program()
        assert kernel_build.PARSE_COUNTS["tiny.c"] == 1  # loaded, not parsed

    def test_engine_reparses_when_source_changes(self, tmp_path):
        kernel_build.reset_parse_counts()
        AnalysisEngine(files=TINY_FILES, cache_dir=tmp_path).program()
        changed = (CorpusFile("tiny.c", TINY_SOURCE + "\nint extra;\n"),)
        AnalysisEngine(files=changed, cache_dir=tmp_path).program()
        assert kernel_build.PARSE_COUNTS["tiny.c"] == 2  # content changed


# ---------------------------------------------------------------------------
# Parse-once guarantee
# ---------------------------------------------------------------------------

class TestParseOnce:
    def test_full_run_parses_each_unit_exactly_once(self):
        kernel_build.reset_parse_counts()
        engine = AnalysisEngine()
        report = engine.run(analyses="all", jobs=1)
        assert set(report.analyses) == {"deputy", "blockstop", "errcheck",
                                        "lockcheck", "stackcheck", "ccount"}
        for corpus_file in KERNEL_FILES:
            assert kernel_build.PARSE_COUNTS[corpus_file.filename] == 1

    def test_second_run_parses_nothing(self):
        engine = AnalysisEngine()
        engine.run(analyses="all")
        kernel_build.reset_parse_counts()
        engine.run(analyses="all")
        assert sum(kernel_build.PARSE_COUNTS.values()) == 0


# ---------------------------------------------------------------------------
# Serial vs parallel
# ---------------------------------------------------------------------------

def normalized_report(report):
    """A report's deterministic content: everything but run metadata."""
    payload = report.to_dict()
    for key in ("jobs", "parallel", "elapsed_seconds", "cache_stats", "perf"):
        payload.pop(key, None)
    return payload


class TestParallel:
    def test_parallel_matches_serial(self, engine_report):
        parallel = AnalysisEngine().run(analyses="all", jobs=2)
        assert parallel.parallel, "multiprocessing mode did not engage"
        assert set(parallel.analyses) == set(engine_report.analyses)
        for name, serial_result in engine_report.analyses.items():
            parallel_result = parallel.analyses[name]
            assert parallel_result.findings == serial_result.findings, name
            assert parallel_result.metrics == serial_result.metrics, name

    def test_work_steal_report_identical_to_serial(self, engine_report):
        steal = AnalysisEngine().run(analyses="all", jobs=2,
                                     scheduler="work-steal")
        assert normalized_report(steal) == normalized_report(engine_report)
        scheduler_stats = steal.perf["scheduler"]
        assert scheduler_stats["mode"] == "work-steal"
        assert scheduler_stats["tasks"] > 0
        assert 0.0 <= scheduler_stats["worker_idle_ratio"] <= 1.0
        assert set(steal.perf["phases"]) >= {"parse", "artifacts", "checkers"}

    def test_wave_mode_report_identical_to_serial(self, engine_report):
        wave = AnalysisEngine().run(analyses="all", jobs=2, scheduler="wave")
        assert normalized_report(wave) == normalized_report(engine_report)

    def test_scrambled_completion_order_byte_identical(self, engine_report):
        """Out-of-order task completion must never change the report.

        The inline executor runs the exact work-steal task graph in-process
        with an adversarial ready-queue pick, so tasks complete in a
        scrambled (but dependency-legal) order; the merged report must be
        byte-identical with the serial run regardless."""
        import random

        rng = random.Random(20260808)
        engine = AnalysisEngine()
        engine._inline_pick = lambda ready: rng.randrange(len(ready))
        scrambled = engine.run(analyses="all", jobs=1, scheduler="inline")
        assert normalized_report(scrambled) == normalized_report(engine_report)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            AnalysisEngine().run(analyses="all", jobs=2, scheduler="magic")

    def test_jobs_one_stays_serial(self, engine_report):
        assert not engine_report.parallel

    def test_report_rendering_byte_identical_serial_vs_parallel(
            self, engine_report, tmp_path, capsys):
        """Shard merge order must never change the rendered report.

        Findings inside every analysis are sorted by (function, location)
        before rendering, so `repro-engine report` over a --jobs 4 run is
        byte-identical to the --jobs 1 run once the run metadata (timing,
        worker count) — which legitimately differs — is normalized.
        """
        parallel = AnalysisEngine().run(analyses="all", jobs=4)
        assert parallel.parallel
        renders = []
        for report in (engine_report, parallel):
            payload = report.to_dict()
            for key in ("jobs", "parallel", "elapsed_seconds", "cache_stats",
                        "perf"):
                payload.pop(key, None)
            path = tmp_path / f"report-{len(renders)}.json"
            path.write_text(json.dumps(payload, sort_keys=True))
            assert cli_main(["report", str(path), "--format", "text"]) == 0
            renders.append(capsys.readouterr().out.encode())
        assert renders[0] == renders[1]


# ---------------------------------------------------------------------------
# Equivalence with the standalone checkers
# ---------------------------------------------------------------------------

class TestStandaloneEquivalence:
    def test_blockstop(self, engine_report, kernel_program):
        standalone = run_blockstop(kernel_program)
        expected = {(v.caller, v.location.line, v.describe())
                    for v in standalone.reported}
        actual = {(f["function"], f["line"], f["message"])
                  for f in engine_report.analyses["blockstop"].findings}
        assert actual == expected

    def test_deputy(self, engine_report, kernel_program):
        standalone = check_program(kernel_program)
        metrics = engine_report.analyses["deputy"].metrics
        assert metrics["functions_checked"] == len(standalone)
        for status in ObligationStatus:
            expected = sum(result.count(status) for result in standalone.values())
            assert metrics[f"obligations_{status.name.lower()}"] == expected
        expected_errors = sorted(
            (error.location.line, error.message)
            for result in standalone.values() for error in result.errors)
        actual_errors = sorted((f["line"], f["message"])
                               for f in engine_report.analyses["deputy"].findings)
        assert actual_errors == expected_errors

    def test_errcheck(self, engine_report, kernel_program):
        standalone = analyse_error_checks(kernel_program)
        expected = {(c.caller, c.callee, c.location.line) for c in standalone.unchecked}
        actual = set()
        for finding in engine_report.analyses["errcheck"].findings:
            callee = finding["message"].split("result of ", 1)[1].split("()", 1)[0]
            actual.add((finding["function"], callee, finding["line"]))
        assert actual == expected
        assert (engine_report.analyses["errcheck"].metrics["checked_calls"]
                == standalone.checked_calls)

    def test_lockcheck(self, engine_report, kernel_program):
        standalone = analyse_locks(kernel_program,
                                   irq_functions=find_irq_handlers(kernel_program))
        metrics = engine_report.analyses["lockcheck"].metrics
        assert metrics["acquisitions"] == len(standalone.acquisitions)
        assert metrics["order_violations"] == len(standalone.order_violations)
        assert metrics["irq_violations"] == len(standalone.irq_violations)

    def test_stackcheck(self, engine_report, kernel_program):
        # Independent derivation of the same basis the engine documents: the
        # BlockStop-style graph with points-to-resolved indirect edges (not
        # the engine's own artifact object, which would be circular).
        from repro.blockstop.callgraph import build_direct_callgraph
        from repro.blockstop.pointsto import FunctionPointerAnalysis, Precision

        graph, indirect_calls = build_direct_callgraph(kernel_program)
        pointsto = FunctionPointerAnalysis(kernel_program, Precision.TYPE_BASED)
        pointsto.collect()
        pointsto.resolve(graph, indirect_calls)
        standalone = analyse_stack(kernel_program, graph)
        metrics = engine_report.analyses["stackcheck"].metrics
        assert metrics["call_graph"] == "pointsto_resolved"
        assert metrics["worst_case_bytes"] == standalone.worst_case
        assert metrics["fits"] == standalone.fits
        assert metrics["recursive_functions"] == len(standalone.recursive_functions)

    def test_ccount_census_matches_harness_conversion_report(self, engine_report):
        from repro.ccount import build_conversion_report
        from repro.kernel.build import BuildConfig, build_kernel

        build = build_kernel(BuildConfig(ccount=True))
        census = build_conversion_report(build.program, build.ccount_result)
        metrics = engine_report.analyses["ccount"].metrics
        assert metrics["pointer_nullouts"] == census.pointer_nullouts
        assert metrics["rtti_sites"] == census.rtti_sites
        assert metrics["delayed_free_scopes"] == census.delayed_scopes
        assert (metrics["pointer_writes_instrumented"]
                == census.pointer_writes_instrumented)


# ---------------------------------------------------------------------------
# Shared artifacts
# ---------------------------------------------------------------------------

class TestSharedArtifacts:
    def test_fresh_program_is_private(self, engine):
        copy_one = engine.fresh_program()
        assert copy_one is not engine.program()
        # Mutating the copy must not leak into the shared parse.
        name = next(iter(copy_one.functions))
        del copy_one.functions[name]
        assert name in engine.program().functions

    def test_unit_function_map_covers_all_functions(self, engine):
        shared = engine.artifacts()
        mapped = [fn for names in shared.unit_functions.values() for fn in names]
        assert sorted(mapped) == sorted(engine.program().functions)

    def test_type_envs_are_shared(self, engine):
        shared = engine.artifacts()
        env = shared.env_for("schedule")
        assert env is shared.env_for("schedule")

    def test_fresh_kernel_program_guards_corpus_mismatch(self, engine):
        from repro.kernel.build import BuildConfig
        from repro.kernel.corpus import ALL_FILES

        assert engine.fresh_kernel_program(BuildConfig()) is not None
        assert engine.fresh_kernel_program(
            BuildConfig(defines={"DEBUG": "1"})) is None
        mismatched = AnalysisEngine(files=ALL_FILES)
        assert mismatched.fresh_kernel_program(BuildConfig()) is None
        # The harness paths must survive a mismatched engine by re-parsing.
        from repro.harness import run_deputy_stats
        assert run_deputy_stats(engine=mismatched).shape_holds()


# ---------------------------------------------------------------------------
# CLI and report formats
# ---------------------------------------------------------------------------

class TestCli:
    def test_run_json_and_report_round_trip(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = cli_main(["run", "--analyses", "blockstop,lockcheck",
                         "--format", "json", "--output", str(output)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["analyses"]) == {"blockstop", "lockcheck"}
        assert output.exists()

        code = cli_main(["report", str(output), "--format", "text"])
        assert code == 0
        text = capsys.readouterr().out
        assert "-- blockstop --" in text
        assert "violations_reported" in text

        # Round-trip through the dataclass as well.
        restored = EngineReport.from_dict(json.loads(output.read_text()))
        assert restored.analyses["blockstop"].metrics["violations_reported"] >= 1

    def test_run_rejects_unknown_analysis(self, capsys):
        assert cli_main(["run", "--analyses", "nonsense"]) == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_report_rejects_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert cli_main(["report", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_list_names_every_analysis(self, capsys):
        assert cli_main(["list"]) == 0
        names = capsys.readouterr().out.split()
        assert names == ["deputy", "blockstop", "errcheck", "lockcheck",
                         "stackcheck", "ccount"]

    def test_fail_on_findings_gates(self, capsys):
        code = cli_main(["run", "--analyses", "blockstop", "--fail-on-findings"])
        capsys.readouterr()
        assert code == 1  # the corpus's seeded bugs are findings

    def test_gen_corpus_writes_and_resumes(self, tmp_path, capsys):
        target = tmp_path / "scale"
        assert cli_main(["gen-corpus", str(target), "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "11 files" in out and "11 written" in out
        # A re-run is a no-op: every file's content hash already matches.
        assert cli_main(["gen-corpus", str(target), "--scale", "1"]) == 0
        assert "11 up to date" in capsys.readouterr().out

    def test_gen_corpus_rejects_bad_scale(self, tmp_path, capsys):
        assert cli_main(["gen-corpus", str(tmp_path / "x"), "--scale", "0"]) == 2
        assert "scale" in capsys.readouterr().err

    def test_run_analyzes_generated_corpus_dir(self, tmp_path, capsys):
        target = tmp_path / "scale"
        assert cli_main(["gen-corpus", str(target), "--scale", "1"]) == 0
        capsys.readouterr()
        code = cli_main(["run", "--analyses", "lockcheck", "--corpus-dir",
                         str(target), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["corpus_files"]) == 11

    def test_bench_entry_records_tag_and_perf(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = cli_main(["run", "--analyses", "lockcheck", "--bench-json",
                         str(bench), "--bench-tag", "scale"])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(bench.read_text())
        (entry,) = payload["runs"]
        assert entry["tag"] == "scale"
        assert "phases" in entry["perf"]
        assert entry["perf"]["scheduler"]["mode"] == "serial"


# ---------------------------------------------------------------------------
# Harness wiring
# ---------------------------------------------------------------------------

class TestHarnessWiring:
    def test_blockstop_eval_before_leg_is_type_based_for_any_engine(self):
        """The eval's before/after legs are TYPE_BASED by definition; a
        field-sensitive engine must not silently change (or mislabel) them."""
        from repro.blockstop import Precision
        from repro.harness import run_blockstop_eval

        default = run_blockstop_eval()
        from_fs_engine = run_blockstop_eval(
            engine=AnalysisEngine(precision=Precision.FIELD_SENSITIVE))
        assert from_fs_engine.before.precision == "type_based"
        assert (from_fs_engine.before.violations_reported
                == default.before.violations_reported)
        assert (from_fs_engine.field_sensitive.violations_reported
                == default.field_sensitive.violations_reported)

    def test_run_all_parses_corpus_once(self):
        from repro.harness import run_all

        kernel_build.reset_parse_counts()
        run_all(include_table1=False)
        for corpus_file in KERNEL_FILES:
            assert kernel_build.PARSE_COUNTS[corpus_file.filename] == 1
