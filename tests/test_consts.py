"""Condition-aware dataflow: the constant-propagation lattice, branch-edge
refinement, infeasible-edge pruning in every client solve, and the engine's
keyed constant-facts artifact."""

import json
import multiprocessing

import pytest

from repro.analyses.errcheck import analyse_error_checks, find_error_returning_functions
from repro.analyses.lockcheck import analyse_locks, collect_lock_facts
from repro.blockstop.callgraph import build_direct_callgraph
from repro.blockstop.checker import run_blockstop
from repro.dataflow import build_cfg, solve_summaries
from repro.dataflow.cfg import COND
from repro.dataflow.consts import (
    FunctionConsts,
    eval_const,
    solve_function_consts,
    solve_program_consts,
    trackable_names,
    transfer_expr,
)
from repro.dataflow.domains import solve_program_facts
from repro.deputy.checker import ObligationKind, ObligationStatus, check_program
from repro.engine.cli import main as cli_main
from repro.engine.core import AnalysisEngine
from repro.kernel.build import parse_corpus
from repro.kernel.corpus import CorpusFile
from repro.minic.parser import parse_expression


def parse(source: str, filename: str = "test.c"):
    return parse_corpus((CorpusFile(filename, source),))


def expr(text: str):
    return parse_expression(text)


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

class TestEvalConst:
    @pytest.mark.parametrize("text, expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("-(20 + 2)", -22),
        ("0 - 22", -22),
        ("7 / 2", 3),
        ("-7 / 2", -3),          # C truncates toward zero
        ("-7 % 2", -1),
        ("1 << 4", 16),
        ("255 >> 4", 15),
        ("0x10 | 1", 17),
        ("6 & 3", 2),
        ("5 ^ 1", 4),
        ("~0", -1),
        ("!0", 1),
        ("!42", 0),
        ("3 == 3", 1),
        ("3 != 3", 0),
        ("2 < 3", 1),
        ("1 ? 10 : 20", 10),
        ("0 ? 10 : 20", 20),
        ("'A'", 65),
    ])
    def test_folds(self, text, expected):
        assert eval_const(expr(text)) == expected

    def test_division_by_zero_is_unknown(self):
        assert eval_const(expr("1 / 0")) is None
        assert eval_const(expr("1 % 0")) is None

    def test_short_circuit_decides_without_right_operand(self):
        assert eval_const(expr("0 && unknown")) == 0
        assert eval_const(expr("3 || unknown")) == 1
        assert eval_const(expr("1 && unknown")) is None

    def test_idents_fold_through_the_environment(self):
        assert eval_const(expr("x + 1"), {"x": 4}) == 5
        assert eval_const(expr("x + 1"), {}) is None

    def test_ternary_with_agreeing_arms(self):
        assert eval_const(expr("unknown ? 3 : 3")) == 3
        assert eval_const(expr("unknown ? 3 : 4")) is None

    def test_casts_are_value_transparent(self):
        assert eval_const(expr("(int)12")) == 12

    def test_calls_never_fold(self):
        assert eval_const(expr("f() + 1")) is None


# ---------------------------------------------------------------------------
# Trackable names and the transfer
# ---------------------------------------------------------------------------

TRANSFER_SRC = r"""
int global_mode;
void helper(int *p);
void f(int a, int b) {
    int x;
    int escaped;
    int arr[4];
    x = 1;
    escaped = 2;
    helper(&escaped);
    arr[0] = 3;
}
"""


class TestTrackableNames:
    def test_safe_names(self):
        program = parse(TRANSFER_SRC)
        safe = trackable_names(program.functions["f"])
        assert {"a", "b", "x"} <= safe
        assert "escaped" not in safe      # address taken
        assert "arr" not in safe          # arrays decay to pointers
        assert "global_mode" not in safe  # globals are never tracked

    def test_transfer_binds_and_kills(self):
        safe = frozenset({"x", "y"})
        env = transfer_expr({}, expr("x = 3"), safe)
        assert env == {"x": 3}
        env = transfer_expr(env, expr("y = x + 1"), safe)
        assert env == {"x": 3, "y": 4}
        env = transfer_expr(env, expr("x = f()"), safe)
        assert env == {"y": 4}            # unknown value kills the binding
        env = transfer_expr(env, expr("y += 2"), safe)
        assert env == {"y": 6}
        env = transfer_expr(env, expr("y++"), safe)
        assert env == {"y": 7}

    def test_assignment_under_short_circuit_joins_not_binds(self):
        """An assignment that only *may* execute must not bind its value."""
        safe = frozenset({"k"})
        assert transfer_expr({"k": 0}, expr("flag && (k = 1)"), safe) == {}
        assert transfer_expr({"k": 0}, expr("flag || (k = 1)"), safe) == {}
        # A decided left operand settles whether the right side runs.
        assert transfer_expr({"k": 0}, expr("0 && (k = 1)"), safe) == {"k": 0}
        assert transfer_expr({"k": 0}, expr("1 && (k = 1)"), safe) == {"k": 1}
        assert transfer_expr({"k": 0}, expr("1 || (k = 1)"), safe) == {"k": 0}

    def test_assignment_in_ternary_arms_joins(self):
        safe = frozenset({"k"})
        assert transfer_expr({}, expr("flag ? (k = 1) : (k = 2)"), safe) == {}
        assert transfer_expr({}, expr("flag ? (k = 1) : (k = 1)"), safe) == {"k": 1}
        assert transfer_expr({}, expr("1 ? (k = 1) : (k = 2)"), safe) == {"k": 1}

    def test_shadowed_names_are_not_trackable(self):
        program = parse(
            "void f(int p) { int k; k = 9; { int k; k = 1; } if (p) { int p; } }"
        )
        safe = trackable_names(program.functions["f"])
        assert "k" not in safe            # inner declaration shadows the outer
        assert "p" not in safe            # local shadows the parameter


# ---------------------------------------------------------------------------
# Branch-edge refinement and infeasibility
# ---------------------------------------------------------------------------

class TestEdgeRefinement:
    def prune(self, body: str, params: str = "int n"):
        program = parse("void f(%s) { %s }" % (params, body))
        func = program.functions["f"]
        cfg = build_cfg(func)
        return cfg, solve_function_consts(func, cfg)

    def test_if_zero_arm_is_unreachable(self):
        cfg, fc = self.prune("if (0) { n = 1; } n = 2;")
        assert fc.prunes
        # The true edge is pruned and the then-block never becomes reachable.
        dead = [b.index for b in cfg.blocks
                if b.index not in fc.reachable and b.elements]
        assert dead, "the if (0) arm should be unreachable"

    def test_if_one_keeps_the_arm_and_prunes_the_false_edge(self):
        cfg, fc = self.prune("if (1) { n = 1; } else { n = 2; } n = 3;")
        labels = {cfg.blocks[b].succs[pos].label for b, pos in fc.infeasible}
        assert labels == {"false"}

    def test_env_dependent_pruning(self):
        cfg, fc = self.prune("int x; x = 0; if (x) { n = 1; }")
        assert fc.prunes
        cfg2, fc2 = self.prune("int x; x = n; if (x) { n = 1; }")
        assert not fc2.prunes             # x unknown: nothing to prune

    def test_equality_edge_facts(self):
        cfg, fc = self.prune("if (n == 5) { n = n + 1; }")
        facts = set()
        for binding in fc.edge_facts.values():
            facts.update(binding)
        assert ("n", 5) in facts

    def test_condition_with_side_effects_contributes_nothing(self):
        cfg, fc = self.prune("int x; x = 0; if (x++) { n = 1; }")
        assert not fc.prunes
        assert not fc.edge_facts

    def test_switch_constant_scrutinee_keeps_one_live_case_edge(self):
        cfg, fc = self.prune(
            "switch (3) { case 1: n = 1; break; case 3: n = 3; break; "
            "default: n = 9; break; }")
        dispatch = [b for b in cfg.blocks
                    if b.elements and b.elements[-1].kind == COND]
        block = dispatch[0]
        live = [edge for pos, edge in enumerate(block.succs)
                if (block.index, pos) not in fc.infeasible]
        assert len(live) == 1
        assert live[0].label == "case"

    def test_switch_unmatched_constant_takes_default(self):
        cfg, fc = self.prune(
            "switch (7) { case 1: n = 1; break; default: n = 9; break; }")
        dispatch = [b for b in cfg.blocks
                    if b.elements and b.elements[-1].kind == COND][0]
        live = [edge.label for pos, edge in enumerate(dispatch.succs)
                if (dispatch.index, pos) not in fc.infeasible]
        assert live == ["default"]

    def test_switch_case_edges_bind_the_scrutinee(self):
        cfg, fc = self.prune(
            "switch (n) { case 2: n = n + 1; break; default: break; }")
        facts = set()
        for binding in fc.edge_facts.values():
            facts.update(binding)
        assert ("n", 2) in facts

    def test_do_while_zero_body_runs_once(self):
        cfg, fc = self.prune("do { n = n + 1; } while (0); n = n + 2;")
        # Only the back edge (the cond's true edge) is pruned: the body is
        # still reachable (it runs exactly once), the loop never repeats.
        assert len(fc.infeasible) == 1
        ((block_index, pos),) = fc.infeasible
        assert cfg.blocks[block_index].succs[pos].label == "true"
        body_blocks = [b.index for b in cfg.blocks
                       if any(e.kind == "expr" for e in b.elements)]
        assert all(b in fc.reachable for b in body_blocks)

    def test_while_zero_body_is_unreachable(self):
        cfg, fc = self.prune("while (0) { n = 1; } n = 2;")
        dead = [b.index for b in cfg.blocks
                if b.index not in fc.reachable and b.elements]
        assert dead, "the while (0) body should be unreachable"

    def test_maybe_assignment_never_prunes_a_live_edge(self):
        """`flag && (k = 1)` may leave k = 0: `if (k == 0)` stays feasible,
        so a lock acquired in that arm is still seen (no false negative)."""
        program = parse(
            "struct spinlock g;\n"
            "int f(int flag) {\n"
            "    int k;\n"
            "    k = 0;\n"
            "    flag && (k = 1);\n"
            "    if (k == 0) { spin_lock(&g); return 1; }\n"
            "    return 0;\n"
            "}\n"
        )
        func = program.functions["f"]
        assert not solve_function_consts(func).prunes
        facts = collect_lock_facts(program)
        assert [a for a in facts.acquisitions if a.function == "f"]

    def test_shadowed_binding_never_prunes_a_live_edge(self):
        program = parse(
            "struct spinlock g;\n"
            "int f(int flag) {\n"
            "    int k;\n"
            "    k = 9;\n"
            "    if (flag) { int k; k = 1; }\n"
            "    if (k == 9) { spin_lock(&g); return 1; }\n"
            "    return 0;\n"
            "}\n"
        )
        assert not solve_function_consts(program.functions["f"]).prunes
        facts = collect_lock_facts(program)
        assert [a for a in facts.acquisitions if a.function == "f"]

    def test_goto_into_a_dead_arm_revives_it(self):
        cfg, fc = self.prune(
            "if (n > 0) { goto out; } "
            "if (0) { out: n = 5; } "
            "n = 6;")
        # The if (0) edge is pruned, but the labelled block is still entered
        # through the goto, so it stays reachable.
        assert fc.prunes
        label_blocks = [b.index for b in cfg.blocks
                        if any("5" in str(getattr(e.expr, "value", ""))
                               for e in b.elements)]
        assert all(b in fc.reachable for b in label_blocks)


# ---------------------------------------------------------------------------
# Client pruning: lockcheck, blockstop, errcheck
# ---------------------------------------------------------------------------

GATED_LOCK_SRC = r"""
#define DEBUG 0
#define TRACE 1
struct spinlock lk;
int gated(int n) {
    if (DEBUG) {
        spin_lock(&lk);
        if (n > 4) { return -1; }
        spin_unlock(&lk);
    }
    return 0;
}
int live(int n) {
    if (TRACE) {
        spin_lock(&lk);
        if (n > 4) { return -1; }
        spin_unlock(&lk);
    }
    return 0;
}
int call_gated(int n) { return gated(n); }
int call_live(int n) { return live(n); }
"""


class TestLockcheckPruning:
    @pytest.fixture(scope="class")
    def program(self):
        return parse(GATED_LOCK_SRC)

    def test_dead_acquire_never_recorded_or_leaked(self, program):
        facts = collect_lock_facts(program)
        assert not [a for a in facts.acquisitions if a.function == "gated"]
        assert not [leak for leak in facts.leaks
                    if leak.function in ("gated", "call_gated")]

    def test_live_twin_still_reports(self, program):
        facts = collect_lock_facts(program)
        assert [a for a in facts.acquisitions if a.function == "live"]
        leakers = {leak.function for leak in facts.leaks}
        assert "live" in leakers

    def test_caller_summaries_stay_clean(self, program):
        report = analyse_locks(program)
        leakers = {leak.function for leak in report.leaked_returns}
        assert "call_gated" not in leakers
        assert "call_live" in leakers


BLOCK_SRC = r"""
#define DEBUG 0
void might_sleep(void) blocking;
void fast_path(void) {
    local_irq_disable();
    if (DEBUG) {
        might_sleep();
    }
    local_irq_enable();
}
void slow_path(void) {
    local_irq_disable();
    if (1) {
        might_sleep();
    }
    local_irq_enable();
}
"""


class TestBlockstopPruning:
    def test_dead_blocking_call_not_reported(self):
        program = parse(BLOCK_SRC)
        result = run_blockstop(program)
        callers = {v.caller for v in result.reported}
        assert "fast_path" not in callers
        assert "slow_path" in callers
        atomic_callers = {s.caller for s in result.atomic_call_sites}
        assert "fast_path" not in atomic_callers


ERRCHECK_SRC = r"""
#define EINVAL 22
#define ERR_BASE 20
int helper(void) { return -EINVAL; }
int folded_helper(void) { return 0 - EINVAL; }
int folded_expr_helper(void) { return -(ERR_BASE + 2); }
int dead_call(void) {
    if (0) {
        helper();
    }
    return 0;
}
int dead_store(void) {
    int rc;
    if (0) {
        rc = helper();
    }
    return 0;
}
int switch_checked(void) {
    int rc;
    rc = helper();
    switch (rc) {
    case -EINVAL:
        return 1;
    case 0:
        return 0;
    default:
        return 2;
    }
}
int folded_compare_checked(void) {
    int rc;
    rc = helper();
    if (rc == 0 - EINVAL) {
        return 1;
    }
    return 0;
}
int genuinely_unchecked(void) {
    int rc;
    rc = helper();
    return 0;
}
"""


class TestErrcheckConsts:
    @pytest.fixture(scope="class")
    def report(self):
        program = parse(ERRCHECK_SRC)
        return analyse_error_checks(program)

    def test_folded_returns_detected_as_error_returning(self):
        program = parse(ERRCHECK_SRC)
        error_returning = find_error_returning_functions(program)
        assert {"helper", "folded_helper", "folded_expr_helper"} <= error_returning

    def test_dead_calls_create_no_obligation(self, report):
        callers = {u.caller for u in report.unchecked}
        assert "dead_call" not in callers
        assert "dead_store" not in callers

    def test_switch_on_result_credits_the_obligation(self, report):
        assert "switch_checked" not in {u.caller for u in report.unchecked}

    def test_folded_constant_compare_credits_the_obligation(self, report):
        assert "folded_compare_checked" not in {u.caller for u in report.unchecked}

    def test_live_unchecked_still_reports(self, report):
        assert "genuinely_unchecked" in {u.caller for u in report.unchecked}


# ---------------------------------------------------------------------------
# Summaries over the pruned CFG (incl. recursion)
# ---------------------------------------------------------------------------

RECURSIVE_SRC = r"""
struct spinlock g;
void might_sleep(void) blocking;
int even(int n);
int odd(int n) {
    if (0) {
        spin_lock(&g);
        might_sleep();
    }
    if (n == 0) { return 0; }
    return even(n - 1);
}
int even(int n) {
    while (0) { might_sleep(); }
    if (n == 0) { return 1; }
    return odd(n - 1);
}
"""


class TestSummariesPruned:
    def test_constant_false_guard_in_recursive_scc_converges_clean(self):
        program = parse(RECURSIVE_SRC)
        graph, _ = build_direct_callgraph(program)
        summaries = solve_summaries(program, graph)
        for name in ("odd", "even"):
            summary = summaries[name]
            assert summary.may_block is False
            assert summary.acquires == ()
            assert summary.may_return_held == ()

    def test_dead_effects_never_reach_callers(self):
        program = parse(GATED_LOCK_SRC)
        graph, _ = build_direct_callgraph(program)
        summaries = solve_summaries(program, graph)
        assert summaries["gated"].trivial_lock_effect
        assert summaries["call_gated"].trivial_lock_effect
        assert summaries["gated"].error_returns == ()
        # The live twin's effects do propagate.
        assert summaries["live"].may_return_held == ("&(lk)",)
        assert summaries["call_live"].may_return_held == ("&(lk)",)
        assert summaries["live"].error_returns == (-1,)


# ---------------------------------------------------------------------------
# Deputy: constant facts in the region cache
# ---------------------------------------------------------------------------

DEPUTY_SRC = r"""
int unknown(void);
void f(void) {
    int a[8];
    int k;
    k = 2;
    a[k] = 1;
    k = unknown();
    a[k] = 2;
}
void g(int k) {
    int a[8];
    if (k == 5) {
        a[k] = 1;
    }
    a[k] = 2;
}
void h(int k) {
    int a[8];
    switch (k) {
    case 3:
        a[k] = 1;
        break;
    case 100:
        break;
    default:
        a[k] = 2;
        break;
    }
}
void immune(void) {
    int a[8];
    int k;
    k = 4;
    unknown();
    a[k] = 1;
}
void maybe_assigned(int flag) {
    int a[8];
    int k;
    k = 20;
    flag && (k = 0);
    a[k] = 1;
}
void shadowed(int flag) {
    int a[8];
    int k;
    k = 20;
    if (flag) {
        int k;
        k = 0;
    }
    a[k] = 1;
}
"""


class TestDeputyConstFacts:
    @pytest.fixture(scope="class")
    def results(self):
        return check_program(parse(DEPUTY_SRC))

    @staticmethod
    def index_statuses(result):
        return [ob.status for ob in result.obligations
                if ob.kind is ObligationKind.INDEX]

    def test_constant_propagated_index_discharged_statically(self, results):
        statuses = self.index_statuses(results["f"])
        assert statuses == [ObligationStatus.STATIC, ObligationStatus.RUNTIME]

    def test_branch_refinement_discharges_inside_the_arm(self, results):
        statuses = self.index_statuses(results["g"])
        assert statuses == [ObligationStatus.STATIC, ObligationStatus.RUNTIME]

    def test_switch_dispatch_fact_discharges_the_case_arm(self, results):
        statuses = self.index_statuses(results["h"])
        # case 3 arm: k = 3 < 8 static; default arm: unknown, runtime.
        assert statuses == [ObligationStatus.STATIC, ObligationStatus.RUNTIME]

    def test_callee_immune_binding_survives_calls(self, results):
        statuses = self.index_statuses(results["immune"])
        assert statuses == [ObligationStatus.STATIC]

    def test_maybe_executed_assignment_keeps_the_check(self, results):
        # `flag && (k = 0)` may leave k = 20: discharging a[k] statically
        # would drop a bounds check the execution actually needs.
        statuses = self.index_statuses(results["maybe_assigned"])
        assert statuses == [ObligationStatus.RUNTIME]

    def test_shadowed_local_keeps_the_check(self, results):
        # The inner `k = 0` names different storage than the indexed k.
        statuses = self.index_statuses(results["shadowed"])
        assert statuses == [ObligationStatus.RUNTIME]


# ---------------------------------------------------------------------------
# The engine artifact: caching, determinism, CLI
# ---------------------------------------------------------------------------

class TestEngineConstsArtifact:
    def test_artifact_present_and_typed(self):
        artifacts = AnalysisEngine().artifacts()
        assert artifacts.consts
        solved = [fc for fc in artifacts.consts.values() if fc is not None]
        assert solved and all(isinstance(fc, FunctionConsts) for fc in solved)
        # The seeded condition-gated shapes prune edges.
        assert artifacts.consts["stats_sample_fast"].prunes
        assert artifacts.consts["audit_try_slot_debug"].prunes

    def test_disk_cache_round_trip(self, tmp_path):
        first = AnalysisEngine(cache_dir=tmp_path)
        report_one = first.run(analyses="lockcheck")
        assert report_one.summary_stats["consts_cache_hit"] is False
        second = AnalysisEngine(cache_dir=tmp_path)
        report_two = second.run(analyses="lockcheck")
        assert report_two.summary_stats["consts_cache_hit"] is True
        assert (second.artifacts().consts == first.artifacts().consts)
        assert (report_one.analyses["lockcheck"].metrics
                == report_two.analyses["lockcheck"].metrics)

    def test_parallel_solve_matches_serial(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        engine = AnalysisEngine()
        program = engine.program()
        serial = solve_program_facts(program)
        parallel = engine._compute_consts(program, jobs=3)
        assert parallel == serial
        assert list(parallel) == list(serial)   # merge order identical too

    def test_consts_stats_rendered(self):
        report = AnalysisEngine().run(analyses="lockcheck")
        stats = report.summary_stats
        assert stats["consts_functions"] > 50
        assert stats["consts_pruned_functions"] >= 2
        assert stats["consts_infeasible_edges"] >= 2
        assert "consts:" in report.render_text()
        assert "const_solve_ms" in report.cache_stats


class TestCfgCli:
    def test_text_dump_marks_infeasible_edges(self, capsys):
        assert cli_main(["cfg", "kernel/watchdog.c",
                         "--function", "stats_sample_fast"]) == 0
        out = capsys.readouterr().out
        assert "stats_sample_fast" in out
        assert "INFEASIBLE" in out
        assert "[true]" in out

    def test_json_dump_has_facts_and_marks(self, capsys):
        assert cli_main(["cfg", "kernel/watchdog.c", "--format", "json",
                         "--function", "audit_try_slot_debug"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-engine-cfg/2"
        (func,) = payload["functions"]
        assert func["function"] == "audit_try_slot_debug"
        edges = [edge for block in func["blocks"] for edge in block["edges"]]
        assert any(edge["infeasible"] for edge in edges)

    def test_on_disk_file(self, tmp_path, capsys):
        path = tmp_path / "small.c"
        path.write_text("void f(int n) { if (0) { n = 1; } }\n")
        assert cli_main(["cfg", str(path)]) == 0
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_unknown_file_rejected(self, capsys):
        assert cli_main(["cfg", "kernel/nope.c"]) == 2
        assert "neither a corpus translation unit" in capsys.readouterr().err

    def test_unknown_function_rejected(self, capsys):
        assert cli_main(["cfg", "kernel/watchdog.c",
                         "--function", "nonsense"]) == 2
        assert "unknown function" in capsys.readouterr().err
