"""Tests for the dependency-counted work-stealing executor."""

from __future__ import annotations

import os
import random

import pytest

from repro.engine.scheduler import (
    ExecutorError,
    InlineExecutor,
    Task,
    TaskGraph,
    WorkStealingExecutor,
    fork_available,
    resolve_jobs,
)


def chain_and_leaves(chain_length: int, leaf_count: int) -> list[Task]:
    """One long dependency chain plus many independent leaves.

    The starvation shape: under wave-barrier scheduling every wave past the
    first holds a single chain link, so all but one worker idles.
    """
    tasks = [Task(id="chain0", kind="chain", payload=0, wave=0)]
    for i in range(1, chain_length):
        tasks.append(Task(id=f"chain{i}", kind="chain", payload=i,
                          deps=(f"chain{i - 1}",), wave=i))
    for i in range(leaf_count):
        tasks.append(Task(id=f"leaf{i}", kind="leaf", payload=i, wave=0))
    return tasks


def echo_handler(kind, payload, state):
    return (kind, payload)


class TestTaskGraph:
    def test_initial_ready_is_submission_order(self):
        graph = TaskGraph([
            Task(id="a", kind="k"),
            Task(id="b", kind="k", deps=("a",)),
            Task(id="c", kind="k"),
        ])
        assert graph.ready == ["a", "c"]
        assert graph.outstanding == 3

    def test_complete_enqueues_newly_ready(self):
        graph = TaskGraph([
            Task(id="a", kind="k"),
            Task(id="b", kind="k"),
            Task(id="c", kind="k", deps=("a", "b")),
        ])
        assert [t.id for t in graph.pop_ready(2)] == ["a", "b"]
        assert graph.complete("a") == []
        assert graph.complete("b") == ["c"]
        assert graph.ready == ["c"]
        graph.pop_ready(1)
        assert graph.complete("c") == []
        assert graph.done

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph([Task(id="a", kind="k"), Task(id="a", kind="k")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            TaskGraph([Task(id="a", kind="k", deps=("ghost",))])

    def test_pop_ready_respects_limit_and_position(self):
        graph = TaskGraph([Task(id=f"t{i}", kind="k") for i in range(5)])
        taken = graph.pop_ready(2, position=1)
        assert [t.id for t in taken] == ["t1", "t2"]
        assert graph.ready == ["t0", "t3", "t4"]

    def test_starvation_shape_keeps_pool_busy(self):
        """Ready queue never starves a 4-wide pool on chain+leaves.

        Simulates 4 workers each completing one task per step: while the
        chain is still being walked there must always be work for every
        worker — the leaves fill the gaps the barrier scheduler leaves idle.
        """
        jobs = 4
        chain_length, leaf_count = 12, 60
        graph = TaskGraph(chain_and_leaves(chain_length, leaf_count))
        steps = 0
        while not graph.done:
            remaining = graph.outstanding
            batch = graph.pop_ready(jobs)
            # The pool is busy: every slot fills whenever enough work remains.
            assert len(batch) == min(jobs, remaining)
            if remaining > jobs:
                assert len(batch) == jobs
            for task in batch:
                graph.complete(task.id)
            steps += 1
        # Perfect packing: ceil(total / jobs) steps, versus the barrier
        # schedule's chain_length waves of mostly-idle pools.
        total = chain_length + leaf_count
        assert steps == -(-total // jobs)
        assert steps < chain_length + -(-leaf_count // jobs)


class TestInlineExecutor:
    def test_runs_all_tasks_in_dependency_order(self):
        order = []

        def handler(kind, payload, state):
            order.append(payload)
            return payload * 2

        with InlineExecutor(handler) as ex:
            results = ex.run([
                Task(id="a", kind="k", payload=1),
                Task(id="b", kind="k", payload=2, deps=("a",)),
                Task(id="c", kind="k", payload=3),
            ])
        assert results == {"a": 2, "b": 4, "c": 6}
        assert order.index(1) < order.index(2)
        assert ex.stats.tasks == 3

    def test_payload_fn_sees_dependency_results(self):
        def handler(kind, payload, state):
            return payload + 1

        with InlineExecutor(handler) as ex:
            results = ex.run([
                Task(id="a", kind="k", payload=10),
                Task(id="b", kind="k", deps=("a",),
                     payload_fn=lambda done: done["a"] * 100),
            ])
        assert results == {"a": 11, "b": 1101}

    def test_broadcast_reaches_handler_state(self):
        def handler(kind, payload, state):
            return state["factor"] * payload

        with InlineExecutor(handler) as ex:
            ex.broadcast("factor", 7)
            results = ex.run([Task(id="a", kind="k", payload=3)])
        assert results == {"a": 21}

    def test_scrambled_completion_order_same_results(self):
        """An adversarial picker changes execution order, never results."""
        tasks = chain_and_leaves(8, 20)
        with InlineExecutor(echo_handler) as ex:
            baseline = ex.run([Task(**vars(t)) for t in tasks])
        rng = random.Random(1234)
        for _ in range(5):
            with InlineExecutor(
                    echo_handler,
                    pick=lambda ready: rng.randrange(len(ready))) as ex:
                scrambled = ex.run([Task(**vars(t)) for t in tasks])
            assert scrambled == baseline

    def test_cycle_detected(self):
        with InlineExecutor(echo_handler) as ex:
            with pytest.raises(ExecutorError, match="cycle"):
                ex.run([
                    Task(id="a", kind="k", deps=("b",)),
                    Task(id="b", kind="k", deps=("a",)),
                ])

    def test_parent_tasks_results_available_to_payload_fn(self):
        with InlineExecutor(echo_handler) as ex:
            results = ex.run(
                [Task(id="a", kind="k",
                      payload_fn=lambda done: done["pre"] + 1)],
                parent_tasks=[("pre", lambda: 41)])
        assert results["pre"] == 41
        assert results["a"] == ("k", 42)

    def test_barrier_estimate_exceeds_span_for_starvation_shape(self):
        with InlineExecutor(echo_handler) as ex:
            ex.run(chain_and_leaves(10, 40))
        stats = ex.stats.to_dict()
        assert stats["tasks"] == 50
        assert stats["max_ready"] >= 40
        assert "worker_idle_ratio" in stats
        assert "barrier_vs_queue_delta" in stats


needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@needs_fork
class TestWorkStealingExecutor:
    def test_matches_inline_results(self):
        tasks = chain_and_leaves(10, 40)
        with InlineExecutor(echo_handler) as inline:
            expected = inline.run([Task(**vars(t)) for t in tasks])
        with WorkStealingExecutor(3, echo_handler) as ex:
            actual = ex.run([Task(**vars(t)) for t in tasks])
        assert actual == expected
        assert ex.stats.tasks == len(tasks)
        assert ex.stats.jobs == 3

    def test_dependency_results_ship_via_payload_fn(self):
        def handler(kind, payload, state):
            return payload + 1

        with WorkStealingExecutor(2, handler) as ex:
            results = ex.run([
                Task(id="a", kind="k", payload=1),
                Task(id="b", kind="k", payload=2),
                Task(id="c", kind="k", deps=("a", "b"),
                     payload_fn=lambda done: done["a"] * done["b"]),
            ])
        assert results == {"a": 2, "b": 3, "c": 7}

    def test_broadcast_visible_to_later_tasks(self):
        def handler(kind, payload, state):
            return state.get("base", 0) + payload

        with WorkStealingExecutor(2, handler) as ex:
            ex.broadcast("base", 100)
            first = ex.run([Task(id=f"t{i}", kind="k", payload=i)
                            for i in range(6)])
            ex.broadcast("base", 1000)
            second = ex.run([Task(id=f"u{i}", kind="k", payload=i)
                             for i in range(6)])
        assert first == {f"t{i}": 100 + i for i in range(6)}
        assert second == {f"u{i}": 1000 + i for i in range(6)}

    def test_persistent_pool_across_runs(self):
        with WorkStealingExecutor(2, echo_handler) as ex:
            for round_no in range(3):
                results = ex.run([Task(id=f"r{round_no}-{i}", kind="k",
                                       payload=i) for i in range(5)])
                assert len(results) == 5
            assert ex.stats.tasks == 15

    def test_parent_tasks_overlap_pool(self):
        with WorkStealingExecutor(2, echo_handler) as ex:
            results = ex.run(
                [Task(id=f"t{i}", kind="k", payload=i) for i in range(4)],
                parent_tasks=[("whole", lambda: "parent-ran")])
        assert results["whole"] == "parent-ran"
        assert results["t3"] == ("k", 3)

    def test_worker_error_propagates_with_traceback(self):
        def handler(kind, payload, state):
            if payload == "boom":
                raise ValueError("synthetic failure")
            return payload

        with WorkStealingExecutor(2, handler) as ex:
            with pytest.raises(ExecutorError, match="synthetic failure"):
                ex.run([Task(id="a", kind="k", payload="boom")])

    def test_run_after_close_rejected(self):
        ex = WorkStealingExecutor(2, echo_handler)
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.run([Task(id="a", kind="k")])

    def test_jobs_below_two_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingExecutor(1, echo_handler)

    def test_chunk_override_caps_dispatch(self):
        with WorkStealingExecutor(2, echo_handler, chunk=1) as ex:
            results = ex.run([Task(id=f"t{i}", kind="k", payload=i)
                              for i in range(12)])
        assert len(results) == 12
        assert ex.stats.max_chunk == 1
        assert ex.stats.to_dict()["max_chunk"] == 1
        # chunk=1 means every dispatch carried exactly one task.
        assert ex.stats.chunks == 12

    def test_chunk_below_one_rejected(self):
        with pytest.raises(ValueError, match="chunk"):
            WorkStealingExecutor(2, echo_handler, chunk=0)


def test_resolve_jobs():
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(-3) == 1
