"""The octagon (difference-bound) relational domain: lattice operations,
closure correctness, branch-condition refinement, widening termination on
the PR 6 loop shapes, per-domain prune attribution in the reduced product,
and the Deputy relational discharge the solved state enables."""

import pytest

from repro.dataflow.domains import (
    DEFAULT_DOMAINS,
    domain_fingerprint,
    solve_function_facts,
    solve_program_facts,
)
from repro.dataflow.octagons import (
    add_octagon_constraint,
    assign_octagon,
    close_octagon,
    entails_octagon,
    forget_octagon,
    freeze_octagon_env,
    join_octagon_envs,
    narrow_octagon_envs,
    oct_bound,
    oct_tighten,
    octagon_condition_facts,
    shift_octagon,
    thaw_octagon_env,
    widen_octagon_envs,
)
from repro.dataflow.solver import INFEASIBLE, FixpointDivergence
from repro.deputy.checker import (
    DeputyOptions,
    ObligationKind,
    ObligationStatus,
    check_program,
)
from repro.kernel.build import parse_corpus
from repro.kernel.corpus import CorpusFile
from repro.minic.parser import parse_expression


def parse(source: str, filename: str = "test.c"):
    return parse_corpus((CorpusFile(filename, source),))


def solve(source: str, name: str = "f"):
    program = parse(source)
    facts = solve_function_facts(program.functions[name])
    assert facts is not None
    return facts


def expr(text: str):
    return parse_expression(text)


SAFE = frozenset({"i", "j", "n", "m", "limit"})


def env_of(*rows):
    """Build an environment from ``(sx, x, sy, y, c)`` rows (sx*x+sy*y<=c)."""
    env = {}
    for sx, x, sy, y, c in rows:
        add_octagon_constraint(env, sx, x, sy, y, c)
    return env


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------

class TestOctagonLattice:
    def test_coherent_twins_share_one_key(self):
        # x - y <= 5 and (-y) - (-x) <= 5 are the same fact; recording
        # either form must land on (and be readable through) one key.
        env = {}
        oct_tighten(env, ("x", 1), ("y", 1), 5)
        assert len(env) == 1
        assert oct_bound(env, ("x", 1), ("y", 1)) == 5
        assert oct_bound(env, ("y", -1), ("x", -1)) == 5
        oct_tighten(env, ("y", -1), ("x", -1), 3)
        assert len(env) == 1
        assert oct_bound(env, ("x", 1), ("y", 1)) == 3

    def test_tighten_keeps_tighter_bound(self):
        env = env_of((1, "x", -1, "y", 5))
        add_octagon_constraint(env, 1, "x", -1, "y", 7)
        assert entails_octagon(env, 1, "x", -1, "y", 5)
        add_octagon_constraint(env, 1, "x", -1, "y", 2)
        assert entails_octagon(env, 1, "x", -1, "y", 2)

    def test_entailment_is_bound_comparison(self):
        env = env_of((1, "x", -1, "y", 3))  # x - y <= 3
        assert entails_octagon(env, 1, "x", -1, "y", 3)
        assert entails_octagon(env, 1, "x", -1, "y", 4)
        assert not entails_octagon(env, 1, "x", -1, "y", 2)
        assert not entails_octagon(env, -1, "x", 1, "y", 3)  # y - x unknown

    def test_unary_shapes_are_not_stored(self):
        # 2x <= c and 0 <= c are the interval component's job (or trivial).
        env = {}
        add_octagon_constraint(env, 1, "x", 1, "x", 4)
        add_octagon_constraint(env, 1, "x", -1, "x", 0)
        assert env == {}
        assert not entails_octagon(env, 1, "x", 1, "x", 100)

    def test_join_keeps_common_constraints_at_weaker_bound(self):
        a = env_of((1, "x", -1, "y", 1), (1, "x", -1, "z", 0))
        b = env_of((1, "x", -1, "y", 3))
        joined = join_octagon_envs(a, b)
        assert entails_octagon(joined, 1, "x", -1, "y", 3)
        assert not entails_octagon(joined, 1, "x", -1, "y", 2)
        assert not entails_octagon(joined, 1, "x", -1, "z", 10)

    def test_widen_drops_grown_and_vanished_constraints(self):
        old = env_of((1, "x", -1, "y", 1), (1, "x", -1, "z", 0))
        new = env_of((1, "x", -1, "y", 2))  # bound grew; x-z vanished
        widened = widen_octagon_envs(old, new)
        assert widened == {}

    def test_widen_result_is_subset_of_old(self):
        # The termination argument: the widened set only ever shrinks.
        old = env_of((1, "x", -1, "y", 5), (1, "y", -1, "z", 0))
        new = env_of((1, "x", -1, "y", 4), (1, "y", -1, "z", 1),
                     (1, "x", -1, "z", 9))
        widened = widen_octagon_envs(old, new)
        assert set(widened) <= set(old)
        assert all(widened[key] == old[key] for key in widened)
        assert entails_octagon(widened, 1, "x", -1, "y", 5)
        assert not entails_octagon(widened, 1, "y", -1, "z", 100)

    def test_narrow_readopts_only_dropped_constraints(self):
        old = env_of((1, "x", -1, "y", 5))
        new = env_of((1, "x", -1, "y", 2), (1, "x", -1, "z", 1))
        narrowed = narrow_octagon_envs(old, new)
        # The surviving bound never moves (oscillation risk); the constraint
        # widening threw away entirely comes back from the recomputed state.
        assert not entails_octagon(narrowed, 1, "x", -1, "y", 4)
        assert entails_octagon(narrowed, 1, "x", -1, "y", 5)
        assert entails_octagon(narrowed, 1, "x", -1, "z", 1)

    def test_forget_drops_every_mention(self):
        env = env_of((1, "x", -1, "y", 1), (1, "y", -1, "z", 2))
        left = forget_octagon(env, "y")
        assert left == {}
        kept = forget_octagon(env, "w")
        assert kept == env

    def test_shift_adjusts_both_occurrence_signs(self):
        env = env_of((1, "x", -1, "y", 3),   # x - y <= 3
                     (1, "y", -1, "x", 1))   # y - x <= 1
        shifted = shift_octagon(env, "x", 2)  # x = x + 2
        assert entails_octagon(shifted, 1, "x", -1, "y", 5)
        assert not entails_octagon(shifted, 1, "x", -1, "y", 4)
        assert entails_octagon(shifted, 1, "y", -1, "x", -1)

    def test_assign_forgets_then_relates(self):
        env = env_of((1, "x", -1, "z", 9), (1, "y", -1, "z", 0))
        out = assign_octagon(env, "x", 1, "y", 2)  # x = y + 2
        assert entails_octagon(out, 1, "x", -1, "y", 2)
        assert entails_octagon(out, -1, "x", 1, "y", -2)
        assert entails_octagon(out, 1, "y", -1, "z", 0)  # untouched
        assert not entails_octagon(out, 1, "x", -1, "z", 9)  # stale, dropped

    def test_freeze_thaw_roundtrip_is_deterministic(self):
        env = env_of((1, "x", -1, "y", 1), (1, "y", -1, "z", 2),
                     (1, "x", 1, "z", 7))
        frozen = freeze_octagon_env(env)
        assert frozen == tuple(sorted(frozen))
        assert thaw_octagon_env(frozen) == env
        assert freeze_octagon_env(thaw_octagon_env(frozen)) == frozen


# ---------------------------------------------------------------------------
# Closure
# ---------------------------------------------------------------------------

class TestClosure:
    def test_transitive_tightening(self):
        env = env_of((1, "x", -1, "y", 1), (1, "y", -1, "z", 2))
        closed = close_octagon(env)
        assert closed is not None
        assert entails_octagon(closed, 1, "x", -1, "z", 3)

    def test_closure_tightens_existing_bound(self):
        env = env_of((1, "x", -1, "y", 1), (1, "y", -1, "z", 2),
                     (1, "x", -1, "z", 10))
        closed = close_octagon(env)
        assert entails_octagon(closed, 1, "x", -1, "z", 3)

    def test_negative_cycle_is_contradiction(self):
        env = env_of((1, "x", -1, "y", -1), (1, "y", -1, "x", -1))
        assert close_octagon(env) is None

    def test_tight_zero_cycle_is_satisfiable(self):
        # x <= y and y <= x pin x == y: consistent, not contradictory.
        env = env_of((1, "x", -1, "y", 0), (1, "y", -1, "x", 0))
        closed = close_octagon(env)
        assert closed is not None
        assert entails_octagon(closed, 1, "x", -1, "y", 0)

    def test_equality_chain_composes(self):
        env = env_of((1, "x", -1, "y", 0), (1, "y", -1, "x", 0),
                     (1, "y", -1, "z", 0), (1, "z", -1, "y", 0))
        closed = close_octagon(env)
        assert entails_octagon(closed, 1, "x", -1, "z", 0)
        assert entails_octagon(closed, 1, "z", -1, "x", 0)

    def test_empty_env_stays_empty(self):
        assert close_octagon({}) == {}

    def test_unary_channel_not_materialized(self):
        # x - y <= -1 with x + y <= 4 derives 2x <= 3, but the derived
        # unary constraint must not appear in the output (intervals own it).
        env = env_of((1, "x", -1, "y", -1), (1, "x", 1, "y", 4))
        closed = close_octagon(env)
        assert closed is not None
        assert all(a[0] != b[0] for a, b in closed)


# ---------------------------------------------------------------------------
# Branch-condition refinement
# ---------------------------------------------------------------------------

class TestConditionFacts:
    def refine(self, text, branch_true=True, env=None, consts=None):
        return octagon_condition_facts(expr(text), branch_true,
                                       env if env is not None else {},
                                       consts or {}, SAFE)

    @pytest.mark.parametrize("text, sx, x, sy, y, c", [
        ("i < n", 1, "i", -1, "n", -1),
        ("i <= n", 1, "i", -1, "n", 0),
        ("i > n", -1, "i", 1, "n", -1),
        ("i >= n", -1, "i", 1, "n", 0),
    ])
    def test_orderings_add_difference_constraint(self, text, sx, x, sy, y, c):
        refined = self.refine(text)
        assert refined is not INFEASIBLE
        assert entails_octagon(refined, sx, x, sy, y, c)
        assert not entails_octagon(refined, sx, x, sy, y, c - 1)

    def test_equality_adds_both_directions(self):
        refined = self.refine("i == n")
        assert entails_octagon(refined, 1, "i", -1, "n", 0)
        assert entails_octagon(refined, -1, "i", 1, "n", 0)

    def test_false_branch_negates(self):
        refined = self.refine("i < n", branch_true=False)  # so i >= n
        assert entails_octagon(refined, -1, "i", 1, "n", 0)

    def test_logical_not_flips(self):
        refined = self.refine("!(i <= n)")  # so i > n
        assert entails_octagon(refined, -1, "i", 1, "n", -1)

    def test_constant_offsets_fold_into_the_bound(self):
        refined = self.refine("i + 1 <= n - 1")
        assert entails_octagon(refined, 1, "i", -1, "n", -2)

    def test_conjunction_records_both_and_closes(self):
        refined = self.refine("i < j && j < n")
        assert entails_octagon(refined, 1, "i", -1, "j", -1)
        assert entails_octagon(refined, 1, "j", -1, "n", -1)
        assert entails_octagon(refined, 1, "i", -1, "n", -2)  # via closure

    def test_denied_disjunction_records_both(self):
        refined = self.refine("i < j || j < n", branch_true=False)
        assert entails_octagon(refined, -1, "i", 1, "j", 0)   # i >= j
        assert entails_octagon(refined, -1, "j", 1, "n", 0)   # j >= n
        assert entails_octagon(refined, -1, "i", 1, "n", 0)   # via closure

    def test_contradicted_ordering_is_infeasible(self):
        env = env_of((1, "i", -1, "n", -1))  # i < n
        assert self.refine("i > n", env=env) is INFEASIBLE
        assert self.refine("i >= n", env=env) is INFEASIBLE
        assert self.refine("i < n", branch_true=False, env=env) is INFEASIBLE

    def test_self_comparison_constant_false(self):
        assert self.refine("i > i") is INFEASIBLE
        assert self.refine("i < i + 1", branch_true=False) is INFEASIBLE

    def test_inequality_kills_entailed_equality_edge(self):
        env = env_of((1, "i", -1, "n", 0), (-1, "i", 1, "n", 0))  # i == n
        assert self.refine("i != n", env=env) is INFEASIBLE
        # == on the false branch is the same denial.
        assert self.refine("i == n", branch_true=False, env=env) is INFEASIBLE

    def test_inequality_without_entailment_adds_nothing(self):
        env = env_of((1, "i", -1, "n", 0))  # i <= n only
        refined = self.refine("i != n", env=env)
        assert refined is not INFEASIBLE
        assert refined == env

    def test_const_bound_names_fold_through_consts(self):
        # With n known constant the comparison is unary, not relational.
        refined = self.refine("i < n", consts={"n": 10})
        assert refined == {}

    def test_side_effecting_condition_contributes_nothing(self):
        env = env_of((1, "j", -1, "n", 0))
        refined = octagon_condition_facts(expr("i++ < n"), True, env, {}, SAFE)
        assert refined == env

    def test_non_unit_coefficient_is_ignored(self):
        # The module's named imprecision: 2*i < n is not octagon material.
        refined = self.refine("2 * i < n")
        assert refined == {}


# ---------------------------------------------------------------------------
# Widening termination (the PR 6 loop shapes, relational column)
# ---------------------------------------------------------------------------

class TestWideningTermination:
    """The same shapes the interval domain terminates on must also reach a
    fixpoint with octagons in the product — no FixpointDivergence."""

    def test_derived_bound_loop_keeps_relation(self):
        facts = solve("""
        int f(int n) {
            int limit = n - 1;
            int i;
            int s = 0;
            for (i = 0; i <= limit; i = i + 1) { s = s + i; }
            return s;
        }
        """)
        envs = [thaw_octagon_env(frozen)
                for frozen in facts.octagon_envs.values()]
        # The loop body sees i <= limit (the guard) and, through closure
        # with limit == n - 1, the derived bound i <= n - 1.
        assert any(entails_octagon(env, 1, "i", -1, "limit", 0)
                   and entails_octagon(env, 1, "i", -1, "n", -1)
                   for env in envs)

    def test_nested_loops(self):
        solve("""
        int f(int n, int m) {
            int i;
            int j;
            int s = 0;
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < m; j = j + 1) {
                    s = s + i * j;
                }
            }
            return s;
        }
        """)

    def test_while_one_with_break(self):
        solve("""
        int f(int n) {
            int i = 0;
            while (1) {
                if (i >= n) { break; }
                i = i + 1;
            }
            return i;
        }
        """)

    def test_decrementing_loop(self):
        facts = solve("""
        int f(int n) {
            int i = n;
            int s = 0;
            while (i > 0) {
                s = s + i;
                i = i - 1;
            }
            return s;
        }
        """)
        envs = [thaw_octagon_env(frozen)
                for frozen in facts.octagon_envs.values()]
        # i starts at n and only decreases: i <= n holds in the body.
        assert any(entails_octagon(env, 1, "i", -1, "n", 0) for env in envs)

    def test_mutual_recursion_scc(self):
        program = parse("""
        int is_odd(int n);
        int is_even(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) { }
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        """)
        for name in ("is_even", "is_odd"):
            assert solve_function_facts(program.functions[name]) is not None

    def test_no_divergence_on_two_counter_chase(self):
        # i chases j; the difference i - j shifts every iteration, so an
        # unwidened relational chain would descend forever.
        try:
            solve("""
            int f(int n) {
                int i = 0;
                int j = 1;
                while (i < n) {
                    i = i + 1;
                    j = j + 2;
                }
                return i + j;
            }
            """)
        except FixpointDivergence as exc:  # pragma: no cover - regression
            pytest.fail(f"octagon widening failed to terminate: {exc}")


# ---------------------------------------------------------------------------
# Product attribution
# ---------------------------------------------------------------------------

class TestProductAttribution:
    def test_fingerprint_names_three_domains(self):
        assert domain_fingerprint(DEFAULT_DOMAINS) == \
            "consts+intervals+octagons"

    def test_relational_prune_attributed_to_octagons(self):
        # a < b then b < a needs the relation between two unbounded locals:
        # neither the constant nor the interval lattice can refute it.
        facts = solve("""
        int f(int a, int b) {
            int s = 0;
            if (a < b) {
                if (b < a) { s = 1; }
            }
            return s;
        }
        """)
        assert facts.octagon_pruned
        assert facts.octagon_pruned <= facts.infeasible
        assert not facts.interval_pruned

    def test_entailed_inequality_edge_pruned(self):
        facts = solve("""
        int f(int a, int b) {
            int s = 0;
            if (a == b) {
                if (a != b) { s = 1; }
            }
            return s;
        }
        """)
        assert facts.octagon_pruned
        assert facts.octagon_pruned <= facts.infeasible

    def test_consts_prune_not_attributed_to_octagons(self):
        facts = solve("""
        int f(void) {
            int k = 0;
            if (k) { return 1; }
            return 0;
        }
        """)
        assert facts.infeasible
        assert not facts.octagon_pruned
        assert not facts.interval_pruned

    def test_edge_facts_record_branch_constraints(self):
        facts = solve("""
        int f(int a, int b) {
            if (a < b) { return 1; }
            return 0;
        }
        """)
        rows = [row for frozen in facts.octagon_edge_facts.values()
                for row in frozen]
        assert any(entails_octagon(thaw_octagon_env((row,)),
                                   1, "a", -1, "b", -1)
                   for row in rows)


# ---------------------------------------------------------------------------
# Deputy relational discharge
# ---------------------------------------------------------------------------

class TestDeputyRelationalDischarge:
    def check(self, source: str):
        return check_program(parse(source), DeputyOptions())

    def index_obligations(self, results, name):
        return [ob for ob in results[name].obligations
                if ob.kind is ObligationKind.INDEX]

    def statuses(self, results, name):
        return [ob.status for ob in self.index_obligations(results, name)]

    def test_derived_bound_loop_discharges_relationally(self):
        results = self.check("""
        int sum(int * count(n) arr, int n) {
            int limit = n - 1;
            int i;
            int s = 0;
            for (i = 0; i <= limit; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        obligations = self.index_obligations(results, "sum")
        assert [ob.status for ob in obligations] == [ObligationStatus.STATIC]
        assert obligations[0].detail == "relational-bounded index"

    def test_derived_bound_off_by_one_twin_keeps_check(self):
        # limit = n (not n - 1): i <= limit allows i == n, one past the end.
        results = self.check("""
        int sum(int * count(n) arr, int n) {
            int limit = n;
            int i;
            int s = 0;
            for (i = 0; i <= limit; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        assert self.statuses(results, "sum") == [ObligationStatus.RUNTIME]

    def test_direct_le_twin_pair(self):
        # The same off-by-one pair without the derived bound: a non-strict
        # guard is dischargeable exactly when its folded offset clears the
        # count, so i <= n - 1 proves and i <= n provably keeps its check.
        results = self.check("""
        int tight(int * count(n) arr, int n) {
            int i;
            int s = 0;
            for (i = 0; i <= n - 1; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        int wide(int * count(n) arr, int n) {
            int i;
            int s = 0;
            for (i = 0; i <= n; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        assert self.statuses(results, "tight") == [ObligationStatus.STATIC]
        assert self.statuses(results, "wide") == [ObligationStatus.RUNTIME]

    def test_alias_bound_discharges(self):
        results = self.check("""
        int sum(int * count(n) arr, int n) {
            int m = n;
            int i;
            int s = 0;
            for (i = 0; i < m; i = i + 1) { s = s + arr[i]; }
            return s;
        }
        """)
        obligations = self.index_obligations(results, "sum")
        assert [ob.status for ob in obligations] == [ObligationStatus.STATIC]
        assert obligations[0].detail == "relational-bounded index"

    def test_nonstrict_guard_discharges(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i >= 0 && i <= n - 1) { return arr[i]; }
            return -1;
        }
        """)
        assert self.statuses(results, "get") == [ObligationStatus.STATIC]

    def test_nonstrict_guard_off_by_one_keeps_check(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i >= 0 && i <= n) { return arr[i]; }
            return -1;
        }
        """)
        assert self.statuses(results, "get") == [ObligationStatus.RUNTIME]

    def test_write_to_bound_source_kills_relation(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            if (i >= 0 && i < n) {
                n = n - 1;
                return arr[i];
            }
            return -1;
        }
        """)
        assert self.statuses(results, "get") == [ObligationStatus.RUNTIME]

    def test_write_to_index_kills_relation(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i) {
            int limit = n - 1;
            if (i >= 0 && i <= limit) {
                i = i + 1;
                return arr[i];
            }
            return -1;
        }
        """)
        assert self.statuses(results, "get") == [ObligationStatus.RUNTIME]

    def test_equality_guard_transfers_bound(self):
        results = self.check("""
        int get(int * count(n) arr, int n, int i, int j) {
            if (i >= 0 && i == j && j < n) { return arr[i]; }
            return -1;
        }
        """)
        assert self.statuses(results, "get") == [ObligationStatus.STATIC]

    def test_corpus_seeds(self):
        results = check_program(parse_corpus(), DeputyOptions())
        for name in ("sum_prefix_derived", "sum_alias_bound"):
            obligations = self.index_obligations(results, name)
            assert [ob.status for ob in obligations] == \
                [ObligationStatus.STATIC], name
            assert obligations[0].detail == "relational-bounded index"
        assert self.statuses(results, "sum_suffix_overrun") == \
            [ObligationStatus.RUNTIME]


# ---------------------------------------------------------------------------
# Standalone vs artifact-fed equivalence
# ---------------------------------------------------------------------------

class TestArtifactEquivalence:
    def test_check_program_matches_artifact_fed_run(self):
        # The engine hands the checker pre-solved product facts; a
        # standalone run solves them on demand.  Both paths must agree
        # obligation-for-obligation, or batch and service results diverge.
        def signature(results):
            return {name: [(ob.kind, ob.status, ob.detail, ob.location)
                           for ob in result.obligations]
                    for name, result in results.items()}

        standalone = check_program(parse_corpus(), DeputyOptions())
        program = parse_corpus()
        fed = check_program(program, DeputyOptions(),
                            facts=solve_program_facts(program))
        assert signature(standalone) == signature(fed)
