"""Tests for the persistent warm-start store and its service wiring.

The store's contract: values round-trip by (space, key); the LRU sweep
bounds the file; a version bump purges stale artifacts wholesale; and a
*fresh* analyzer pointed at a filled store re-solves nothing on an
unchanged corpus while producing byte-identical findings — the restarted
``serve`` scenario.  The coalescing tests cover the reconcile gate that
keeps concurrent ``POST /analyze`` bursts from stacking redundant passes.
"""

from __future__ import annotations

import threading

import pytest

from repro.kernel.corpus import KERNEL_FILES
from repro.service import AnalysisService, IncrementalAnalyzer
from repro.service.store import PersistentStore


class TestPersistentStore:
    def test_round_trip_and_miss(self, tmp_path):
        store = PersistentStore(tmp_path)
        assert store.get("consts", "k1") is None
        store.put("consts", "k1", {"facts": [1, 2, 3]})
        assert store.get("consts", "k1") == {"facts": [1, 2, 3]}
        # Spaces partition the keyspace.
        assert store.get("scc", "k1") is None
        assert store.contains("consts", "k1")
        assert not store.contains("scc", "k1")
        store.close()

    def test_none_values_distinguishable_when_wrapped(self, tmp_path):
        # Callers that must store None (facts_of returns None for
        # branchless functions) wrap values in 1-tuples; the store itself
        # faithfully returns whatever object was put.
        store = PersistentStore(tmp_path)
        store.put("consts", "k", (None,))
        assert store.get("consts", "k") == (None,)
        store.close()

    def test_reopen_persists(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.put("shard", "k", [1, 2])
        store.close()
        reopened = PersistentStore(tmp_path)
        assert reopened.get("shard", "k") == [1, 2]
        reopened.close()

    def test_lru_eviction_bounds_size(self, tmp_path):
        store = PersistentStore(tmp_path, max_mb=0.001)  # ~1 KB
        blob = "x" * 300
        for index in range(20):
            store.put("scc", f"k{index}", blob)
        assert store.total_bytes() <= 1024
        assert store.evictions > 0
        # Newest entries survive; the oldest were swept.
        assert store.get("scc", "k19") == blob
        assert store.get("scc", "k0") is None
        store.close()

    def test_touch_refreshes_lru_clock(self, tmp_path):
        import time

        store = PersistentStore(tmp_path, max_mb=0.001)
        blob = "x" * 300
        store.put("scc", "keep", blob)
        time.sleep(0.02)
        store.put("scc", "other", blob)
        time.sleep(0.02)
        store.touch("scc", ["keep"])
        time.sleep(0.02)
        # Push the file just past the cap: the sweep takes the oldest
        # atime, which the touch moved from "keep" onto "other".
        store.put("scc", "fill0", blob)
        store.put("scc", "fill1", blob)
        assert store.evictions > 0
        assert store.get("scc", "keep") == blob
        assert store.get("scc", "other") is None
        store.close()

    def test_version_mismatch_purges(self, tmp_path, monkeypatch):
        store = PersistentStore(tmp_path)
        store.put("consts", "k", "v")
        store.close()
        monkeypatch.setattr("repro.service.store.__version__", "0.0.0-test")
        purged = PersistentStore(tmp_path)
        assert purged.get("consts", "k") is None
        assert purged.entry_count() == 0
        purged.close()

    def test_corrupt_row_treated_as_miss(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.put("consts", "k", "v")
        with store._lock:
            store._conn.execute(
                "UPDATE entries SET value = ? WHERE key = 'k'",
                (b"not a pickle",))
            store._conn.commit()
        assert store.get("consts", "k") is None
        assert not store.contains("consts", "k")
        store.close()


class TestWarmRestart:
    def test_fresh_analyzer_resolves_nothing_from_filled_store(self, tmp_path):
        store = PersistentStore(tmp_path)
        cold = IncrementalAnalyzer(files=KERNEL_FILES, store=store)
        cold_report = cold.analyze()
        cold_stats = cold.last_stats
        assert cold_stats.consts_solved > 0
        assert cold_stats.store_writes > 0

        # A brand-new analyzer (fresh process, same store) over the same
        # sources: everything comes off disk.
        warm = IncrementalAnalyzer(files=KERNEL_FILES, store=store)
        warm_report = warm.analyze()
        stats = warm.last_stats
        assert stats.consts_solved == 0
        assert stats.dirty_sccs == 0
        assert stats.shards_rerun == 0
        assert stats.store_hits > 0

        # Findings and analyses byte-identical; only the cache-hit flags
        # and wall-clock fields may differ (same as a second pass of the
        # same analyzer).
        cold_payload = cold_report.to_dict()
        warm_payload = warm_report.to_dict()
        for payload in (cold_payload, warm_payload):
            payload.pop("elapsed_seconds", None)
            payload.pop("cache_stats", None)
            payload.pop("perf", None)
            payload.get("summary_stats", {}).pop("cache_hit", None)
            payload.get("summary_stats", {}).pop("consts_cache_hit", None)
        assert cold_payload == warm_payload
        store.close()

    def test_edit_after_restart_still_incremental(self, tmp_path):
        from dataclasses import replace

        store = PersistentStore(tmp_path)
        cold = IncrementalAnalyzer(files=KERNEL_FILES, store=store)
        cold.analyze()
        store_writes = cold.last_stats.store_writes

        warm = IncrementalAnalyzer(files=KERNEL_FILES, store=store)
        warm.analyze()
        touched = replace(
            KERNEL_FILES[-1],
            source=KERNEL_FILES[-1].source
            + "\nint __store_touch(void) { return 0; }\n")
        warm.analyze(KERNEL_FILES[:-1] + (touched,))
        stats = warm.last_stats
        assert stats.parsed_units == 1
        assert not stats.full_reparse
        # The touched TU's new artifacts spill to the store too.
        assert store.writes > store_writes
        store.close()


class TestReconcileCoalescing:
    def test_burst_coalesces_onto_queued_pass(self):
        service = AnalysisService()
        service.request_reconcile()  # prime caches
        results = []

        def call():
            snapshot, coalesced = service.request_reconcile()
            results.append((snapshot.revision, coalesced))

        threads = [threading.Thread(target=call) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results) == 6
        ran = [entry for entry in results if not entry[1]]
        coalesced = [entry for entry in results if entry[1]]
        # At least one request ran a real pass; with six concurrent
        # callers at most two passes ran (in-flight + queued) beyond the
        # prime, so at least four coalesced.
        assert 1 <= len(ran) <= 2
        assert len(coalesced) >= 4
        assert service.passes == 1 + len(ran)
        # Coalesced callers got the queued pass's published snapshot.
        latest = max(revision for revision, _ in results)
        assert all(revision == latest for revision, _ in coalesced)

    def test_single_request_is_not_coalesced(self):
        service = AnalysisService()
        snapshot, coalesced = service.request_reconcile()
        assert snapshot is not None
        assert coalesced is False


@pytest.mark.parametrize("max_mb", [None, 5.0])
def test_service_builds_store_from_dir(tmp_path, max_mb):
    service = AnalysisService(store_dir=tmp_path, store_max_mb=max_mb)
    assert service.store is not None
    assert service.analyzer.store is service.store
    service.request_reconcile()
    assert service.store.writes > 0
    payload = service.stats_payload()
    assert payload["store"]["entries"] > 0
    service.store.close()
