"""Tests for CCount: instrumenter, runtime, delayed frees, reports."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ccount import (
    CCountConfig,
    build_conversion_report,
    build_typeinfo,
    delayed_free_scope,
    instrument_program,
)
from repro.ccount import runtime as ccount_runtime
from repro.machine import CheckFailure, Interpreter, link_units
from repro.minic import parse_source


def build(source):
    return link_units([parse_source(source)])


def ccountize(source, **config):
    program = build(source)
    result = instrument_program(program, CCountConfig(**config))
    interp = Interpreter(program)
    runtime = ccount_runtime.install(interp, result.typeinfo, CCountConfig(**config))
    return program, result, interp, runtime


LIST_SOURCE = """
struct node { int value; struct node *next; };
static struct node *head;

void push(int value) {
    struct node *n = (struct node *)__raw_alloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    head = n;
}

int pop_and_free(void) {
    struct node *n = head;
    int value;
    if (n == 0) { return -1; }
    value = n->value;
    head = n->next;
    n->next = 0;
    __raw_free((void *)n);
    return value;
}

int bad_free_head(void) {
    /* BUG: frees the head node while the global list still points at it. */
    __raw_free((void *)head);
    return 0;
}
"""


class TestTypeInfo:
    def test_pointer_offsets_extracted(self, kernel_program):
        registry = build_typeinfo(kernel_program)
        layout = registry.layout_for_tag("struct task_struct")
        assert layout is not None
        assert layout.has_pointers
        assert len(layout.pointer_offsets) >= 4

    def test_described_types_counted(self, kernel_program):
        registry = build_typeinfo(kernel_program)
        assert registry.described_types() >= 10


class TestInstrumenter:
    def test_heap_pointer_writes_instrumented(self):
        program = build(LIST_SOURCE)
        result = instrument_program(program, CCountConfig())
        assert result.pointer_writes_instrumented >= 3

    def test_local_pointer_writes_skipped_by_default(self):
        source = "int f(int *p, int *q) { p = q; return 0; }"
        program = build(source)
        result = instrument_program(program, CCountConfig(track_locals=False))
        assert result.pointer_writes_instrumented == 0
        assert result.pointer_writes_skipped_local == 1

    def test_local_pointer_writes_tracked_when_enabled(self):
        source = "int f(int *p, int *q) { p = q; return 0; }"
        program = build(source)
        result = instrument_program(program, CCountConfig(track_locals=True))
        assert result.pointer_writes_instrumented == 1

    def test_integer_writes_untouched(self):
        source = "static int g; void f(int x) { g = x; }"
        program = build(source)
        result = instrument_program(program, CCountConfig())
        assert result.pointer_writes_instrumented == 0


class TestRuntime:
    def test_balanced_list_frees_are_good(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        for value in range(5):
            interp.run("push", value)
        for _ in range(5):
            interp.run("pop_and_free")
        assert runtime.stats.total_frees == 5
        assert runtime.stats.bad_free_count == 0
        assert runtime.stats.good_fraction == 1.0

    def test_dangling_reference_detected_as_bad_free(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        interp.run("push", 1)
        interp.run("bad_free_head")
        assert runtime.stats.bad_free_count == 1
        bad = runtime.stats.bad_frees[0]
        assert bad.outstanding >= 1
        assert bad.leaked  # soundness: the object is leaked, not released

    def test_leaked_object_remains_accessible(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        interp.run("push", 7)
        interp.run("bad_free_head")
        # The head pointer still works because the bad free was converted
        # into a leak rather than an actual release.
        assert interp.run("pop_and_free").value == 7

    def test_panic_mode_raises_on_bad_free(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE,
                                                     panic_on_bad_free=True,
                                                     leak_on_bad_free=False)
        interp.run("push", 1)
        with pytest.raises(CheckFailure):
            interp.run("bad_free_head")

    def test_allocation_zeroes_memory(self):
        source = """
        int probe(void) {
            int *p = (int *)__raw_alloc(64);
            return p[0] + p[15];
        }
        """
        program, result, interp, runtime = ccountize(source)
        assert interp.run("probe").value == 0

    def test_refcounts_track_chunks(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        interp.run("push", 1)
        head_addr = interp.memory.load(interp.global_address("head"), 4)
        assert runtime.object_refcount(head_addr, 8) == 1

    def test_delayed_free_scope_defers_checks(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        interp.run("push", 1)
        head_addr = interp.memory.load(interp.global_address("head"), 4)
        with delayed_free_scope(runtime):
            interp.run("bad_free_head")
            # Inside the scope nothing has been checked yet.
            assert runtime.stats.total_frees == 0
            # Clearing the global reference (through the RC runtime, as the
            # instrumented kernel would) before the scope ends makes the
            # deferred free succeed.
            interp.memory.store(interp.global_address("head"), 4, 0)
            runtime.rc_dec(head_addr)
        assert runtime.stats.total_frees == 1
        assert runtime.stats.bad_free_count == 0

    def test_eight_bit_counters_wrap(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        interp.run("push", 1)
        head_addr = interp.memory.load(interp.global_address("head"), 4)
        for _ in range(255):
            runtime.rc_inc(head_addr)
        # 1 (list head) + 255 increments wraps the 8-bit counter to zero.
        assert runtime.object_refcount(head_addr, 4) == 0

    def test_overflow_check_option(self):
        program, result, interp, runtime = ccountize(LIST_SOURCE, overflow_check=True)
        interp.run("push", 1)
        head_addr = interp.memory.load(interp.global_address("head"), 4)
        with pytest.raises(CheckFailure):
            for _ in range(256):
                runtime.rc_inc(head_addr)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_push_pop_invariant(self, count):
        program, result, interp, runtime = ccountize(LIST_SOURCE)
        for value in range(count):
            interp.run("push", value)
        for _ in range(count):
            interp.run("pop_and_free")
        assert runtime.stats.total_frees == count
        assert runtime.stats.good_frees == count
        assert runtime.stats.rc_increments == runtime.stats.rc_decrements


class TestConversionReportOnKernel:
    def test_kernel_conversion_census(self, kernel_program):
        import copy
        program = copy.deepcopy(kernel_program)
        result = instrument_program(program, CCountConfig())
        report = build_conversion_report(program, result)
        assert report.types_described >= 10
        assert report.rtti_sites >= 5
        assert report.delayed_scopes >= 2
        assert report.pointer_writes_instrumented > 30
