"""Unit and property-based tests for types, preprocessor, pretty printer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations import erased_source
from repro.minic import parse_source, render_unit
from repro.minic.ctypes import (
    CArray,
    CField,
    CInt,
    CStruct,
    CHAR,
    INT,
    UINT,
    common_arithmetic_type,
    pointer_to,
    types_compatible,
)
from repro.minic.errors import TypeError_
from repro.minic.source import Preprocessor, preprocess, strip_comments


class TestTypeLayout:
    def test_integer_sizes_match_i386(self):
        assert CInt("char").size == 1
        assert CInt("short").size == 2
        assert CInt("int").size == 4
        assert CInt("long").size == 4
        assert CInt("longlong").size == 8

    def test_pointer_size(self):
        assert pointer_to(INT).size == 4

    def test_struct_layout_with_padding(self):
        struct = CStruct(tag="mixed")
        struct.define([CField("c", CHAR), CField("i", INT), CField("s", CInt("short"))])
        assert struct.field_named("c").offset == 0
        assert struct.field_named("i").offset == 4
        assert struct.field_named("s").offset == 8
        assert struct.size == 12

    def test_union_layout(self):
        union = CStruct(tag="u", is_union=True)
        union.define([CField("i", INT), CField("c", CHAR)])
        assert union.field_named("i").offset == 0
        assert union.field_named("c").offset == 0
        assert union.size == 4

    def test_array_size(self):
        assert CArray(element=INT, length=10).size == 40

    def test_incomplete_struct_rejects_sizeof(self):
        struct = CStruct(tag="forward")
        with pytest.raises(TypeError_):
            _ = struct.size

    def test_pointer_field_offsets(self):
        struct = CStruct(tag="holder")
        inner = CStruct(tag="inner")
        inner.define([CField("p", pointer_to(INT)), CField("x", INT)])
        struct.define([CField("a", INT), CField("q", pointer_to(CHAR)),
                       CField("nested", inner)])
        offsets = list(struct.pointer_field_offsets())
        assert offsets == [4, 8]

    def test_integer_wrapping(self):
        assert CInt("char", signed=True).wrap(130) == -126
        assert CInt("char", signed=False).wrap(258) == 2
        assert CInt("int", signed=False).wrap(-1) == 0xFFFFFFFF

    def test_common_arithmetic_type(self):
        assert common_arithmetic_type(CHAR, INT).size == 4
        assert common_arithmetic_type(UINT, INT).signed is False
        assert common_arithmetic_type(CInt("longlong"), INT).size == 8


class TestTypeCompatibility:
    def test_same_int_sizes_compatible(self):
        assert types_compatible(INT, UINT)

    def test_void_pointer_compatible_with_any_pointer(self):
        from repro.minic.ctypes import void_pointer
        assert types_compatible(void_pointer(), pointer_to(INT))

    def test_struct_pointers_incompatible_across_tags(self):
        a = CStruct(tag="a")
        b = CStruct(tag="b")
        assert not types_compatible(pointer_to(a), pointer_to(b))

    def test_signature_distinguishes_parameter_counts(self):
        from repro.minic.ctypes import CFunc, CParam
        f1 = CFunc(return_type=INT, params=[CParam("a", INT)])
        f2 = CFunc(return_type=INT, params=[CParam("a", INT), CParam("b", INT)])
        assert f1.signature() != f2.signature()


class TestPreprocessor:
    def test_object_macro_expansion(self):
        out = preprocess("#define MAX 16\nint x = MAX;")
        assert "16" in out and "MAX" not in out.replace("MAX", "16")

    def test_macro_expansion_is_word_bounded(self):
        out = preprocess("#define N 4\nint xN = 2; int y = N;")
        assert "xN" in out

    def test_ifdef_inactive_branch_removed(self):
        out = preprocess("#ifdef CONFIG_SMP\nint smp_only;\n#endif\nint always;")
        assert "smp_only" not in out
        assert "always" in out

    def test_ifdef_active_branch_kept(self):
        pre = Preprocessor({"CONFIG_SMP": "1"})
        out = pre.process("#ifdef CONFIG_SMP\nint smp_only;\n#endif")
        assert "smp_only" in out

    def test_ifndef_and_else(self):
        out = preprocess("#ifndef CONFIG_X\nint a;\n#else\nint b;\n#endif")
        assert "int a" in out and "int b" not in out

    def test_include_lines_dropped(self):
        out = preprocess('#include <linux/kernel.h>\nint x;')
        assert "include" not in out

    def test_line_numbers_preserved(self):
        out = preprocess("#define A 1\n\nint x = A;")
        assert out.splitlines()[2] == "int x = 1;"

    def test_comments_stripped(self):
        out = strip_comments("int a; // trailing\n/* block\n comment */ int b;")
        assert "trailing" not in out and "block" not in out
        assert out.count("\n") == 2

    def test_comment_inside_string_preserved(self):
        out = strip_comments('char *s = "not // a comment";')
        assert "not // a comment" in out


ROUND_TRIP_SOURCES = [
    "int x = 3;",
    "static char buffer[32];",
    "struct pair { int a; int b; };",
    "int add(int a, int b) { return a + b; }",
    "void loop(int n) { int i; for (i = 0; i < n; i++) { n += i; } }",
    "int fp(int (*op)(int, int), int x) { return op(x, x); }",
    "int annotated(int * count(n) buf, int n) { return buf[0]; }",
    "void blocker(void) blocking;",
    "int sw(int x) { switch (x) { case 1: return 1; default: break; } return 0; }",
    "int g(void) { goto out; out: return 2; }",
]


class TestPrettyPrinterRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_round_trip_preserves_declaration_count(self, source):
        unit = parse_source(source)
        printed = render_unit(unit)
        reparsed = parse_source(printed)
        assert len(reparsed.decls) == len(unit.decls)

    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_round_trip_is_stable(self, source):
        once = render_unit(parse_source(source))
        twice = render_unit(parse_source(once))
        assert once == twice

    def test_erasure_removes_annotations(self):
        source = ("int sum(int * count(n) buf, int n) blocking { "
                  "trusted { return buf[0]; } }")
        unit = parse_source(source)
        erased = erased_source(unit)
        assert "count(" not in erased
        assert "blocking" not in erased
        assert "trusted" not in erased
        # The erased program is still valid MiniC.
        parse_source(erased)


@st.composite
def constant_expressions(draw, depth=0):
    """Random constant integer expressions as (text, value) pairs."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=1000))
        return str(value), value
    left_text, left = draw(constant_expressions(depth=depth + 1))
    right_text, right = draw(constant_expressions(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    value = {"+": left + right, "-": left - right, "*": left * right}[op]
    return f"({left_text} {op} {right_text})", value


class TestExpressionProperties:
    @settings(max_examples=40, deadline=None)
    @given(constant_expressions())
    def test_constant_folding_matches_python(self, pair):
        from repro.minic.parser import evaluate_constant, parse_expression
        text, expected = pair
        assert evaluate_constant(parse_expression(text)) == expected

    @settings(max_examples=40, deadline=None)
    @given(constant_expressions())
    def test_pretty_printing_preserves_value(self, pair):
        from repro.minic.parser import evaluate_constant, parse_expression
        from repro.minic.pretty import render_expression
        text, expected = pair
        printed = render_expression(parse_expression(text))
        assert evaluate_constant(parse_expression(printed)) == expected
