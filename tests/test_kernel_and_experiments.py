"""Integration tests: the mini-kernel, workloads, hbench and the harness."""

import pytest

from repro.hbench import PAPER_TABLE1, TABLE1_ORDER, all_benchmarks, get_benchmark
from repro.kernel import (
    BuildConfig,
    boot_kernel,
    build_kernel,
    corpus_line_count,
    kernel_line_count,
    workload_boot_to_login,
    workload_fork,
    workload_light_use,
    workload_module_load,
)


class TestCorpusAndBuild:
    def test_corpus_is_substantial(self):
        assert kernel_line_count() > 1500
        assert corpus_line_count() > kernel_line_count()

    def test_baseline_build_links_cleanly(self, kernel_program):
        names = kernel_program.defined_function_names()
        for expected in ("kmalloc", "kfree", "do_fork", "schedule", "vfs_read",
                         "udp_sendto", "do_IRQ", "load_module", "pipe_write"):
            assert expected in names

    def test_deputy_build_has_no_outstanding_errors(self):
        build = build_kernel(BuildConfig(deputy=True))
        assert build.deputy_result is not None
        assert build.deputy_result.errors == []
        assert build.deputy_result.checks_inserted > 100
        assert build.deputy_result.checks_static > 50

    def test_ccount_build_instruments_pointer_writes(self):
        build = build_kernel(BuildConfig(ccount=True))
        assert build.ccount_result.pointer_writes_instrumented > 30

    def test_user_sources_are_not_instrumented(self):
        build = build_kernel(BuildConfig(deputy=True))
        user_unit = next(u for u in build.program.units if u.filename.startswith("user/"))
        from repro.minic import ast_nodes as ast
        from repro.minic.visitor import walk
        for node in walk(user_unit):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Ident):
                assert not node.func.name.startswith("__deputy_check")


class TestBootAndWorkloads:
    def test_baseline_kernel_boots(self, baseline_kernel):
        assert baseline_kernel.booted
        assert baseline_kernel.boot_cycles >= 0
        assert int(baseline_kernel.call("current_pid").value) == 1

    def test_boot_to_login_workload(self):
        kernel = boot_kernel(BuildConfig(), boot=False)
        result = workload_boot_to_login(kernel)
        assert result.details["forks"] >= 6
        assert result.details["loopback_packets"] >= 8
        assert result.cycles > 0

    def test_fork_workload_creates_tasks(self, baseline_kernel):
        before = int(baseline_kernel.call("fork_count").value)
        workload_fork(baseline_kernel, 3)
        after = int(baseline_kernel.call("fork_count").value)
        assert after - before == 3

    def test_module_load_workload_is_balanced(self, baseline_kernel):
        result = workload_module_load(baseline_kernel, 3)
        assert result.details["modules_left"] == 0

    def test_interrupt_delivery(self, baseline_kernel):
        before = int(baseline_kernel.call("get_jiffies").value)
        baseline_kernel.trigger_interrupt(0)
        baseline_kernel.trigger_interrupt(0)
        after = int(baseline_kernel.call("get_jiffies").value)
        assert after - before == 2

    def test_file_system_round_trip(self, baseline_kernel):
        kernel = baseline_kernel
        name = kernel.interp.intern_string("itest.txt")
        data = kernel.interp.intern_string("hello vfs")
        kernel.call("vfs_create", name, 1)
        fd = int(kernel.call("vfs_open", name).value)
        assert fd >= 0
        assert int(kernel.call("vfs_write", fd, data, 9).value) == 9
        kernel.call("vfs_seek", fd, 0)
        out = kernel.interp.intern_string("x" * 16)
        assert int(kernel.call("vfs_read", fd, out, 9).value) == 9
        assert kernel.interp.memory.load_cstring(out)[:9] == "hello vfs"
        kernel.call("vfs_close", fd)

    def test_udp_round_trip(self, baseline_kernel):
        kernel = baseline_kernel
        a = int(kernel.call("sock_create", 17).value)
        b = int(kernel.call("sock_create", 17).value)
        kernel.call("sock_bind", a, 9101)
        kernel.call("sock_bind", b, 9102)
        msg = kernel.interp.intern_string("ping")
        assert int(kernel.call("udp_sendto", a, msg, 4, 9102).value) == 4
        out = kernel.interp.intern_string("....")
        assert int(kernel.call("udp_recv", b, out, 4).value) == 4
        kernel.call("sock_close", a)
        kernel.call("sock_close", b)

    def test_deputized_kernel_behaves_identically(self, deputy_kernel):
        kernel = deputy_kernel
        name = kernel.interp.intern_string("dep.txt")
        data = kernel.interp.intern_string("deputized!")
        kernel.call("vfs_create", name, 1)
        fd = int(kernel.call("vfs_open", name).value)
        assert int(kernel.call("vfs_write", fd, data, 10).value) == 10
        kernel.call("vfs_close", fd)
        assert kernel.deputy_stats.failures == 0
        assert kernel.deputy_stats.checks_executed > 0

    def test_ccount_kernel_light_use_keeps_frees_good(self):
        kernel = boot_kernel(BuildConfig(ccount=True), boot=False)
        workload_boot_to_login(kernel)
        workload_light_use(kernel)
        stats = kernel.ccount.stats
        assert stats.total_frees > 10
        assert stats.good_fraction >= 0.985


class TestHbenchSuite:
    def test_all_21_table1_benchmarks_registered(self):
        names = {bench.name for bench in all_benchmarks()}
        assert names == set(TABLE1_ORDER)
        assert len(names) == 21
        assert set(PAPER_TABLE1) == names

    def test_benchmarks_are_deterministic(self, baseline_kernel):
        bench = get_benchmark("lat_syscall")
        first = bench.measure(baseline_kernel)
        second = bench.measure(baseline_kernel)
        assert first == second
        assert first > 0

    @pytest.mark.parametrize("name", ["bw_pipe", "lat_pipe", "lat_udp", "lat_fs",
                                      "bw_file_rd", "lat_proc", "lat_syscall"])
    def test_benchmark_runs_on_both_kernels(self, name, baseline_kernel, deputy_kernel):
        bench = get_benchmark(name)
        base = bench.measure(baseline_kernel)
        dep = bench.measure(deputy_kernel)
        assert base > 0 and dep > 0
        # The deputized kernel never gets faster and never explodes.
        assert dep >= base * 0.95
        assert dep <= base * 3.0


class TestHarnessShapes:
    def test_deputy_conversion_shape(self):
        from repro.harness import run_deputy_stats
        result = run_deputy_stats()
        assert result.shape_holds()
        assert result.report.check_errors == 0

    def test_ccount_stats_shape(self):
        from repro.harness import run_ccount_stats
        result = run_ccount_stats()
        assert result.shape_holds()
        assert result.boot_report.total_frees > 0

    def test_blockstop_shape(self):
        from repro.harness import (
            CONST_TWIN_BUG_CALLERS,
            INTERPROC_BUG_CALLERS,
            run_blockstop_eval,
        )
        result = run_blockstop_eval()
        assert result.real_bugs_found == 2
        assert result.interproc_bugs_found == len(INTERPROC_BUG_CALLERS)
        assert result.const_twin_bugs_found == len(CONST_TWIN_BUG_CALLERS)
        assert result.pruned_fp_reports == 0
        assert len(result.false_positive_callees) >= 10
        assert result.after.violations_reported == (
            2 + len(INTERPROC_BUG_CALLERS) + len(CONST_TWIN_BUG_CALLERS))
        assert result.shape_holds()

    def test_ccount_overhead_shape(self):
        from repro.harness import run_ccount_overheads
        result = run_ccount_overheads(fork_iterations=8, module_iterations=5)
        assert result.shape_holds()
        assert result.row("fork", "smp").overhead > result.row("fork", "up").overhead

    def test_table1_subset_shape(self):
        # The full Table 1 lives in benchmarks/; here a three-benchmark subset
        # checks the wiring end to end.
        from repro.hbench import run_suite
        from repro.kernel.build import BuildConfig
        suite = run_suite(benchmarks=[get_benchmark("lat_syscall"),
                                      get_benchmark("bw_pipe"),
                                      get_benchmark("lat_pipe")])
        assert len(suite.rows) == 3
        for row in suite.rows:
            assert row.baseline_cycles > 0
            assert 0.5 <= row.relative <= 2.5
