"""Unit tests for the MiniC lexer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic.errors import LexError
from repro.minic.lexer import tokenize
from repro.minic.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        token = tokenize("kmalloc")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "kmalloc"

    def test_keyword(self):
        token = tokenize("while")[0]
        assert token.kind is TokenKind.KEYWORD

    def test_annotation_keywords_are_identifiers(self):
        # Deputy annotations are contextual keywords, not reserved words.
        for word in ("count", "nullterm", "trusted", "blocking"):
            assert tokenize(word)[0].kind is TokenKind.IDENT

    def test_decimal_literal(self):
        assert tokenize("42")[0].value == 42

    def test_hex_literal(self):
        assert tokenize("0xff")[0].value == 255

    def test_octal_literal(self):
        assert tokenize("0755")[0].value == 0o755

    def test_integer_suffixes_ignored(self):
        assert tokenize("42UL")[0].value == 42
        assert tokenize("7ull")[0].value == 7

    def test_char_literal(self):
        assert tokenize("'a'")[0].value == ord("a")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")
        assert tokenize(r"'\0'")[0].value == 0

    def test_string_literal(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.value == "hello"

    def test_string_escapes(self):
        assert tokenize(r'"a\tb\n"')[0].value == "a\tb\n"

    def test_hex_escape_in_string(self):
        assert tokenize(r'"\x41"')[0].value == "A"


class TestPunctuators:
    def test_multichar_punctuators_are_greedy(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("p->next") == ["p", "->", "next"]
        assert texts("i++") == ["i", "++"]

    def test_ellipsis(self):
        assert "..." in texts("int printf(char *fmt, ...)")

    def test_arithmetic_expression(self):
        assert texts("a+b*c") == ["a", "+", "b", "*", "c"]

    def test_comparison_operators(self):
        assert texts("a<=b>=c==d!=e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]


class TestLocations:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.location.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].location.column == 1
        assert tokens[1].location.column == 4


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestPropertyBased:
    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_decimal_integers_round_trip(self, value):
        assert tokenize(str(value))[0].value == value

    @given(st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,20}", fullmatch=True))
    def test_identifiers_lex_to_single_token(self, name):
        tokens = tokenize(name)
        assert len(tokens) == 2
        assert tokens[0].text == name

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                          blacklist_characters='"\\'),
                   max_size=40))
    def test_string_literals_round_trip(self, body):
        token = tokenize('"' + body + '"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.value == body
