"""Synthetic corpus generator: determinism, resumable ingest, analyzability."""

import json

import pytest

from repro.engine.core import AnalysisEngine
from repro.kernel import build as kernel_build
from repro.kernel.synth import (GENERATOR_SCHEMA, MANIFEST_NAME,
                                MANIFEST_SCHEMA, UNITS_PER_SCALE,
                                generate_corpus, write_corpus)
from repro.service.watcher import load_corpus_dir


class TestGenerate:
    def test_deterministic_per_seed(self):
        first = generate_corpus(scale=1, seed=7)
        second = generate_corpus(scale=1, seed=7)
        assert [(f.filename, f.source) for f in first] == \
               [(f.filename, f.source) for f in second]

    def test_seed_changes_content_not_shape(self):
        base = generate_corpus(scale=1, seed=0)
        other = generate_corpus(scale=1, seed=1)
        assert [f.filename for f in base] == [f.filename for f in other]
        assert any(a.source != b.source for a, b in zip(base, other))

    def test_scale_controls_unit_count(self):
        files = generate_corpus(scale=2)
        # One shared core TU plus UNITS_PER_SCALE units per scale step.
        assert len(files) == 1 + 2 * UNITS_PER_SCALE

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            generate_corpus(scale=0)

    def test_parses_and_links(self):
        program = kernel_build.parse_corpus(generate_corpus(scale=1))
        names = program.all_function_names()
        assert "s000_entry" in names
        assert "s009_entry" in names
        # The cross-TU entry chain makes the condensation one wave per unit.
        assert "spin_lock_irqsave" in names

    def test_engine_runs_and_finds_off_by_one(self):
        engine = AnalysisEngine(files=generate_corpus(scale=1))
        report = engine.run(analyses="all", jobs=1)
        assert report.analyses
        deputy = report.analyses.get("deputy")
        assert deputy is not None
        # The counted loops discharge statically; every unit's `i <= n`
        # off-by-one twin must keep its runtime check.
        assert deputy.metrics["obligations_static"] > 0
        assert deputy.metrics["obligations_runtime"] >= UNITS_PER_SCALE


class TestWriteCorpus:
    def test_roundtrip_through_manifest(self, tmp_path):
        files = generate_corpus(scale=1, seed=3)
        stats = write_corpus(tmp_path, files, scale=1, seed=3)
        assert stats["written"] == len(files)
        assert stats["skipped"] == 0
        loaded = load_corpus_dir(tmp_path)
        assert [(f.filename, f.source) for f in loaded] == \
               [(f.filename, f.source) for f in files]

    def test_manifest_records_provenance(self, tmp_path):
        write_corpus(tmp_path, generate_corpus(scale=1, seed=3),
                     scale=1, seed=3)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["generator"] == {"schema": GENERATOR_SCHEMA,
                                         "scale": 1, "seed": 3}
        assert all(entry["sha256"] for entry in manifest["files"])

    def test_rerun_skips_unchanged_files(self, tmp_path):
        files = generate_corpus(scale=1)
        write_corpus(tmp_path, files, scale=1)
        stats = write_corpus(tmp_path, files, scale=1)
        assert stats["written"] == 0
        assert stats["skipped"] == len(files)

    def test_resume_rewrites_only_modified_files(self, tmp_path):
        files = generate_corpus(scale=1)
        write_corpus(tmp_path, files, scale=1)
        victim = tmp_path / files[2].filename
        victim.write_text("/* truncated by an interrupt */\n")
        stats = write_corpus(tmp_path, files, scale=1)
        assert stats["written"] == 1
        assert stats["skipped"] == len(files) - 1
        assert victim.read_text() == files[2].source
