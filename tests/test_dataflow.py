"""Tests for the flow-sensitive dataflow core and the checkers ported onto it.

The differential corpora here are the issue's acceptance cases: branch-local
lock acquisitions and interrupt disables must not leak into sibling branches
or past the merge point, early returns must not hide the fall-through state,
and errcheck's assigned-then-compared tracking must be order-aware.
"""

import pytest

from repro.analyses import analyse_error_checks, analyse_locks
from repro.blockstop import run_blockstop
from repro.dataflow import (
    COND,
    FixpointDivergence,
    build_cfg,
    reachable_blocks,
    solve_forward,
)
from repro.machine import link_units
from repro.minic import parse_source


def build(source):
    return link_units([parse_source(source)])


def cfg_of(source, name):
    return build_cfg(build(source).functions[name])


LOCK_PROTOS = """
void spin_lock(int *lock);
void spin_unlock(int *lock);
unsigned long spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock, unsigned long flags);
void local_irq_save(void);
void local_irq_restore(void);
void schedule(void) blocking;
static int lock_a;
static int lock_b;
"""


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

class TestCfgConstruction:
    def test_straight_line_single_block_chain(self):
        cfg = cfg_of("int f(int x) { x = x + 1; return x; }", "f")
        reachable = cfg.reachable()
        assert cfg.entry in reachable
        assert cfg.exit in reachable

    def test_if_else_is_a_diamond(self):
        cfg = cfg_of("int f(int x) { if (x) { x = 1; } else { x = 2; } return x; }",
                     "f")
        cond_blocks = [b for b in cfg.blocks
                       if any(e.kind == COND for e in b.elements)]
        assert len(cond_blocks) == 1
        labels = sorted(edge.label for edge in cond_blocks[0].succs)
        assert labels == ["false", "true"]

    def test_while_has_back_edge(self):
        cfg = cfg_of("int f(int x) { while (x) { x = x - 1; } return x; }", "f")
        header = next(b.index for b in cfg.blocks
                      if any(e.kind == COND for e in b.elements))
        back_edges = [b.index for b in cfg.blocks
                      if any(e.target == header for e in b.succs)]
        assert len(back_edges) == 2   # loop entry plus the body's back edge

    def test_early_return_code_after_is_reachable_via_other_path(self):
        cfg = cfg_of("""
        int f(int x) {
            if (x) { return 1; }
            x = 2;
            return x;
        }""", "f")
        assert cfg.exit in cfg.reachable()
        # Both returns edge into the dedicated exit block.
        assert len(cfg.blocks[cfg.exit].preds) == 2

    def test_dead_code_after_return_is_unreachable(self):
        cfg = cfg_of("int f(void) { return 1; int x; x = 2; return x; }", "f")
        reachable = cfg.reachable()
        dead = [b.index for b in cfg.blocks
                if b.elements and b.index not in reachable]
        assert dead, "statements after return should live in unreachable blocks"

    def test_for_loop_and_break_continue(self):
        cfg = cfg_of("""
        int f(int n) {
            int total;
            int i;
            total = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 7) { break; }
                total = total + i;
            }
            return total;
        }""", "f")
        assert cfg.exit in cfg.reachable()

    def test_switch_dispatch_edges(self):
        cfg = cfg_of("""
        int f(int x) {
            switch (x) {
            case 1: return 10;
            case 2: break;
            default: return 30;
            }
            return 0;
        }""", "f")
        dispatch = next(b for b in cfg.blocks
                        if any(e.kind == COND for e in b.elements))
        labels = sorted(edge.label for edge in dispatch.succs)
        assert labels == ["case", "case", "default"]

    def test_goto_and_label_resolve(self):
        cfg = cfg_of("""
        int f(int x) {
            if (x) { goto out; }
            x = 2;
        out:
            return x;
        }""", "f")
        assert cfg.exit in cfg.reachable()


# ---------------------------------------------------------------------------
# Fixpoint solver
# ---------------------------------------------------------------------------

class TestSolver:
    def test_join_applied_at_merge(self):
        cfg = cfg_of("int f(int x) { if (x) { x = 1; } else { x = 2; } return x; }",
                     "f")

        def transfer(block, state):
            return state | {block.index}

        in_states = solve_forward(cfg, transfer, lambda a, b: a | b,
                                  entry_state=frozenset())
        # The exit sees blocks from both arms: paths merged, not overwritten.
        cond_block = next(b for b in cfg.blocks
                          if any(e.kind == COND for e in b.elements))
        arm_indices = {edge.target for edge in cond_block.succs}
        assert arm_indices <= in_states[cfg.exit]

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of("int f(int x) { while (x) { x = x - 1; } return x; }", "f")

        def transfer(block, state):
            return min(state + len(block.elements), 10)

        in_states = solve_forward(cfg, transfer, max, entry_state=0)
        assert in_states[cfg.exit] is not None

    def test_unreachable_blocks_have_no_state(self):
        cfg = cfg_of("int f(void) { return 1; int x; x = 2; return x; }", "f")
        in_states = solve_forward(cfg, lambda block, s: s, max, entry_state=0)
        reachable = cfg.reachable()
        for block in cfg.blocks:
            if block.index not in reachable:
                assert in_states[block.index] is None
        assert all(index in reachable
                   for block, _ in reachable_blocks(cfg, in_states)
                   for index in [block.index])

    def test_divergence_is_detected(self):
        cfg = cfg_of("int f(int x) { while (x) { x = x - 1; } return x; }", "f")
        with pytest.raises(FixpointDivergence):
            # A strictly increasing "lattice" never converges.
            solve_forward(cfg, lambda block, s: s + 1, max, entry_state=0)


# ---------------------------------------------------------------------------
# Lockcheck: flow-sensitive held-lock sets
# ---------------------------------------------------------------------------

class TestLockcheckFlow:
    def test_branch_local_lock_does_not_leak_to_sibling_or_merge(self):
        # The acceptance case: lock_a taken only in the then-branch.  The
        # acquisitions of lock_b in the else-branch and after the merge must
        # both report an empty held set — the old walk() scan fabricated a
        # lock_a -> lock_b ordering here.
        report = analyse_locks(build(LOCK_PROTOS + """
        void branchy(int x) {
            if (x) {
                spin_lock(&lock_a);
                spin_unlock(&lock_a);
            } else {
                spin_lock(&lock_b);
                spin_unlock(&lock_b);
            }
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
        }
        """))
        for acquisition in report.acquisitions:
            assert acquisition.held_before == ()
        assert report.order_pairs == set()
        assert report.deadlock_free

    def test_no_false_deadlock_pair_from_exclusive_branches(self):
        # a->b in one branch, b->a in the other -- but each branch releases
        # before the other acquires; only a truly nested pair may count.
        report = analyse_locks(build(LOCK_PROTOS + """
        void one_way(int x) {
            if (x) {
                spin_lock(&lock_a);
                spin_unlock(&lock_a);
            }
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
        }
        void other_way(int x) {
            if (x) {
                spin_lock(&lock_b);
                spin_unlock(&lock_b);
            }
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
        }
        """))
        assert report.order_violations == []

    def test_real_nested_ordering_still_detected(self):
        report = analyse_locks(build(LOCK_PROTOS + """
        void ab(void) {
            spin_lock(&lock_a);
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
            spin_unlock(&lock_a);
        }
        void ba(void) {
            spin_lock(&lock_b);
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
            spin_unlock(&lock_b);
        }
        """))
        assert len(report.order_violations) == 1

    def test_early_return_keeps_lock_held_on_fallthrough(self):
        # The release happens only on the early-return path; the fall-through
        # acquisition of lock_b happens with lock_a held.
        report = analyse_locks(build(LOCK_PROTOS + """
        void holds_across(int x) {
            spin_lock(&lock_a);
            if (x) {
                spin_unlock(&lock_a);
                return;
            }
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
            spin_unlock(&lock_a);
        }
        """))
        nested = [a for a in report.acquisitions if a.lock == "&(lock_b)"]
        assert len(nested) == 1
        assert nested[0].held_before == ("&(lock_a)",)

    def test_loop_join_is_must_hold(self):
        # lock_a is released inside the loop body, so at the header it is
        # not *definitely* held; the acquisition inside the body reports an
        # empty held set rather than inventing one.
        report = analyse_locks(build(LOCK_PROTOS + """
        void loopy(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) {
                spin_lock(&lock_a);
                spin_unlock(&lock_a);
            }
        }
        """))
        assert all(a.held_before == () for a in report.acquisitions)

    def test_double_acquire_diagnostic(self):
        report = analyse_locks(build(LOCK_PROTOS + """
        void self_deadlock(void) {
            spin_lock(&lock_a);
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
            spin_unlock(&lock_a);
        }
        """))
        assert len(report.double_acquires) == 1
        assert report.double_acquires[0].lock == "&(lock_a)"
        assert not report.deadlock_free

    def test_reacquisition_counts_balance_releases(self):
        # After one release of the doubly-acquired lock_a, it is still held:
        # the lock_b acquisition must see it.  The old list bookkeeping
        # dropped the first occurrence and corrupted held_before.
        report = analyse_locks(build(LOCK_PROTOS + """
        void nested(void) {
            spin_lock(&lock_a);
            spin_lock(&lock_a);
            spin_unlock(&lock_a);
            spin_lock(&lock_b);
            spin_unlock(&lock_b);
            spin_unlock(&lock_a);
        }
        """))
        nested = [a for a in report.acquisitions if a.lock == "&(lock_b)"]
        assert nested[0].held_before == ("&(lock_a)",)


# ---------------------------------------------------------------------------
# BlockStop: flow-sensitive atomic regions
# ---------------------------------------------------------------------------

class TestBlockstopFlow:
    def test_branch_local_disable_does_not_leak(self):
        # The acceptance case: local_irq_save in the then-branch only.  The
        # sibling branch and the code after the merge re-enable path... no:
        # the then-branch restores before leaving, so *nothing* outside the
        # then-branch is atomic.  The old scan poisoned the else-branch and
        # everything after the if.
        result = run_blockstop(build(LOCK_PROTOS + """
        void helper(void) { schedule(); }
        void branchy(int x) {
            if (x) {
                local_irq_save();
                x = x + 1;
                local_irq_restore();
            } else {
                helper();
            }
            helper();
        }
        """))
        assert result.atomic_call_sites == []
        assert result.reported == []

    def test_any_path_atomic_is_still_conservative(self):
        # One arm disables without re-enabling: after the merge the join is
        # max(1, 0) = 1 -- the call may run atomically, so it is reported.
        result = run_blockstop(build(LOCK_PROTOS + """
        void maybe_atomic(int x) {
            if (x) {
                local_irq_save();
            }
            schedule();
            local_irq_restore();
        }
        """))
        callees = {s.callee for s in result.atomic_call_sites}
        assert "schedule" in callees
        assert {v.caller for v in result.reported} == {"maybe_atomic"}

    def test_early_reenable_does_not_hide_fallthrough_region(self):
        # The kernel-corpus schedule() shape: release on the early-return
        # path only.  The old scan treated the fall-through as non-atomic.
        result = run_blockstop(build(LOCK_PROTOS + """
        void early(int x) {
            unsigned long flags;
            flags = spin_lock_irqsave(&lock_a);
            if (x) {
                spin_unlock_irqrestore(&lock_a, flags);
                return;
            }
            schedule();
            spin_unlock_irqrestore(&lock_a, flags);
        }
        """))
        assert {v.caller for v in result.reported} == {"early"}

    def test_loop_body_disable_reaches_fixpoint_and_reports(self):
        result = run_blockstop(build(LOCK_PROTOS + """
        void loopy(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) {
                local_irq_save();
                schedule();
                local_irq_restore();
            }
        }
        """))
        assert {v.caller for v in result.reported} == {"loopy"}

    def test_unmatched_disable_in_loop_converges(self):
        # Pathological: a disable per iteration with no enable.  The depth
        # cap keeps the lattice finite; the call after the loop is atomic.
        result = run_blockstop(build(LOCK_PROTOS + """
        void runaway(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) {
                local_irq_save();
            }
            schedule();
        }
        """))
        callers = {v.caller for v in result.reported}
        assert "runaway" in callers


# ---------------------------------------------------------------------------
# Errcheck: order-aware assigned-then-compared
# ---------------------------------------------------------------------------

ERR_PROTOS = """
int risky(int x) { if (x < 0) { return -22; } return x; }
void consume(int value);
"""


class TestErrcheckFlow:
    def test_comparison_before_call_does_not_count(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int backwards(int x) {
            int rc;
            rc = 0;
            if (rc < 0) { return rc; }
            rc = risky(x);
            return 7;
        }
        """))
        assert [u.caller for u in report.unchecked] == ["backwards"]
        assert "never compared" in report.unchecked[0].reason

    def test_comparison_after_call_counts(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int forwards(int x) {
            int rc;
            rc = risky(x);
            if (rc < 0) { return rc; }
            return 7;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 1

    def test_check_on_one_branch_counts(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int branchy(int x) {
            int rc;
            rc = risky(x);
            if (x) {
                if (rc < 0) { return rc; }
            }
            return 7;
        }
        """))
        assert report.unchecked == []

    def test_reassignment_kills_pending_obligation(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int clobbered(int x) {
            int rc;
            rc = risky(x);
            rc = 0;
            if (rc < 0) { return rc; }
            return 7;
        }
        """))
        assert [u.caller for u in report.unchecked] == ["clobbered"]

    def test_unary_not_idiom_counts(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int negated(int x) {
            int rc;
            rc = risky(x);
            if (!rc) { return 0; }
            return rc;
        }
        """))
        assert report.unchecked == []

    def test_unary_minus_idiom_counts(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int minused(int x) {
            int rc;
            rc = risky(x);
            if (-rc) { return 1; }
            return 0;
        }
        """))
        assert report.unchecked == []

    def test_nested_call_argument_is_classified_not_silently_checked(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        void passes_on(int x) {
            consume(risky(x));
        }
        """))
        assert report.unchecked == []
        assert report.passed_to_callee == 1
        assert report.checked_calls == 1

    def test_unknown_usage_is_reported_unchecked(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int arithmetic(int x) {
            int total;
            total = 1 + risky(x);
            return 0;
        }
        """))
        assert len(report.unchecked) == 1
        assert "not a check" in report.unchecked[0].reason

    def test_direct_condition_still_checked(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int direct(int x) {
            if (risky(x) < 0) { return -1; }
            while (!risky(x)) { x = x + 1; }
            return 0;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 2

    def test_assignment_through_ternary_tracks_obligation(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int ternary(int x) {
            int rc;
            rc = x ? risky(x) : 0 - 1;
            if (rc < 0) { return rc; }
            return 0;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 1

    def test_assign_inside_comparison_idiom(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int inline_assign(int x) {
            int rc;
            if ((rc = risky(x)) < 0) { return rc; }
            return 0;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 1

    def test_unary_minus_on_direct_call_is_a_condition(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int direct_minus(int x) {
            if (-risky(x)) { return 1; }
            return 0;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 1

    def test_logical_op_condition_credits_stored_code(self):
        # The kernel idiom `if (ret && ret != -EAGAIN)`: truth-testing an
        # operand of && / || (or a ternary condition) is a check.
        report = analyse_error_checks(build(ERR_PROTOS + """
        int logical(int x) {
            int rc;
            int other;
            rc = risky(x);
            if (rc && x) { return rc; }
            other = risky(x);
            x = other ? 1 : 2;
            return x;
        }
        """))
        assert report.unchecked == []
        assert report.checked_calls == 2

    def test_loop_carried_obligation_checked_after_loop(self):
        report = analyse_error_checks(build(ERR_PROTOS + """
        int loop_carried(int n) {
            int rc;
            int i;
            rc = 0;
            for (i = 0; i < n; i = i + 1) {
                rc = risky(i);
            }
            if (rc < 0) { return rc; }
            return 0;
        }
        """))
        assert report.unchecked == []
