"""Tests for the future analyses (§3.1) and the annotation repository (§3.2)."""

from repro.analyses import (
    analyse_error_checks,
    analyse_locks,
    analyse_stack,
    frame_size,
)
from repro.blockstop import build_direct_callgraph
from repro.machine import link_units
from repro.minic import parse_source
from repro.repository import AnnotationDatabase, Fact, export_blocking_facts


def build(source):
    return link_units([parse_source(source)])


LOCK_SOURCE = """
void spin_lock(int *lock);
void spin_unlock(int *lock);
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);

static int lock_a;
static int lock_b;

void path_one(void) {
    spin_lock(&lock_a);
    spin_lock(&lock_b);
    spin_unlock(&lock_b);
    spin_unlock(&lock_a);
}

void path_two(void) {
    spin_lock(&lock_b);
    spin_lock(&lock_a);
    spin_unlock(&lock_a);
    spin_unlock(&lock_b);
}

void irq_handler_path(void) {
    spin_lock_irqsave(&lock_a);
    spin_unlock_irqrestore(&lock_a);
}

void process_path_wrong(void) {
    spin_lock(&lock_a);
    spin_unlock(&lock_a);
}
"""


class TestLockCheck:
    def test_inconsistent_order_detected(self):
        report = analyse_locks(build(LOCK_SOURCE))
        assert len(report.order_violations) == 1

    def test_consistent_order_clean(self):
        source = LOCK_SOURCE.replace(
            "    spin_lock(&lock_b);\n    spin_lock(&lock_a);",
            "    spin_lock(&lock_a);\n    spin_lock(&lock_b);")
        report = analyse_locks(build(source))
        assert report.deadlock_free

    def test_irq_discipline_violation(self):
        report = analyse_locks(build(LOCK_SOURCE),
                               irq_functions={"irq_handler_path"})
        offenders = {v.function for v in report.irq_violations}
        assert "process_path_wrong" in offenders
        assert "irq_handler_path" not in offenders

    def test_kernel_corpus_has_consistent_lock_order(self, kernel_program):
        report = analyse_locks(kernel_program)
        assert report.deadlock_free


class TestStackCheck:
    def test_frame_size_counts_locals(self):
        program = build("int f(int a) { int buffer[64]; int x; return a + x; }")
        func = program.functions["f"]
        assert frame_size(program, func) >= 64 * 4

    def test_stacksize_annotation_overrides(self):
        program = build("int f(void) stacksize(512) { return 0; }")
        assert frame_size(program, program.functions["f"]) == 512

    def test_call_chain_depth_accumulates(self):
        source = """
        int leaf(void) { int pad[8]; return pad[0]; }
        int mid(void) { int pad[8]; return leaf(); }
        int root(void) { int pad[8]; return mid(); }
        """
        program = build(source)
        graph, _ = build_direct_callgraph(program)
        report = analyse_stack(program, graph)
        assert report.max_depth["root"] > report.max_depth["mid"] > report.max_depth["leaf"]

    def test_recursion_needs_runtime_check(self):
        source = "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }"
        program = build(source)
        graph, _ = build_direct_callgraph(program)
        report = analyse_stack(program, graph)
        assert "fact" in report.runtime_checks_needed

    def test_kernel_corpus_fits_in_stack(self, kernel_program):
        graph, indirect = build_direct_callgraph(kernel_program)
        report = analyse_stack(kernel_program, graph)
        assert report.worst_case > 0
        assert report.fits


class TestErrCheck:
    ERR_SOURCE = """
    int risky(int x) { if (x < 0) { return -22; } return x; }

    int careful(int x) {
        int rc = risky(x);
        if (rc < 0) { return rc; }
        return rc + 1;
    }

    int careless(int x) {
        risky(x);
        return 0;
    }

    int stores_but_never_checks(int x) {
        int rc = risky(x);
        return 7;
    }
    """

    def test_error_returning_functions_found(self):
        program = build(self.ERR_SOURCE)
        report = analyse_error_checks(program)
        assert "risky" in report.error_returning

    def test_checked_call_accepted(self):
        report = analyse_error_checks(build(self.ERR_SOURCE))
        unchecked_callers = {u.caller for u in report.unchecked}
        assert "careful" not in unchecked_callers

    def test_discarded_result_reported(self):
        report = analyse_error_checks(build(self.ERR_SOURCE))
        reasons = {u.caller: u.reason for u in report.unchecked}
        assert "careless" in reasons
        assert "discarded" in reasons["careless"]

    def test_stored_but_unchecked_reported(self):
        report = analyse_error_checks(build(self.ERR_SOURCE))
        assert any(u.caller == "stores_but_never_checks" for u in report.unchecked)


class TestRepository:
    def test_add_and_query(self):
        db = AnnotationDatabase()
        db.add(Fact("function", "kmalloc", "blocking", "blocking_if_wait", tool="manual"))
        db.add(Fact("function", "sum(buf)", "annotation", "count(n)", tool="deputy"))
        assert db.blocking_functions() == {"kmalloc"}
        assert db.annotations_for("sum(buf)") == ["count(n)"]

    def test_merge_prefers_higher_confidence(self):
        db_a = AnnotationDatabase()
        db_a.add(Fact("function", "f", "blocking", "noblock", confidence=0.5))
        db_b = AnnotationDatabase()
        db_b.add(Fact("function", "f", "blocking", "blocking", confidence=0.9))
        imported = db_a.merge(db_b)
        assert imported == 1
        assert db_a.blocking_functions() == {"f"}

    def test_merge_is_idempotent(self):
        db_a = AnnotationDatabase()
        db_a.add(Fact("function", "f", "blocking", "blocking"))
        db_b = AnnotationDatabase()
        db_b.add(Fact("function", "f", "blocking", "blocking"))
        db_a.merge(db_b)
        assert len(db_a) == 1

    def test_save_and_load_round_trip(self, tmp_path):
        db = AnnotationDatabase()
        db.add(Fact("function", "schedule", "blocking", "blocking", tool="blockstop"))
        db.add(Fact("type", "struct sk_buff", "bounds", "data: count(len)"))
        path = tmp_path / "facts.json"
        db.save(path)
        loaded = AnnotationDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.blocking_functions() == {"schedule"}

    def test_export_blocking_facts_from_kernel(self, kernel_program):
        from repro.blockstop import derive_blocking
        graph, _ = build_direct_callgraph(kernel_program)
        info = derive_blocking(kernel_program, graph)
        facts = export_blocking_facts(info, graph)
        db = AnnotationDatabase()
        db.add_all(facts)
        assert "schedule" in db.blocking_functions()
        assert len(db) > 10
