"""Shared fixtures: parsed corpus and booted kernels are expensive, so they
are built once per session and reused by read-only tests."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.kernel.boot import boot_kernel  # noqa: E402
from repro.kernel.build import BuildConfig, parse_corpus  # noqa: E402
from repro.kernel.corpus import KERNEL_FILES  # noqa: E402


@pytest.fixture(scope="session")
def kernel_program():
    """The parsed (uninstrumented) kernel corpus."""
    return parse_corpus(KERNEL_FILES)


@pytest.fixture(scope="session")
def baseline_kernel():
    """A booted baseline kernel shared by read-mostly tests."""
    return boot_kernel(BuildConfig(), reset_cycles_after_boot=True)


@pytest.fixture(scope="session")
def deputy_kernel():
    """A booted Deputy-instrumented kernel shared by read-mostly tests."""
    return boot_kernel(BuildConfig(deputy=True), reset_cycles_after_boot=True)


@pytest.fixture(scope="session")
def ccount_kernel():
    """A booted CCount-instrumented kernel shared by read-mostly tests."""
    return boot_kernel(BuildConfig(ccount=True), reset_cycles_after_boot=True)
