"""Tests for BlockStop: call graph, points-to, blocking propagation, checker."""

import pytest

from repro.blockstop import (
    Precision,
    RuntimeCheckSet,
    build_direct_callgraph,
    build_report,
    collect_seeds,
    derive_blocking,
    emit_annotations,
    insert_assertions,
    run_blockstop,
)
from repro.blockstop import runtime_checks as bs_runtime
from repro.machine import CheckFailure, Interpreter, link_units
from repro.minic import parse_source


def build(source):
    return link_units([parse_source(source)])


SIMPLE_SOURCE = """
void schedule(void) blocking;
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);

void helper(void) { schedule(); }
void outer(void) { helper(); }

static int lock;

void bad_atomic(void) {
    spin_lock_irqsave(&lock);
    helper();
    spin_unlock_irqrestore(&lock);
}

void good_atomic(void) {
    spin_lock_irqsave(&lock);
    lock = lock + 1;
    spin_unlock_irqrestore(&lock);
}
"""

GFP_SOURCE = """
void *kmalloc(unsigned int size, int flags) blocking_if_wait;
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);
static int lock;

void atomic_alloc_ok(void) {
    spin_lock_irqsave(&lock);
    kmalloc(64, 1);
    spin_unlock_irqrestore(&lock);
}

void atomic_alloc_bad(void) {
    spin_lock_irqsave(&lock);
    kmalloc(64, 17);
    spin_unlock_irqrestore(&lock);
}
"""

FNPTR_SOURCE = """
void schedule(void) blocking;
struct sleepy_ops { int (*hook)(int); };
struct quick_ops { int (*hook)(int); };

int sleepy_hook(int x) { schedule(); return x; }
int quick_hook(int x) { return x + 1; }

static struct sleepy_ops sleepy = { .hook = sleepy_hook };
static struct quick_ops quick = { .hook = quick_hook };

void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);
static int lock;

int call_quick_atomically(void) {
    int r;
    spin_lock_irqsave(&lock);
    r = quick.hook(1);
    spin_unlock_irqrestore(&lock);
    return r;
}
"""


class TestCallGraph:
    def test_direct_edges(self):
        program = build(SIMPLE_SOURCE)
        graph, indirect = build_direct_callgraph(program)
        assert "helper" in graph.callees("outer")
        assert "schedule" in graph.callees("helper")
        assert indirect == []

    def test_reverse_reachability(self):
        program = build(SIMPLE_SOURCE)
        graph, _ = build_direct_callgraph(program)
        callers = graph.reverse_reachable({"schedule"})
        assert {"schedule", "helper", "outer", "bad_atomic"} <= callers
        assert "good_atomic" not in callers

    def test_shortest_path(self):
        program = build(SIMPLE_SOURCE)
        graph, _ = build_direct_callgraph(program)
        path = graph.shortest_path("outer", {"schedule"})
        assert path == ["outer", "helper", "schedule"]

    def test_indirect_calls_collected(self):
        program = build(FNPTR_SOURCE)
        graph, indirect = build_direct_callgraph(program)
        assert len(indirect) == 1
        assert indirect[0].caller == "call_quick_atomically"


class TestBlockingPropagation:
    def test_annotation_seeds(self):
        program = build(SIMPLE_SOURCE)
        info = collect_seeds(program)
        assert "schedule" in info.seeds

    def test_summary_derived_closure(self):
        program = build(SIMPLE_SOURCE)
        graph, _ = build_direct_callgraph(program)
        info = derive_blocking(program, graph)
        assert {"schedule", "helper", "outer"} <= info.may_block
        assert "good_atomic" not in info.may_block

    def test_gfp_atomic_call_does_not_block(self):
        program = build(GFP_SOURCE)
        graph, _ = build_direct_callgraph(program)
        info = derive_blocking(program, graph)
        assert "atomic_alloc_bad" in info.may_block
        assert "atomic_alloc_ok" not in info.may_block

    def test_emitted_annotations(self):
        program = build(SIMPLE_SOURCE)
        graph, _ = build_direct_callgraph(program)
        info = derive_blocking(program, graph)
        annotations = emit_annotations(info, graph)
        assert annotations.get("outer") == "blocking"
        assert "good_atomic" not in annotations


class TestChecker:
    def test_direct_violation_detected(self):
        result = run_blockstop(build(SIMPLE_SOURCE))
        callers = {v.caller for v in result.reported}
        assert "bad_atomic" in callers
        assert "good_atomic" not in callers

    def test_gfp_wait_violation_only(self):
        result = run_blockstop(build(GFP_SOURCE))
        callers = {v.caller for v in result.reported}
        assert callers == {"atomic_alloc_bad"}

    def test_type_based_pointsto_produces_false_positive(self):
        result = run_blockstop(build(FNPTR_SOURCE), Precision.TYPE_BASED)
        callees = {v.callee for v in result.reported}
        assert "sleepy_hook" in callees  # false positive: never actually called

    def test_field_sensitive_pointsto_removes_false_positive(self):
        result = run_blockstop(build(FNPTR_SOURCE), Precision.FIELD_SENSITIVE)
        callees = {v.callee for v in result.reported}
        assert "sleepy_hook" not in callees

    def test_runtime_check_silences_report(self):
        checks = RuntimeCheckSet({"sleepy_hook"})
        result = run_blockstop(build(FNPTR_SOURCE), Precision.TYPE_BASED,
                               runtime_checks=checks)
        assert not result.reported
        assert result.silenced

    def test_report_summary(self):
        result = run_blockstop(build(SIMPLE_SOURCE))
        report = build_report(result)
        assert report.functions_analyzed >= 4
        assert report.violations_reported >= 1
        assert "bad_atomic" in str(report)


class TestRuntimeAssertion:
    def test_assertion_inserted_and_panics_in_atomic_context(self):
        source = """
        int sensitive(int x) { return x + 1; }
        int call_it(void) { __hw_cli(); return sensitive(1); }
        """
        program = build(source)
        inserted = insert_assertions(program, RuntimeCheckSet({"sensitive"}))
        assert inserted == 1
        interp = Interpreter(program)
        bs_runtime.install(interp)
        with pytest.raises(CheckFailure) as excinfo:
            interp.run("call_it")
        assert excinfo.value.tool == "blockstop"

    def test_assertion_passes_in_process_context(self):
        source = "int sensitive(int x) { return x * 2; }"
        program = build(source)
        insert_assertions(program, RuntimeCheckSet({"sensitive"}))
        interp = Interpreter(program)
        stats = bs_runtime.install(interp)
        assert interp.run("sensitive", 21).value == 42
        assert stats.assertions_executed == 1
        assert stats.assertion_failures == 0


class TestOnKernelCorpus:
    def test_kernel_seeded_bugs_found(self, kernel_program):
        result = run_blockstop(kernel_program)
        callers = {v.caller for v in result.reported}
        assert "buggy_stats_update" in callers
        assert "disk_timeout_interrupt" in callers

    def test_kernel_irq_handlers_discovered(self, kernel_program):
        result = run_blockstop(kernel_program)
        assert "timer_interrupt" in result.irq_handlers
        assert "disk_timeout_interrupt" in result.irq_handlers

    def test_kernel_blocking_set_contains_syscalls(self, kernel_program):
        result = run_blockstop(kernel_program)
        assert "schedule" in result.blocking.may_block
        assert "do_fork" in result.blocking.may_block
        assert "pipe_write" in result.blocking.may_block
