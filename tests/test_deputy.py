"""Tests for Deputy: type system, instrumenter, optimizer, runtime."""

import pytest

from repro.deputy import (
    DeputyOptions,
    ObligationStatus,
    PointerKind,
    build_report,
    check_program,
    instrument_program,
    pointer_facts,
)
from repro.deputy import runtime as deputy_runtime
from repro.machine import CheckFailure, Interpreter, link_units
from repro.minic import parse_source, render_unit


def build(source):
    return link_units([parse_source(source)])


def deputize(source, **options):
    program = build(source)
    result = instrument_program(program, DeputyOptions(**options))
    interp = Interpreter(program)
    stats = deputy_runtime.install(interp)
    return program, result, interp, stats


SUM_SOURCE = """
int sum(int * count(n) arr, int n) {
    int i;
    int total = 0;
    for (i = 0; i < n; i++) { total += arr[i]; }
    return total;
}
int main(int bound) {
    int values[8];
    int i;
    for (i = 0; i < 8; i++) { values[i] = i; }
    return sum(values, bound);
}
"""


class TestPointerFacts:
    def test_unannotated_pointer_is_safe(self):
        program = build("char *p;")
        facts = pointer_facts(program.globals["p"].type)
        assert facts.kind is PointerKind.SAFE

    def test_count_annotation(self):
        program = build("int f(int * count(n) buf, int n) { return 0; }")
        param = program.function_type("f").params[0]
        facts = pointer_facts(param.type)
        assert facts.kind is PointerKind.COUNT

    def test_nullterm_annotation(self):
        program = build("int f(char * nullterm s) { return 0; }")
        facts = pointer_facts(program.function_type("f").params[0].type)
        assert facts.kind is PointerKind.NULLTERM

    def test_array_behaves_like_counted_pointer(self):
        program = build("int table[16];")
        facts = pointer_facts(program.globals["table"].type)
        assert facts.kind is PointerKind.COUNT
        assert facts.nonnull


class TestStaticChecking:
    def test_constant_index_into_array_is_static(self):
        source = "int t[4]; int f(void) { return t[2]; }"
        program = build(source)
        results = check_program(program)
        assert results["f"].count(ObligationStatus.STATIC) >= 1
        assert results["f"].count(ObligationStatus.RUNTIME) == 0

    def test_variable_index_needs_runtime_check(self):
        source = "int t[4]; int f(int i) { return t[i]; }"
        results = check_program(build(source))
        assert results["f"].count(ObligationStatus.RUNTIME) == 1

    def test_nonnull_pointer_deref_is_static(self):
        source = "struct s { int x; }; int f(struct s *p nonnull) { return p->x; }"
        results = check_program(build(source))
        assert results["f"].count(ObligationStatus.RUNTIME) == 0

    def test_plain_pointer_deref_needs_check(self):
        source = "struct s { int x; }; int f(struct s *p) { return p->x; }"
        results = check_program(build(source))
        assert results["f"].count(ObligationStatus.RUNTIME) == 1

    def test_trusted_function_is_skipped(self):
        source = "int f(int *p) trusted { return p[9]; }"
        results = check_program(build(source))
        assert results["f"].trusted

    def test_trusted_block_obligations_are_trusted(self):
        source = "int f(int *p) { trusted { return p[3]; } }"
        results = check_program(build(source))
        assert results["f"].count(ObligationStatus.RUNTIME) == 0
        assert results["f"].count(ObligationStatus.TRUSTED) >= 1

    def test_incompatible_pointer_cast_is_error(self):
        source = ("struct a { int x; }; struct b { int y; };"
                  "struct b *f(struct a *p) { return (struct b *)p; }")
        results = check_program(build(source))
        assert len(results["f"].errors) == 1

    def test_trusted_cast_suppresses_error(self):
        source = ("struct a { int x; }; struct b { int y; };"
                  "struct b *f(struct a *p) { return (struct b * trusted)p; }")
        results = check_program(build(source))
        assert not results["f"].errors

    def test_void_pointer_cast_allowed(self):
        source = "struct s { int x; }; struct s *f(void *p) { return (struct s *)p; }"
        results = check_program(build(source))
        assert not results["f"].errors

    def test_optimizer_elides_repeated_checks(self):
        source = """
        struct node { int a; int b; struct node *next; };
        int f(struct node *n) { return n->a + n->b + (n->next == 0); }
        """
        with_opt = check_program(build(source), DeputyOptions(optimize=True))
        without = check_program(build(source), DeputyOptions(optimize=False))
        assert with_opt["f"].count(ObligationStatus.ELIDED) >= 1
        assert (without["f"].count(ObligationStatus.RUNTIME)
                > with_opt["f"].count(ObligationStatus.RUNTIME))

    OPTIMIZER_INDEX_SOURCE = """
    int table[16];
    int shared_index;
    void touch(void);
    int with_global_index(void) {
        int a;
        int b;
        a = table[shared_index];
        touch();
        b = table[shared_index];
        return a + b;
    }
    int with_local_index(int i) {
        int a;
        int b;
        a = table[i];
        touch();
        b = table[i];
        return a + b;
    }
    """

    def test_optimizer_drops_global_index_check_across_call(self):
        """A callee can write a global (or address-taken) index variable, so
        the second check of a global-bound index after a call must be
        re-emitted, not treated as redundant."""
        results = check_program(build(self.OPTIMIZER_INDEX_SOURCE),
                                DeputyOptions(optimize=True))
        globals_result = results["with_global_index"]
        assert globals_result.count(ObligationStatus.ELIDED) == 0
        assert globals_result.count(ObligationStatus.RUNTIME) >= 2

    def test_optimizer_keeps_eliding_local_index_check_across_call(self):
        """A non-address-taken parameter is callee-immune: the repeated
        index check across the call is still safely elided."""
        results = check_program(build(self.OPTIMIZER_INDEX_SOURCE),
                                DeputyOptions(optimize=True))
        assert results["with_local_index"].count(ObligationStatus.ELIDED) >= 1

    def test_optimizer_drops_heap_reading_index_check_across_call(self):
        """An index check whose *bound* is read through a pointer
        (``__deputy_check_index(i, b->n)``) depends on the heap, so
        name-immunity of ``i`` and ``b`` must not keep it across a call."""
        source = """
        struct buf { int n; int * count(n) data; };
        void touch(void);
        int f(struct buf *b, int i) {
            int x;
            x = b->data[i];
            touch();
            x = x + b->data[i];
            return x;
        }
        """
        results = check_program(build(source), DeputyOptions(optimize=True))
        assert results["f"].count(ObligationStatus.ELIDED) == 0

    def test_optimizer_escapes_base_of_field_address(self):
        """``&h.idx`` escapes ``h`` just as ``&h`` would: a callee can write
        the field through the registered pointer, so the second index check
        over ``h.idx`` is re-emitted — while a never-escaped local struct
        stays callee-immune and its repeated check is still elided."""
        source = """
        struct holder { int idx; };
        int table[16];
        void reg(int *p);
        void ping(void);
        int escapes(void) {
            struct holder h;
            int a;
            int b;
            h.idx = 3;
            reg(&h.idx);
            a = table[h.idx];
            ping();
            b = table[h.idx];
            return a + b;
        }
        int immune(void) {
            struct holder h;
            int a;
            int b;
            h.idx = 3;
            a = table[h.idx];
            ping();
            b = table[h.idx];
            return a + b;
        }
        """
        results = check_program(build(source), DeputyOptions(optimize=True))
        assert results["escapes"].count(ObligationStatus.ELIDED) == 0
        assert results["immune"].count(ObligationStatus.ELIDED) >= 1


class TestInstrumentedExecution:
    def test_in_bounds_execution_unchanged(self):
        program, result, interp, stats = deputize(SUM_SOURCE)
        value = interp.run("main", 8)
        assert value.value == 28
        assert stats.checks_executed > 0
        assert stats.failures == 0

    def test_out_of_bounds_contract_caught(self):
        # Asking sum() for 9 elements of an 8-element array violates count(n).
        program, result, interp, stats = deputize(SUM_SOURCE)
        with pytest.raises(CheckFailure) as excinfo:
            interp.run("main", 9)
        assert excinfo.value.tool == "deputy"

    def test_baseline_misses_overflow_within_block(self):
        # Overflow inside a struct is silent on the baseline machine but is a
        # type-safety violation Deputy catches via the count annotation.
        source = """
        struct buf { int data[4]; int guard; };
        static struct buf b;
        int poke(int idx, int value) { b.data[idx] = value; return b.guard; }
        """
        baseline = build(source)
        interp = Interpreter(baseline)
        assert interp.run("poke", 4, 99).value == 99  # silently corrupts guard

        program, _, dep_interp, _ = deputize(source)
        with pytest.raises(CheckFailure):
            dep_interp.run("poke", 4, 99)

    def test_null_dereference_caught(self):
        source = "struct s { int x; }; int f(struct s *p) { return p->x; }"
        program, _, interp, stats = deputize(source)
        with pytest.raises(CheckFailure):
            interp.run("f", 0)

    def test_nullterm_access_past_terminator_caught(self):
        source = """
        int past(char * nullterm s, int i) { return s[i]; }
        int main(void) { return past("ab", 5); }
        """
        program, _, interp, _ = deputize(source)
        with pytest.raises(CheckFailure):
            interp.run("main")

    def test_cast_check_passes_value_through(self):
        source = """
        struct obj { int a; int b; };
        int main(void) {
            struct obj *o = (struct obj *)__raw_alloc(sizeof(struct obj));
            o->a = 5;
            return o->a;
        }
        """
        program, _, interp, stats = deputize(source)
        assert interp.run("main").value == 5
        assert stats.by_kind.get("cast", 0) >= 1

    def test_undersized_cast_target_caught(self):
        source = """
        struct big { int a[8]; };
        int main(void) {
            void *raw = __raw_alloc(4);
            struct big *b = (struct big *)raw;
            return b->a[0];
        }
        """
        program, _, interp, _ = deputize(source)
        with pytest.raises(CheckFailure):
            interp.run("main")

    def test_instrumented_program_round_trips_through_parser(self):
        program = build(SUM_SOURCE)
        instrument_program(program)
        printed = render_unit(program.units[0])
        reparsed = parse_source(printed)
        assert reparsed.function_named("sum") is not None

    def test_erasure_of_instrumented_program_still_runs(self):
        # Erasing annotations (not checks) keeps behaviour identical.
        from repro.annotations import erase_unit
        program = build(SUM_SOURCE)
        erase_unit(program.units[0])
        interp = Interpreter(program)
        assert interp.run("main", 8).value == 28


class TestConversionReport:
    def test_report_counts_annotations_and_checks(self):
        program = build(SUM_SOURCE)
        result = instrument_program(program)
        report = build_report(program, result)
        assert report.annotation_count >= 1
        assert report.checks_inserted == result.checks_inserted
        assert 0 < report.total_lines < 40
        assert 0 <= report.annotated_fraction < 1

    def test_trusted_lines_counted(self):
        source = "int f(int *p) trusted { int x; x = p[0]; return x; }"
        program = build(source)
        result = instrument_program(program)
        report = build_report(program, result)
        assert report.trusted_functions == 1
        assert report.trusted_lines >= 1
