#!/usr/bin/env python3
"""Audit the mini-kernel's deallocations with CCount (§2.2 as a script).

Boots the CCount-instrumented kernel, runs the boot-to-login and light-use
workloads, and reports how many frees were verified, how many were bad, and
what the reference-counting runtime cost on the fork and module-loading
workloads (uniprocessor vs. SMP).

Run with:  python examples/ccount_audit.py
"""

from repro.harness import run_ccount_overheads, run_ccount_stats


def main() -> None:
    print("Running boot-to-login and light-use under the CCount runtime...")
    stats = run_ccount_stats()
    print()
    print("-- conversion census (the manual work §2.2 describes) --")
    print(stats.conversion)
    print()
    print("-- boot to login prompt --")
    print(stats.boot_report)
    print()
    print("-- light use (idle + copy a kernel image over the network) --")
    print(stats.light_use_report)
    print()

    print("Measuring fork and module-loading overheads (UP and SMP)...")
    overheads = run_ccount_overheads()
    print(overheads.format_table())
    print()
    print("Paper reference: fork 19% (UP) / 63% (SMP); module 8% / 12%.")


if __name__ == "__main__":
    main()
