#!/usr/bin/env python3
"""Run BlockStop over the mini-kernel and triage its reports (§2.3 as a script).

Shows the full workflow the paper describes: run the whole-program analysis,
look at the reported blocking-in-atomic-context violations, separate the real
bugs from the false positives caused by the conservative function-pointer
analysis, insert the manual run-time assertions that silence the false
positives, and re-run to confirm only the real bugs remain.  Finally the
emitted per-function blocking annotations are exported to the shared
annotation repository (§3.2).

Run with:  python examples/blockstop_audit.py
"""

from repro.blockstop import (
    Precision,
    build_direct_callgraph,
    collect_seeds,
    emit_annotations,
    propagate_blocking,
    propagate_over_graph,
)
from repro.harness import SEEDED_BUG_CALLERS, run_blockstop_eval
from repro.kernel.build import parse_corpus
from repro.kernel.corpus import KERNEL_FILES
from repro.repository import AnnotationDatabase, export_blocking_facts


def main() -> None:
    print("Running BlockStop (type-based points-to, no manual checks)...")
    result = run_blockstop_eval()
    print()
    print(result.before)
    print()

    print("-- triage --")
    print(f"real bugs ({len(result.real_bug_callers)}):")
    for caller in sorted(result.real_bug_callers):
        marker = "(seeded)" if caller in SEEDED_BUG_CALLERS else ""
        print(f"  {caller} {marker}")
    print(f"false positives implicate {len(result.false_positive_callees)} blocking "
          f"functions; inserting a run-time assertion at the top of each:")
    for callee in sorted(result.false_positive_callees):
        print(f"  __blockstop_assert_irqs_enabled() added to {callee}")
    print()

    print("-- after inserting the manual run-time checks --")
    print(f"violations reported : {result.after.violations_reported}")
    print(f"violations silenced : {result.after.violations_silenced}")
    for violation in result.after.reported:
        print("  " + violation.describe())
    print()

    print("-- ablation: field-sensitive points-to --")
    print(f"violations reported without manual checks: "
          f"{result.field_sensitive.violations_reported}")
    print()

    print("-- exporting inferred annotations to the shared repository --")
    program = parse_corpus(KERNEL_FILES)
    graph, _ = build_direct_callgraph(program)
    info = propagate_blocking(program, graph, collect_seeds(program))
    propagate_over_graph(graph, info)
    database = AnnotationDatabase()
    database.add_all(export_blocking_facts(info, graph))
    print(f"{len(database)} blocking facts exported; e.g.:")
    for name in sorted(emit_annotations(info, graph))[:8]:
        print(f"  {name}: {emit_annotations(info, graph)[name]}")
    database.save("blockstop_annotations.json")
    print("saved to blockstop_annotations.json")


if __name__ == "__main__":
    main()
