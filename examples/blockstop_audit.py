#!/usr/bin/env python3
"""Run BlockStop over the mini-kernel and triage its reports (§2.3 as a script).

Shows the full workflow the paper describes: run the whole-program analysis,
look at the reported blocking-in-atomic-context violations, separate the real
bugs from the false positives caused by the conservative function-pointer
analysis, insert the manual run-time assertions that silence the false
positives, and re-run to confirm only the real bugs remain.  Finally the
emitted per-function blocking annotations are exported to the shared
annotation repository (§3.2).

Run with:  python examples/blockstop_audit.py
"""

from repro.blockstop import emit_annotations
from repro.engine import AnalysisEngine
from repro.harness import SEEDED_BUG_CALLERS, run_blockstop_eval
from repro.repository import AnnotationDatabase, export_blocking_facts


def main() -> None:
    print("Running BlockStop (type-based points-to, no manual checks)...")
    engine = AnalysisEngine()
    result = run_blockstop_eval(engine=engine)
    print()
    print(result.before)
    print()

    print("-- triage --")
    print(f"real bugs ({len(result.real_bug_callers)}):")
    for caller in sorted(result.real_bug_callers):
        marker = "(seeded)" if caller in SEEDED_BUG_CALLERS else ""
        print(f"  {caller} {marker}")
    print(f"false positives implicate {len(result.false_positive_callees)} blocking "
          f"functions; inserting a run-time assertion at the top of each:")
    for callee in sorted(result.false_positive_callees):
        print(f"  __blockstop_assert_irqs_enabled() added to {callee}")
    print()

    print("-- after inserting the manual run-time checks --")
    print(f"violations reported : {result.after.violations_reported}")
    print(f"violations silenced : {result.after.violations_silenced}")
    for violation in result.after.reported:
        print("  " + violation.describe())
    print()

    print("-- ablation: field-sensitive points-to --")
    print(f"violations reported without manual checks: "
          f"{result.field_sensitive.violations_reported}")
    print()

    print("-- exporting inferred annotations to the shared repository --")
    # The engine already derived the call graph and blocking summary for the
    # eval runs above; the export reuses them instead of re-deriving.
    shared = engine.artifacts()
    graph, info = shared.graph, shared.blocking
    database = AnnotationDatabase()
    database.add_all(export_blocking_facts(info, graph))
    print(f"{len(database)} blocking facts exported; e.g.:")
    annotations = emit_annotations(info, graph)
    for name in sorted(annotations)[:8]:
        print(f"  {name}: {annotations[name]}")
    database.save("blockstop_annotations.json")
    print("saved to blockstop_annotations.json")


if __name__ == "__main__":
    main()
