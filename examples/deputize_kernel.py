#!/usr/bin/env python3
"""Deputize the whole mini-kernel and measure what it costs.

This is the §2.1 experience report as a script: convert the kernel corpus
with Deputy, print the conversion census (annotated lines, trusted lines,
checks inserted vs. proven), boot the instrumented kernel, run a few of the
hbench micro-benchmarks and show the relative performance next to the
uninstrumented build.

Run with:  python examples/deputize_kernel.py
"""

from repro.deputy import DeputyOptions
from repro.engine import AnalysisEngine
from repro.harness import run_deputy_stats
from repro.hbench import get_benchmark
from repro.kernel.boot import boot_kernel
from repro.kernel.build import BuildConfig, build_kernel

BENCHMARKS = ("lat_syscall", "lat_pipe", "lat_udp", "bw_pipe", "bw_file_rd")


def main() -> None:
    print("Converting the mini-kernel with Deputy...")
    engine = AnalysisEngine()
    stats = run_deputy_stats(DeputyOptions(), engine=engine)
    print(stats.report)
    print()

    print("Booting baseline and deputized kernels (from the engine's cached parse)...")
    baseline_config = BuildConfig()
    deputy_config = BuildConfig(deputy=True)
    baseline = boot_kernel(
        build=build_kernel(baseline_config,
                           base_program=engine.fresh_kernel_program(baseline_config)),
        reset_cycles_after_boot=True)
    deputized = boot_kernel(
        build=build_kernel(deputy_config,
                           base_program=engine.fresh_kernel_program(deputy_config)),
        reset_cycles_after_boot=True)
    print(f"baseline boot : {baseline.boot_cycles} cycles")
    print(f"deputized boot: {deputized.boot_cycles} cycles "
          f"({deputized.deputy_stats.checks_executed} checks executed, "
          f"{deputized.deputy_stats.failures} failures)")
    print()

    print(f"{'benchmark':<14}{'baseline':>12}{'deputized':>12}{'rel. perf.':>12}")
    for name in BENCHMARKS:
        bench = get_benchmark(name)
        base = bench.measure(baseline)
        dep = bench.measure(deputized)
        relative = (base / dep) if bench.kind == "bw" else (dep / base)
        print(f"{name:<14}{base:>12}{dep:>12}{relative:>12.2f}")
    print()
    print("Deputy runtime check breakdown on the deputized kernel:")
    for kind, count in sorted(deputized.deputy_stats.by_kind.items()):
        print(f"  {kind:>10}: {count}")


if __name__ == "__main__":
    main()
