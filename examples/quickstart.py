#!/usr/bin/env python3
"""Quickstart: check a small kernel-style module with all three tools.

This walks the complete pipeline on a ~40-line MiniC driver:

1. parse and link it with the MiniC frontend;
2. run Deputy (static checking + run-time check insertion) and execute the
   instrumented code on the abstract machine, catching a buffer overflow;
3. run CCount and catch a free of an object that is still referenced;
4. run BlockStop and report a blocking call made with interrupts disabled.

Run with:  python examples/quickstart.py
"""

from repro.blockstop import run_blockstop
from repro.ccount import CCountConfig
from repro.ccount import instrument_program as ccount_instrument
from repro.ccount import runtime as ccount_runtime
from repro.deputy import DeputyOptions, instrument_program
from repro.deputy import runtime as deputy_runtime
from repro.engine import AnalysisEngine
from repro.kernel.corpus import CorpusFile
from repro.machine import CheckFailure, Interpreter, link_units
from repro.minic import parse_source

DRIVER_SOURCE = r"""
void spin_lock_irqsave(int *lock);
void spin_unlock_irqrestore(int *lock);
void schedule(void) blocking;

struct packet {
    int length;
    char payload[16];
    struct packet *next;
};

static struct packet *queue;
static int queue_lock;

int enqueue(char * count(length) data, int length) {
    struct packet *pkt = (struct packet *)__raw_alloc(sizeof(struct packet));
    int i;
    pkt->length = length;
    for (i = 0; i < length; i = i + 1) {
        pkt->payload[i] = data[i];
    }
    pkt->next = queue;
    queue = pkt;
    return 0;
}

int drop_head_badly(void) {
    /* BUG (CCount): frees the head packet while `queue` still points at it. */
    __raw_free((void *)queue);
    return 0;
}

int flush_queue_badly(void) {
    /* BUG (BlockStop): sleeps while interrupts are disabled. */
    spin_lock_irqsave(&queue_lock);
    schedule();
    spin_unlock_irqrestore(&queue_lock);
    return 0;
}

int main(int oversized) {
    char message[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { message[i] = (char)(65 + i); }
    /* Passing length 20 overruns the 16-byte payload: Deputy catches it. */
    return enqueue(message, oversized ? 20 : 8);
}
"""


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1. Deputy: type and bounds safety")
    program = link_units([parse_source(DRIVER_SOURCE, "driver.c")])
    result = instrument_program(program, DeputyOptions())
    print(f"run-time checks inserted: {result.checks_inserted}, "
          f"proven statically: {result.checks_static}, "
          f"static errors: {len(result.errors)}")
    interp = Interpreter(program)
    deputy_runtime.install(interp)
    print("well-behaved call:   enqueue of 8 bytes ->", interp.run("main", 0).value)
    try:
        interp.run("main", 1)
    except CheckFailure as failure:
        print("overflowing call:    caught by Deputy ->", failure.message)

    banner("2. CCount: checked deallocation")
    program = link_units([parse_source(DRIVER_SOURCE, "driver.c")])
    cc_result = ccount_instrument(program, CCountConfig())
    interp = Interpreter(program)
    runtime = ccount_runtime.install(interp, cc_result.typeinfo, CCountConfig())
    interp.run("main", 0)
    interp.run("drop_head_badly")
    bad = runtime.stats.bad_frees[0]
    print(f"pointer writes instrumented: {cc_result.pointer_writes_instrumented}")
    print(f"bad free detected at 0x{bad.addr:x} with {bad.outstanding} outstanding "
          f"reference(s); object leaked to stay sound")

    banner("3. BlockStop: no blocking while interrupts are disabled")
    program = link_units([parse_source(DRIVER_SOURCE, "driver.c")])
    blockstop = run_blockstop(program)
    for violation in blockstop.reported:
        print(violation.describe())
    print(f"functions that may block: {sorted(blockstop.blocking.may_block)}")

    banner("4. The unified engine: every analysis, one parse")
    engine = AnalysisEngine(files=(CorpusFile("driver.c", DRIVER_SOURCE),))
    report = engine.run(analyses="all")
    for name, analysis in sorted(report.analyses.items()):
        print(f"{name:>10}: {len(analysis.findings)} finding(s)")
    for finding in report.all_findings():
        where = f"{finding['file']}:{finding['line']}" if finding["file"] else "-"
        print(f"  {where} [{finding['analysis']}/{finding['kind']}] {finding['message']}")


if __name__ == "__main__":
    main()
