"""A1 — ablation: Deputy's redundant-check optimizer.

DESIGN.md calls out the check optimizer as a design choice; this ablation
measures how many run-time checks it removes and what that is worth on a
latency-sensitive benchmark.
"""

from repro.benchutil import run_once
from repro.deputy import DeputyOptions
from repro.harness import run_deputy_stats
from repro.hbench import get_benchmark
from repro.kernel.boot import boot_kernel
from repro.kernel.build import BuildConfig


def _checks_with(optimize: bool) -> tuple[int, int]:
    result = run_deputy_stats(DeputyOptions(optimize=optimize))
    return result.report.checks_inserted, result.report.checks_elided


def test_optimizer_removes_redundant_checks(benchmark):
    inserted_on, elided_on = run_once(benchmark, _checks_with, True)
    inserted_off, elided_off = _checks_with(False)
    print()
    print(f"optimizer on : {inserted_on} checks inserted, {elided_on} elided")
    print(f"optimizer off: {inserted_off} checks inserted, {elided_off} elided")
    assert elided_off == 0
    assert elided_on > 20
    assert inserted_on < inserted_off


def test_optimizer_improves_latency_benchmarks(benchmark):
    def measure(optimize: bool) -> int:
        kernel = boot_kernel(
            BuildConfig(deputy=True, deputy_options=DeputyOptions(optimize=optimize)),
            reset_cycles_after_boot=True)
        return get_benchmark("lat_fs").measure(kernel)

    with_optimizer = run_once(benchmark, measure, True)
    without_optimizer = measure(False)
    print()
    print(f"lat_fs cycles with optimizer   : {with_optimizer}")
    print(f"lat_fs cycles without optimizer: {without_optimizer}")
    assert with_optimizer <= without_optimizer
