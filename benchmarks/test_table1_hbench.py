"""E1 — Table 1: relative performance of the deputized kernel on hbench.

Regenerates the paper's only table: 21 bandwidth/latency micro-benchmarks run
on the baseline and the Deputy-instrumented mini-kernel, reported as relative
performance with the paper's conventions (bw = relative throughput, lat =
relative latency).
"""

import pytest

from repro.benchutil import run_once
from repro.harness import run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1()


def test_table1_full_suite(benchmark, table1_result):
    """Print the regenerated Table 1 and check its qualitative shape."""
    result = run_once(benchmark, lambda: table1_result)
    print()
    print(result.format_table())
    assert len(result.suite.rows) == 21
    assert result.shape_holds()


def test_table1_bandwidth_rows_lose_little_throughput(table1_result):
    for row in table1_result.suite.bandwidth_rows():
        assert row.relative >= 0.70, f"{row.name} lost too much bandwidth"


def test_table1_latency_rows_bounded(table1_result):
    for row in table1_result.suite.latency_rows():
        assert 0.95 <= row.relative <= 2.2, f"{row.name} latency out of range"


def test_table1_latency_overhead_exceeds_bandwidth_overhead(table1_result):
    bw = table1_result.suite.bandwidth_rows()
    lat = table1_result.suite.latency_rows()
    bw_overhead = sum(1.0 / r.relative for r in bw) / len(bw) - 1.0
    lat_overhead = sum(r.relative for r in lat) / len(lat) - 1.0
    assert lat_overhead >= bw_overhead


def test_table1_worst_cases_are_network_paths(table1_result):
    """The paper's worst cases are bw_tcp (bandwidth) and lat_udp/lat_tcp
    (latency); in our reproduction the network and fs paths likewise carry the
    largest overheads."""
    worst_bw = min(table1_result.suite.bandwidth_rows(), key=lambda r: r.relative)
    assert worst_bw.name in {"bw_tcp", "bw_file_rd", "bw_mmap_rd"}
    worst_lat = max(table1_result.suite.latency_rows(), key=lambda r: r.relative)
    assert worst_lat.name in {"lat_udp", "lat_tcp", "lat_fs", "lat_fslayer", "lat_proc"}
