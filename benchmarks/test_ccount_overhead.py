"""E4/A2 — CCount run-time overheads (§2.2).

The paper: fork costs 19% more under CCount on a uniprocessor kernel and 63%
more on an SMP kernel (locked reference-count updates); module loading costs
8% / 12%.  The reproduced claims are the orderings (SMP > UP, fork > module)
and the rough magnitudes, plus the A2 ablation sweeping the locked-operation
cost.
"""

from repro.benchutil import run_once
from repro.harness import (
    run_ccount_overheads,
    run_locked_cost_sweep,
)


def test_ccount_fork_and_module_overheads(benchmark):
    result = run_once(benchmark, run_ccount_overheads)
    print()
    print(result.format_table())
    fork_up = result.row("fork", "up").overhead
    fork_smp = result.row("fork", "smp").overhead
    module_up = result.row("module", "up").overhead
    module_smp = result.row("module", "smp").overhead
    # Orderings from the paper.
    assert fork_smp > fork_up
    assert module_smp >= module_up
    assert fork_up > module_up
    # Rough magnitudes (within a factor of ~2.5 of the paper's numbers).
    assert 0.05 <= fork_up <= 0.45
    assert 0.25 <= fork_smp <= 1.2
    assert 0.0 <= module_up <= 0.25
    assert result.shape_holds()


def test_ccount_locked_cost_ablation(benchmark):
    """A2: fork overhead grows monotonically with the locked-operation cost,
    which is the paper's explanation (footnote 4) for the 63% SMP number."""
    sweep = run_once(benchmark, run_locked_cost_sweep, (0, 8, 16, 24))
    overheads = [overhead for _, overhead in sweep]
    print()
    for cost, overhead in sweep:
        print(f"locked-op extra cost {cost:>3}: fork overhead {overhead:.1%}")
    assert all(later >= earlier - 0.01
               for earlier, later in zip(overheads, overheads[1:]))
    assert overheads[-1] > overheads[0]
