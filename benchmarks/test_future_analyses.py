"""A3 — the §3.1 future analyses run on the kernel corpus.

The paper sketches three follow-on sound analyses (lock safety, stack depth,
error-code checking).  This benchmark runs all three over the corpus and
checks the properties they establish.
"""

from repro.benchutil import run_once
from repro.analyses import analyse_error_checks, analyse_locks, analyse_stack
from repro.blockstop import build_direct_callgraph, run_blockstop
from repro.kernel.build import parse_corpus
from repro.kernel.corpus import KERNEL_FILES


def _run_all():
    program = parse_corpus(KERNEL_FILES)
    blockstop = run_blockstop(program)
    locks = analyse_locks(program, irq_functions=blockstop.irq_handlers)
    graph, _ = build_direct_callgraph(program)
    stack = analyse_stack(program, graph)
    errors = analyse_error_checks(program)
    return program, locks, stack, errors


def test_future_analyses_on_corpus(benchmark):
    program, locks, stack, errors = run_once(benchmark, _run_all)
    print()
    print(f"lock acquisitions analysed : {len(locks.acquisitions)}")
    print(f"lock order violations      : {len(locks.order_violations)}")
    print(f"worst-case stack depth     : {stack.worst_case} bytes "
          f"(limit {stack.stack_limit})")
    print(f"deepest chain              : {' -> '.join(stack.deepest_chain[:6])}")
    print(f"error-returning functions  : {len(errors.error_returning)}")
    print(f"unchecked error calls      : {errors.unchecked_count}")
    # Lock safety: the corpus uses a consistent lock order.
    assert locks.deadlock_free
    assert len(locks.acquisitions) > 10
    # Stack depth: every chain fits the 8 kB kernel stack.
    assert stack.fits
    assert stack.worst_case > 200
    # Error codes: the analysis finds error-returning functions and checks
    # most call sites (the corpus is not perfect, which is the point).
    assert len(errors.error_returning) > 10
    assert errors.checked_calls > 0
