"""E5 — BlockStop on the kernel corpus (§2.3).

The paper: the analysis found two apparent bugs, plus false positives caused
by the conservative points-to analysis of function pointers, all silenced by
15 manual run-time checks.  The corpus seeds exactly that structure, so the
regenerated numbers are: 2 real bugs, a dozen-plus false positives, and a set
of run-time checks that silences every false positive while both real bugs
stay reported.
"""

from repro.benchutil import run_once
from repro.harness import (
    ALL_SEEDED_CALLERS,
    CONST_PRUNED_CALLERS,
    CONST_TWIN_BUG_CALLERS,
    INTERPROC_BUG_CALLERS,
    PAPER_BLOCKSTOP,
    run_blockstop_eval,
)


def test_blockstop_bugs_and_false_positives(benchmark):
    result = run_once(benchmark, run_blockstop_eval)
    print()
    print(result.before)
    print(f"runtime checks inserted: {len(result.runtime_checks)}")
    print(f"violations after checks: {result.after.violations_reported}")
    # Both of the paper's seeded bugs are found, plus the seeded
    # interprocedural one (atomic only through the callee's IRQ delta) and
    # the live if (1) twin of the pruned constant-gated shape.
    assert result.real_bugs_found == PAPER_BLOCKSTOP["real_bugs"] == 2
    assert result.interproc_bugs_found == len(INTERPROC_BUG_CALLERS) == 1
    assert result.const_twin_bugs_found == len(CONST_TWIN_BUG_CALLERS) == 1
    # The conservative points-to analysis produces false positives.
    assert len(result.false_positive_callees) >= 10
    # The manual run-time checks (paper: 15) silence all of them.
    assert 10 <= len(result.runtime_checks) <= 20
    assert {v.caller for v in result.after.reported} <= ALL_SEEDED_CALLERS
    assert result.after.violations_reported == (
        2 + len(INTERPROC_BUG_CALLERS) + len(CONST_TWIN_BUG_CALLERS))
    assert result.after.violations_silenced >= len(result.runtime_checks)
    assert result.shape_holds()


def test_blockstop_condition_gated_false_positives_pruned(benchmark):
    """The constant-propagation lattice prunes condition-gated shapes: the
    if (0)-guarded blocking call and lock acquire produce zero reports, while
    their if (1) twins keep reporting — scored as the pruned-FP metric."""
    result = run_once(benchmark, run_blockstop_eval)
    print()
    print(f"pruned-FP reports (must be 0): {result.pruned_fp_reports}")
    print(f"const twins still reported   : {result.const_twin_bugs_found}")
    assert result.pruned_fp_reports == 0
    before_callers = {v.caller for v in result.before.reported}
    assert not (before_callers & CONST_PRUNED_CALLERS)
    assert before_callers >= CONST_TWIN_BUG_CALLERS


def test_blockstop_field_sensitive_ablation(benchmark):
    """The paper's suggested improvement: a field-sensitive points-to analysis
    reduces the number of reported violations without any manual checks."""
    result = run_once(benchmark, run_blockstop_eval)
    assert (result.field_sensitive.violations_reported
            <= result.before.violations_reported)
    # The tty false positive (read_chan via flush_to_ldisc) disappears.
    field_callees = {v.callee for v in result.field_sensitive.reported}
    assert "read_chan" not in field_callees
