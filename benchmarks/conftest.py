"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's results.  The abstract machine
is deterministic, so a single round per benchmark is enough — repeated rounds
would measure the Python interpreter, not the simulated kernel.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
