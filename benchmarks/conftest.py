"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's results.  The abstract machine
is deterministic, so a single round per benchmark is enough — repeated rounds
would measure the Python interpreter, not the simulated kernel.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


# ``run_once`` lives in repro.benchutil so benchmark modules can import it
# under --import-mode=importlib (this directory is not on sys.path there).
