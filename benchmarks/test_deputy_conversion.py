"""E2/E6 — Deputy conversion statistics (§2.1 in-text numbers).

The paper: ~435 KLoC converted, ~0.6% of lines annotated, <0.8% trusted.
Our corpus is ~2.5 KLoC, so the reproduced claim is the *shape*: annotations
and trusted code stay a small fraction of the converted kernel, and the
conversion leaves no outstanding static errors.
"""

from repro.benchutil import run_once
from repro.harness import PAPER_DEPUTY_STATS, run_deputy_stats


def test_deputy_conversion_census(benchmark):
    result = run_once(benchmark, run_deputy_stats)
    report = result.report
    print()
    print(report)
    assert report.total_lines > 1500
    assert report.annotation_count >= 40
    assert report.annotated_fraction < 0.08
    assert report.trusted_fraction < PAPER_DEPUTY_STATS["trusted_fraction"] * 10
    assert report.check_errors == 0
    assert result.shape_holds()


def test_deputy_hybrid_checking_split(benchmark):
    """Most obligations discharge statically or get a single run-time check."""
    result = run_once(benchmark, run_deputy_stats)
    report = result.report
    total = report.checks_inserted + report.checks_static + report.checks_elided
    assert total > 200
    assert report.checks_static + report.checks_elided > 0.3 * total
    assert report.checks_inserted > 0
    # The interval domain's contribution: loop-bounded index obligations
    # (for (i = 0; i < n; ...) a[i]) proven without a run-time check.
    assert report.checks_interval > 10
    assert report.checks_interval <= report.checks_static
    # The octagon domain's contribution: bounds the guard only implies
    # relationally (limit = n - 1; i <= limit, aliased counts, i < buf->n)
    # discharged by difference-bound entailment.
    assert report.checks_relational >= 5
    assert (report.checks_interval + report.checks_relational
            <= report.checks_static)
