"""E3 — CCount free verification (§2.2 in-text numbers).

The paper verifies all ~107k frees from boot to the login prompt, and light
use (idling plus copying a kernel image over ssh) keeps 98.5% of frees good.
Scaled to the mini-kernel: every boot-time free verifies and light use stays
at or above 98.5% good frees, with the conversion census (type layouts, RTTI
sites, delayed free scopes, null-out fixes) reported alongside.
"""

from repro.benchutil import run_once
from repro.harness import PAPER_CCOUNT_STATS, run_ccount_stats


def test_ccount_boot_and_light_use(benchmark):
    result = run_once(benchmark, run_ccount_stats)
    print()
    print(result.conversion)
    print(result.boot_report)
    print(result.light_use_report)
    assert result.boot_report.total_frees > 0
    assert result.boot_report.good_fraction >= 0.99
    assert result.light_use_report.good_fraction >= PAPER_CCOUNT_STATS[
        "light_use_good_fraction"]
    assert result.shape_holds()


def test_ccount_conversion_census(benchmark):
    result = run_once(benchmark, run_ccount_stats)
    conversion = result.conversion
    assert conversion.types_described >= 10
    assert conversion.rtti_sites >= 5
    assert conversion.delayed_scopes >= 2
    assert conversion.pointer_nullouts >= 3
    assert conversion.pointer_writes_instrumented > 30
