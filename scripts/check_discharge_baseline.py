#!/usr/bin/env python3
"""Gate the Deputy static-discharge rate against its checked-in baseline.

CI appends engine runs to ``BENCH_engine.json`` (each carrying
``deputy_checks_discharged`` / ``deputy_checks_total``).  This script reads
the most recent run that recorded those counters and fails when the
discharged count has dropped below the repo's ``deputy_discharge_baseline``
— a regression in the optimizer's ability to prove checks away (e.g. a
broken interval transfer) would otherwise only show up as a silent perf
loss in the instrumented corpus.

When the file also carries a ``deputy_relational_baseline``, the latest
run's ``deputy_checks_relational`` (discharges owed to difference-bound
entailment specifically) is gated the same way — a regression there can
hide inside a stable total when the interval path picks up the slack.

Raising a baseline is a deliberate act: when an analysis improvement
discharges more checks, bump ``deputy_discharge_baseline`` (and/or
``deputy_relational_baseline``) in the checked-in ``BENCH_engine.json``
alongside the change that earned it.

Usage::

    python scripts/check_discharge_baseline.py [BENCH_engine.json]
"""

from __future__ import annotations

import json
import sys


def check(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path!r}: {error}", file=sys.stderr)
        return 2
    baseline = payload.get("deputy_discharge_baseline")
    if baseline is None:
        print(f"error: {path!r} has no deputy_discharge_baseline key",
              file=sys.stderr)
        return 2
    # The baseline is a seed-corpus invariant: tagged entries (the bench
    # lane's generated 'scale' corpus runs) have their own discharge counts
    # and must not be compared against it.
    runs = [run for run in payload.get("runs", [])
            if "deputy_checks_discharged" in run and "tag" not in run]
    if not runs:
        print(f"error: no untagged run in {path!r} recorded "
              "deputy_checks_discharged (did the engine run include the "
              "deputy analysis over the seed corpus?)", file=sys.stderr)
        return 2
    latest = runs[-1]
    discharged = latest["deputy_checks_discharged"]
    total = latest.get("deputy_checks_total", 0)
    print(f"deputy discharge: {discharged}/{total} static "
          f"(baseline {baseline})")
    if discharged < baseline:
        print(f"FAIL: discharged {discharged} < baseline {baseline} — "
              "the optimizer lost proving power; fix the regression or "
              "lower the baseline with justification.", file=sys.stderr)
        return 1
    relational_baseline = payload.get("deputy_relational_baseline")
    if relational_baseline is not None:
        relational = latest.get("deputy_checks_relational", 0)
        print(f"deputy relational discharge: {relational} "
              f"(baseline {relational_baseline})")
        if relational < relational_baseline:
            print(f"FAIL: relational discharges {relational} < baseline "
                  f"{relational_baseline} — the difference-bound entailment "
                  "lost proving power; fix the regression or lower the "
                  "baseline with justification.", file=sys.stderr)
            return 1
    print("OK: discharge at or above baseline")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else "BENCH_engine.json"))
