#!/usr/bin/env python
"""CI smoke test for `repro-engine serve`.

Exports the embedded corpus to a temp directory, starts the service as a
real subprocess, and checks the full loop:

1. `/health` turns 200 within the startup budget;
2. `/findings` matches `repro-engine run` byte-for-byte;
3. an on-disk edit is picked up by the watcher and re-analyzed
   *incrementally* (no full re-parse, SCCs reused).

Exit status 0 on success; any failure prints the reason and exits 1.
Run from a source checkout: `python scripts/daemon_smoke.py`.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

STARTUP_BUDGET_SECONDS = 120
EDIT_BUDGET_SECONDS = 60


def fail(message: str) -> None:
    print(f"daemon-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(port: int, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def wait_for(predicate, budget: float, what: str):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        result = predicate()
        if result is not None:
            return result
        time.sleep(0.25)
    fail(f"timed out after {budget}s waiting for {what}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-daemon-smoke-") as tmp:
        corpus = Path(tmp) / "corpus"
        run = subprocess.run(
            [sys.executable, "-m", "repro.engine", "export-corpus",
             str(corpus)], check=True, capture_output=True, text=True)
        print(run.stdout.strip())

        batch = subprocess.run(
            [sys.executable, "-m", "repro.engine", "run", "--analyses", "all",
             "--corpus-dir", str(corpus), "--format", "json"],
            check=True, capture_output=True, text=True)
        batch_report = json.loads(batch.stdout)
        batch_findings = sorted(
            (finding
             for analysis in batch_report["analyses"].values()
             for finding in analysis["findings"]),
            key=lambda f: json.dumps(f, sort_keys=True))

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.engine", "serve",
             "--corpus-dir", str(corpus), "--port", "0",
             "--poll-seconds", "0.2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = proc.stdout.readline().strip()
            print(banner)
            if "http://" not in banner:
                fail(f"unexpected serve banner: {banner!r}")
            address = banner.split("http://")[1].split(",")[0].strip()
            port = int(address.rsplit(":", 1)[1])

            def healthy():
                if proc.poll() is not None:
                    fail(f"serve exited early: {proc.stdout.read()}")
                status, payload = get(port, "/health")
                return payload if status == 200 else None

            health = wait_for(healthy, STARTUP_BUDGET_SECONDS,
                              "/health to report ready")
            print(f"health: revision={health['revision']}")

            status, served = get(port, "/findings")
            if status != 200:
                fail(f"/findings returned {status}")
            served_findings = sorted(
                served["findings"],
                key=lambda f: json.dumps(f, sort_keys=True))
            if served_findings != batch_findings:
                fail("served findings differ from `repro-engine run`")
            print(f"findings: {served['count']} (matches batch run)")

            # Edit one file on disk; the watcher must pick it up and the
            # follow-up pass must be incremental.
            target = sorted(corpus.rglob("*.c"))[-1]
            target.write_text(target.read_text()
                              + "\nint __daemon_smoke(void) { return 0; }\n")

            def reanalyzed():
                status, payload = get(port, "/stats")
                if status != 200 or payload.get("revision", 1) < 2:
                    return None
                return payload

            stats = wait_for(reanalyzed, EDIT_BUDGET_SECONDS,
                             "the watcher to trigger a second pass")
            last = stats["last_pass"]
            print("edit pass: "
                  f"full_reparse={last['full_reparse']} "
                  f"parsed_units={last['parsed_units']} "
                  f"dirty_sccs={last['dirty_sccs']} "
                  f"sccs_reused={last['sccs_reused']}")
            if last["full_reparse"]:
                fail("edit pass fell back to a full re-parse")
            if last["sccs_reused"] == 0:
                fail("edit pass reused no SCC summaries")
            print("daemon-smoke: OK")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    main()
