#!/usr/bin/env python
"""CI smoke test for `repro-engine serve`.

Exports the embedded corpus to a temp directory, starts the service as a
real subprocess, and checks the full loop:

1. `/health` turns 200 within the startup budget;
2. `/findings` matches `repro-engine run` byte-for-byte;
3. an on-disk edit is picked up by the watcher and re-analyzed
   *incrementally* (no full re-parse, SCCs reused);
4. a *restarted* serve over the unchanged corpus warm-starts from the
   persistent store: its first pass re-solves 0 SCCs and serves findings
   byte-identical to the pre-restart snapshot.

Exit status 0 on success; any failure prints the reason and exits 1.
Run from a source checkout: `python scripts/daemon_smoke.py`.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

STARTUP_BUDGET_SECONDS = 120
EDIT_BUDGET_SECONDS = 60


def fail(message: str) -> None:
    print(f"daemon-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(port: int, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def wait_for(predicate, budget: float, what: str):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        result = predicate()
        if result is not None:
            return result
        time.sleep(0.25)
    fail(f"timed out after {budget}s waiting for {what}")


def start_serve(corpus: Path, store: Path) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine", "serve",
         "--corpus-dir", str(corpus), "--port", "0",
         "--poll-seconds", "0.2", "--store-dir", str(store)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    banner = proc.stdout.readline().strip()
    print(banner)
    if "http://" not in banner:
        fail(f"unexpected serve banner: {banner!r}")
    address = banner.split("http://")[1].split(",")[0].strip()
    return proc, int(address.rsplit(":", 1)[1])


def wait_healthy(proc: subprocess.Popen, port: int) -> dict:
    def healthy():
        if proc.poll() is not None:
            fail(f"serve exited early: {proc.stdout.read()}")
        status, payload = get(port, "/health")
        return payload if status == 200 else None

    return wait_for(healthy, STARTUP_BUDGET_SECONDS,
                    "/health to report ready")


def stop_serve(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()


def sorted_findings(findings: list[dict]) -> list[dict]:
    return sorted(findings, key=lambda f: json.dumps(f, sort_keys=True))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-daemon-smoke-") as tmp:
        corpus = Path(tmp) / "corpus"
        store = Path(tmp) / "store"
        run = subprocess.run(
            [sys.executable, "-m", "repro.engine", "export-corpus",
             str(corpus)], check=True, capture_output=True, text=True)
        print(run.stdout.strip())

        batch = subprocess.run(
            [sys.executable, "-m", "repro.engine", "run", "--analyses", "all",
             "--corpus-dir", str(corpus), "--format", "json"],
            check=True, capture_output=True, text=True)
        batch_report = json.loads(batch.stdout)
        batch_findings = sorted_findings(
            [finding
             for analysis in batch_report["analyses"].values()
             for finding in analysis["findings"]])

        proc, port = start_serve(corpus, store)
        try:
            health = wait_healthy(proc, port)
            print(f"health: revision={health['revision']}")

            status, served = get(port, "/findings")
            if status != 200:
                fail(f"/findings returned {status}")
            served_findings = sorted_findings(served["findings"])
            if served_findings != batch_findings:
                fail("served findings differ from `repro-engine run`")
            print(f"findings: {served['count']} (matches batch run)")

            # Edit one file on disk; the watcher must pick it up and the
            # follow-up pass must be incremental.
            target = sorted(corpus.rglob("*.c"))[-1]
            target.write_text(target.read_text()
                              + "\nint __daemon_smoke(void) { return 0; }\n")

            def reanalyzed():
                status, payload = get(port, "/stats")
                if status != 200 or payload.get("revision", 1) < 2:
                    return None
                return payload

            stats = wait_for(reanalyzed, EDIT_BUDGET_SECONDS,
                             "the watcher to trigger a second pass")
            last = stats["last_pass"]
            print("edit pass: "
                  f"full_reparse={last['full_reparse']} "
                  f"parsed_units={last['parsed_units']} "
                  f"dirty_sccs={last['dirty_sccs']} "
                  f"sccs_reused={last['sccs_reused']}")
            if last["full_reparse"]:
                fail("edit pass fell back to a full re-parse")
            if last["sccs_reused"] == 0:
                fail("edit pass reused no SCC summaries")

            status, pre_restart = get(port, "/findings")
            if status != 200:
                fail(f"/findings (pre-restart) returned {status}")
        finally:
            stop_serve(proc)

        # Restart over the unchanged corpus: the fresh process must warm-
        # start from the persistent store instead of paying a cold pass.
        proc, port = start_serve(corpus, store)
        try:
            wait_healthy(proc, port)
            status, stats = get(port, "/stats")
            if status != 200:
                fail(f"/stats (restart) returned {status}")
            last = stats["last_pass"]
            print("restart pass: "
                  f"dirty_sccs={last['dirty_sccs']} "
                  f"consts_solved={last['consts_solved']} "
                  f"shards_rerun={last['shards_rerun']} "
                  f"store_hits={last['store_hits']}")
            if last["dirty_sccs"] != 0:
                fail("warm restart re-solved SCCs "
                     f"(dirty_sccs={last['dirty_sccs']})")
            if last["shards_rerun"] != 0:
                fail("warm restart re-ran finding shards")
            if last["store_hits"] == 0:
                fail("warm restart never hit the persistent store")
            status, served = get(port, "/findings")
            if status != 200:
                fail(f"/findings (restart) returned {status}")
            if sorted_findings(served["findings"]) != sorted_findings(
                    pre_restart["findings"]):
                fail("warm-restart findings differ from pre-restart snapshot")
            print(f"restart findings: {served['count']} (byte-identical)")
            print("daemon-smoke: OK")
        finally:
            stop_serve(proc)


if __name__ == "__main__":
    main()
