"""The always-on analysis service: watcher → incremental pass → snapshot.

:class:`AnalysisService` owns one :class:`IncrementalAnalyzer` and publishes
its results as immutable :class:`Snapshot` records.  Passes are serialized
behind a lock (the analyzer mutates shared parse state); readers never take
that lock — they grab ``service.snapshot`` (a single atomic attribute read)
and serve from it, so the HTTP API stays responsive mid-re-analysis.

With a corpus directory the service watches the tree and reconciles when
edits settle; without one it serves the embedded corpus and re-analyzes only
on ``POST /analyze``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..blockstop.pointsto import Precision
from ..engine.artifacts import SharedArtifacts
from ..engine.core import EngineReport
from .incremental import IncrementalAnalyzer, IncrementalStats
from .store import PersistentStore
from .watcher import CorpusWatcher, load_corpus_dir


@dataclass(frozen=True)
class Snapshot:
    """One published analysis state; everything a request needs, immutably."""

    revision: int
    report: EngineReport
    stats: IncrementalStats
    artifacts: SharedArtifacts
    created: float


#: How many past revisions' findings the service retains for ``?since=``
#: delta queries.  Old entries age out oldest-first; a ``since`` older than
#: the window degrades to a full (non-delta) response.
FINDINGS_HISTORY_LIMIT = 32


class AnalysisService:
    """Drive incremental re-analysis of a corpus and publish snapshots."""

    def __init__(self,
                 corpus_dir: str | Path | None = None,
                 files=None,
                 defines: dict[str, str] | None = None,
                 precision: Precision = Precision.TYPE_BASED,
                 poll_seconds: float = 0.5,
                 debounce_seconds: float = 0.3,
                 jobs: int = 1,
                 store_dir: str | Path | None = None,
                 store_max_mb: float | None = None,
                 verbose: bool = False) -> None:
        self.corpus_dir = Path(corpus_dir) if corpus_dir is not None else None
        if files is None and self.corpus_dir is not None:
            files = load_corpus_dir(self.corpus_dir)
        kwargs = {} if files is None else {"files": tuple(files)}
        #: The persistent warm-start store: a restarted serve re-solves ~0
        #: SCCs on an unchanged corpus because every fingerprint the
        #: analyzer computes hits the spilled artifact on disk.
        self.store = (PersistentStore(store_dir, max_mb=store_max_mb)
                      if store_dir is not None else None)
        self.analyzer = IncrementalAnalyzer(defines=defines,
                                            precision=precision, jobs=jobs,
                                            store=self.store,
                                            **kwargs)
        self.verbose = verbose
        self.snapshot: Snapshot | None = None
        self.passes = 0
        self.started = time.monotonic()
        self._reconcile_lock = threading.Lock()
        #: Coalescing gate state: at most one pass runs and at most one
        #: waits queued; later requests ride on the queued pass's snapshot.
        self._gate = threading.Condition()
        self._running = False
        self._queued = False
        self._pass_seq = 0
        self._totals = {"parsed_units": 0, "consts_solved": 0,
                        "dirty_sccs": 0, "sccs_reused": 0,
                        "shards_rerun": 0, "shards_reused": 0,
                        "full_reparses": 0}
        #: revision -> that pass's findings, for ``GET /findings?since=``.
        #: Insertion-ordered; trimmed to FINDINGS_HISTORY_LIMIT entries.
        self._findings_history: dict[int, list[dict]] = {}
        self.watcher = (CorpusWatcher(self.corpus_dir,
                                      self._watcher_reconcile,
                                      poll_seconds=poll_seconds,
                                      debounce_seconds=debounce_seconds)
                        if self.corpus_dir is not None else None)

    # -- lifecycle ----------------------------------------------------------

    def uptime(self) -> float:
        return time.monotonic() - self.started

    def reconcile(self) -> Snapshot:
        """Run one analysis pass over the current sources and publish it."""
        with self._reconcile_lock:
            files = (load_corpus_dir(self.corpus_dir)
                     if self.corpus_dir is not None else None)
            report = self.analyzer.analyze(files)
            stats = self.analyzer.last_stats
            snapshot = Snapshot(revision=self.analyzer.revision,
                                report=report, stats=stats,
                                artifacts=self.analyzer.artifacts,
                                created=time.time())
            for key in ("parsed_units", "consts_solved", "dirty_sccs",
                        "sccs_reused", "shards_rerun", "shards_reused"):
                self._totals[key] += getattr(stats, key)
            if stats.full_reparse:
                self._totals["full_reparses"] += 1
            self._findings_history[snapshot.revision] = (
                snapshot.report.all_findings())
            while len(self._findings_history) > FINDINGS_HISTORY_LIMIT:
                oldest = next(iter(self._findings_history))
                del self._findings_history[oldest]
            # Publishing is one attribute store: concurrent readers see
            # either the old snapshot or the new one, never a mixture.
            self.snapshot = snapshot
            self.passes += 1
            return snapshot

    def request_reconcile(self) -> "tuple[Snapshot | None, bool]":
        """Run — or coalesce onto — an analysis pass; returns
        ``(snapshot, coalesced)``.

        At most one pass runs and at most one sits queued behind it.  A
        request arriving while a pass is in flight becomes the queued
        runner (it still gets a pass that starts *after* its arrival, so
        it observes its own edits); any request arriving while both slots
        are taken waits for the queued pass and rides on its snapshot —
        that pass also starts after the request arrived, so merging them
        loses nothing.  Keeps a watcher burst plus concurrent ``POST
        /analyze`` calls from stacking up N redundant full passes.
        """
        with self._gate:
            if not self._running:
                self._running = True
            elif not self._queued:
                self._queued = True
                while self._running:
                    self._gate.wait()
                self._queued = False
                self._running = True
            else:
                # Both slots taken: the queued pass has not started yet, so
                # its snapshot will cover this request's changes too.
                target = self._pass_seq + 2
                while self._pass_seq < target:
                    self._gate.wait()
                return self.snapshot, True
        try:
            snapshot = self.reconcile()
        finally:
            with self._gate:
                self._running = False
                self._pass_seq += 1
                self._gate.notify_all()
        return snapshot, False

    def _watcher_reconcile(self) -> None:
        self.request_reconcile()

    def findings_at(self, revision: int) -> list[dict] | None:
        """The findings published at ``revision``, if still in the window."""
        return self._findings_history.get(revision)

    def start(self) -> None:
        """Kick off the initial pass (in the background) and the watcher."""
        threading.Thread(target=self._watcher_reconcile,
                         name="repro-initial-reconcile",
                         daemon=True).start()
        if self.watcher is not None:
            self.watcher.start()

    def stop(self) -> None:
        if self.watcher is not None:
            self.watcher.stop()

    # -- reporting ----------------------------------------------------------

    def stats_payload(self) -> dict:
        snapshot = self.snapshot
        payload = {
            "status": "ok" if snapshot is not None else "starting",
            "uptime_seconds": round(self.uptime(), 3),
            "passes": self.passes,
            "watching": (self.corpus_dir.as_posix()
                         if self.corpus_dir is not None else None),
            "totals": dict(self._totals),
        }
        if self.store is not None:
            payload["store"] = self.store.stats()
        if snapshot is not None:
            payload.update({
                "revision": snapshot.revision,
                "corpus_files": snapshot.report.corpus_files,
                "finding_count": snapshot.report.finding_count,
                "precision": snapshot.report.precision,
                "last_pass": snapshot.stats.to_dict(),
                "summary_stats": snapshot.report.summary_stats,
            })
            deputy = snapshot.report.analyses.get("deputy")
            if deputy is not None:
                metrics = deputy.metrics
                payload["deputy"] = {
                    "checks_total": metrics.get("obligations_total", 0),
                    "checks_discharged": metrics.get("obligations_static", 0),
                    "checks_interval": metrics.get("checks_interval", 0),
                    "checks_relational": metrics.get("checks_relational", 0),
                }
        return payload


def serve(corpus_dir: str | Path | None = None,
          host: str = "127.0.0.1", port: int = 8571,
          defines: dict[str, str] | None = None,
          precision: Precision = Precision.TYPE_BASED,
          poll_seconds: float = 0.5,
          jobs: int = 1,
          store_dir: str | Path | None = None,
          store_max_mb: float | None = None,
          verbose: bool = False) -> None:
    """Run the analysis service until interrupted (the CLI entry point)."""
    from .api import make_server

    service = AnalysisService(corpus_dir=corpus_dir, defines=defines,
                              precision=precision, poll_seconds=poll_seconds,
                              jobs=jobs, store_dir=store_dir,
                              store_max_mb=store_max_mb, verbose=verbose)
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    service.start()
    print(f"repro-engine serve: listening on http://{bound_host}:{bound_port}"
          + (f", watching {service.corpus_dir}" if service.corpus_dir else
             " (embedded corpus; POST /analyze to refresh)"),
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        server.server_close()
