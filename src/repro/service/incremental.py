"""Incremental re-analysis: per-TU parse reuse and per-SCC summary caching.

The batch engine (:class:`repro.engine.AnalysisEngine`) keys whole artifacts
on whole-corpus content: one edited byte re-parses every translation unit and
re-solves every summary.  The :class:`IncrementalAnalyzer` re-keys that work
at the granularity the dependency structure actually has:

* **parses** per translation unit — an edit re-parses only the edited file,
  against snapshots of the shared macro/typedef/enum tables taken when the
  corpus was last parsed (the corpus models kernel-wide headers by sharing
  those tables across files, so re-parsing one file in the middle of the
  sequence needs the tables rolled back to that point and verified after);
* **constant facts** per function, keyed on the function's rendered body;
* **summaries** per call-graph SCC, under Merkle-style keys
  (:func:`repro.dataflow.interproc.scc_fingerprints`) that fold each
  member's body hash, its resolved out-edges and every callee component's
  key — so editing one function dirties exactly its component and the
  components that (transitively) call it;
* **checker shards** per (analysis, translation unit), keyed on the unit's
  function bodies plus, for interprocedural analyses, those functions'
  SCC keys.

Two invariants keep this sound:

1. *Correctness never depends on the parse reuse.*  Cache keys are derived
   from rendered content (macro-expanded ASTs, type-definition renders,
   location streams), not from object identity.  Whenever an in-place
   re-parse cannot be proven equivalent to a from-scratch parse — the edit
   changed a macro, a typedef, a type definition, any top-level
   declaration, or simply failed one of the post-parse table checks — the
   analyzer falls back to a full re-parse of the corpus.  All derived
   stores hold plain data (summaries, constant facts, shard payload dicts;
   the same records the engine already pickles to disk), so they remain
   valid across that fallback and keep their hits.
2. *Dirty components re-solve from bottom.*  A dirty SCC starts at the
   lattice bottom exactly as a cold solve does, with clean dependency
   summaries supplied read-only — the least fixpoint is the same one a
   from-scratch run computes, so incremental reports are byte-identical
   with batch reports by construction (the invalidation tests assert
   this literally).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace

from .. import __version__
from ..analyses.errcheck import find_error_returning_functions
from ..blockstop.blocking import derive_blocking
from ..blockstop.callgraph import build_direct_callgraph
from ..blockstop.checker import find_irq_handlers
from ..blockstop.pointsto import FunctionPointerAnalysis, Precision
from ..dataflow.domains import DEFAULT_DOMAINS, domain_fingerprint, facts_of
from ..dataflow.interproc import (
    callgraph_fingerprint,
    condense_callgraph,
    scc_fingerprints,
    solve_scc,
)
from ..dataflow.summaries import build_context
from ..deputy.checker import DeputyOptions
from ..deputy.typesystem import TypeEnv
from ..engine.analyses import ANALYSIS_ORDER, diagnostics_report, make_registry
from ..engine.artifacts import SharedArtifacts, unit_function_map
from ..engine.core import EngineReport, _make_steal_handler
from ..engine.scheduler import (
    Task,
    WorkStealingExecutor,
    fork_available,
    resolve_jobs,
    usable_cpus,
)
from ..blockstop.runtime_checks import RuntimeCheckSet
from ..kernel.build import PARSE_COUNTS, ParseDiagnostic, _diagnostic_kind
from ..kernel.corpus import KERNEL_FILES, CorpusFile
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import MiniCError
from ..minic.lexer import tokenize
from ..minic.parser import Parser
from ..minic.pretty import PrettyPrinter
from ..minic.source import Preprocessor
from ..minic.symtab import TypeRegistry
from ..minic.visitor import walk


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def _dirty_scc_payload(scc, graph, condensation, consts, clean, dirty):
    """Late-bound payload for one dirty SCC task.

    Ships ``(scc, needed, member_facts)`` exactly like the engine's steal
    path, except out-of-component callee summaries can come from *either*
    a dirty dependency's task result or the clean store (``clean``)."""

    def payload_fn(results):
        members = set(scc)
        needed = {}
        for name in scc:
            for callee in graph.edges.get(name, ()):
                if callee in members or callee in needed:
                    continue
                owner = condensation.scc_of.get(callee)
                if owner in dirty:
                    component = results.get(f"scc:{owner}")
                    if component is not None and callee in component:
                        needed[callee] = component[callee]
                elif callee in clean:
                    needed[callee] = clean[callee]
        member_facts = {name: consts[name] for name in scc if name in consts}
        return (scc, needed, member_facts)

    return payload_fn


def _content_key(corpus_file: CorpusFile) -> str:
    digest = hashlib.sha256()
    for part in (__version__, corpus_file.filename, corpus_file.source,
                 "1" if corpus_file.kernel else "0"):
        raw = part.encode()
        digest.update(f"{len(raw)}:".encode())
        digest.update(raw)
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class _TableSnapshot:
    """The shared parse-time state between two files of the corpus sequence.

    Macros, typedefs and enum constants are pure *parse-time* tables: the
    parser consults them to classify tokens and resolve type names, and
    nothing reads them after linking.  They can therefore be saved and
    restored wholesale around a single file's re-parse.  Struct/enum
    objects cannot (later files hold references into them), so for those
    only the key sets, completion sets and the anonymous-tag counter are
    recorded; completions are undone in place.
    """

    macros: dict[str, str]
    typedefs: dict[str, object]
    typedef_renders: dict[str, str]
    enum_constants: dict[str, int]
    struct_keys: frozenset[str]
    enum_keys: frozenset[str]
    structs_complete: frozenset[str]
    enums_complete: frozenset[str]
    anon: int

    def tables_equal(self, other: "_TableSnapshot") -> bool:
        """Compare by rendered content, never by deep object equality
        (registry types are cyclic; renders name the cycle instead)."""
        return (self.macros == other.macros
                and self.typedef_renders == other.typedef_renders
                and self.enum_constants == other.enum_constants
                and self.struct_keys == other.struct_keys
                and self.enum_keys == other.enum_keys
                and self.structs_complete == other.structs_complete
                and self.enums_complete == other.enums_complete
                and self.anon == other.anon)


@dataclass
class _UnitRecord:
    """One corpus slot: its last good parse and how it changed the tables."""

    filename: str
    #: The source that produced ``unit`` (the *last good* source; on a
    #: parse error this keeps serving while ``content_key`` tracks the
    #: broken text so it isn't futilely re-parsed every pass).
    corpus_file: CorpusFile
    content_key: str
    unit: ast.TranslationUnit | None
    diagnostic: ParseDiagnostic | None
    pre: _TableSnapshot
    post: _TableSnapshot
    structs_completed: tuple[str, ...] = ()
    enums_completed: tuple[str, ...] = ()
    struct_renders: dict[str, str] = field(default_factory=dict)
    enum_members: dict[str, dict[str, int]] = field(default_factory=dict)
    decl_render: str = ""


@dataclass
class IncrementalStats:
    """What one incremental pass reused and what it had to redo."""

    revision: int = 0
    full_reparse: bool = False
    reparse_reason: str = ""
    parsed_units: int = 0
    reused_units: int = 0
    parse_errors: int = 0
    consts_solved: int = 0
    consts_reused: int = 0
    dirty_sccs: int = 0
    sccs_reused: int = 0
    dirty_functions: list[str] = field(default_factory=list)
    shards_rerun: int = 0
    shards_reused: int = 0
    #: Worker count the dirty-SCC re-solve actually ran with (0 = serial).
    parallel_jobs: int = 0
    #: Artifacts served from the persistent store (cold-start warm hits).
    store_hits: int = 0
    #: Artifacts written through to the persistent store this pass.
    store_writes: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "revision": self.revision,
            "full_reparse": self.full_reparse,
            "reparse_reason": self.reparse_reason,
            "parsed_units": self.parsed_units,
            "reused_units": self.reused_units,
            "parse_errors": self.parse_errors,
            "consts_solved": self.consts_solved,
            "consts_reused": self.consts_reused,
            "dirty_sccs": self.dirty_sccs,
            "sccs_reused": self.sccs_reused,
            "dirty_functions": list(self.dirty_functions),
            "shards_rerun": self.shards_rerun,
            "shards_reused": self.shards_reused,
            "parallel_jobs": self.parallel_jobs,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }


class IncrementalAnalyzer:
    """Re-analyze an evolving corpus, redoing only invalidated work.

    ``analyze()`` runs one full pass and returns an :class:`EngineReport`
    byte-identical (up to timing/cache-stat fields) with what a fresh
    :class:`~repro.engine.AnalysisEngine` would produce over the same
    sources; ``last_stats`` records what the pass reused.  Passes are
    serialized — the service runs them behind a lock and publishes
    immutable snapshots for readers — but *within* a pass the dirty-SCC
    re-solve can fan out over the engine's work-stealing executor when
    ``jobs`` allows it (the merge replays serial wave order, so the
    report stays byte-identical either way).
    """

    def __init__(self,
                 files: tuple[CorpusFile, ...] = KERNEL_FILES,
                 defines: dict[str, str] | None = None,
                 precision: Precision = Precision.TYPE_BASED,
                 deputy_options: DeputyOptions | None = None,
                 runtime_checks: RuntimeCheckSet | None = None,
                 jobs: int = 1,
                 store=None) -> None:
        self.files = tuple(files)
        self.defines = dict(defines or {})
        self.precision = precision
        #: Optional :class:`repro.service.store.PersistentStore`: the
        #: in-memory artifact stores spill through it, so a fresh analyzer
        #: over an unchanged corpus warm-starts with ~0 dirty SCCs.
        self.store = store
        #: Worker processes for the dirty-SCC re-solve (0 = auto-detect);
        #: passes with fewer than two dirty components stay serial.
        self.jobs = jobs
        self.registry = make_registry(deputy_options, runtime_checks)
        self._printer = PrettyPrinter()
        self._type_registry: TypeRegistry | None = None
        self._preprocessor: Preprocessor | None = None
        self._records: list[_UnitRecord] = []
        self._last_good: dict[str, CorpusFile] = {}
        #: function name -> ((body hash, globals fp, domains), facts | None)
        self._consts_store: dict[str, tuple[tuple[str, str, str], object]] = {}
        #: SCC Merkle key -> solved {name: FunctionSummary} for the component
        self._scc_store: dict[str, dict] = {}
        #: shard key -> run_shard payload dict
        self._shard_store: dict[str, dict] = {}
        self.revision = 0
        self.last_stats: IncrementalStats | None = None
        #: The last pass's shared artifacts (the service's /summaries source).
        self.artifacts: SharedArtifacts | None = None

    # -- parsing -------------------------------------------------------------

    def _snapshot(self) -> _TableSnapshot:
        registry = self._type_registry
        printer = self._printer
        return _TableSnapshot(
            macros=dict(self._preprocessor.defines),
            typedefs=dict(registry.typedefs),
            typedef_renders={name: printer.type_name(ctype)
                             for name, ctype in registry.typedefs.items()},
            enum_constants=dict(registry.enum_constants),
            struct_keys=frozenset(registry.structs),
            enum_keys=frozenset(registry.enums),
            structs_complete=frozenset(
                key for key, s in registry.structs.items() if s.complete),
            enums_complete=frozenset(
                key for key, e in registry.enums.items() if e.complete),
            anon=registry._anon_counter)

    def _apply_tables(self, snap: _TableSnapshot) -> None:
        """Restore the pure parse-time tables to ``snap`` in place."""
        registry = self._type_registry
        self._preprocessor.defines.clear()
        self._preprocessor.defines.update(snap.macros)
        registry.typedefs.clear()
        registry.typedefs.update(snap.typedefs)
        registry.enum_constants.clear()
        registry.enum_constants.update(snap.enum_constants)
        registry._anon_counter = snap.anon

    @staticmethod
    def _reset_struct(struct) -> None:
        struct.fields = []
        struct.complete = False
        struct._size = 0
        struct._align = 1

    def _restore_parse_point(self, record: _UnitRecord) -> None:
        """Roll the shared state back to just before ``record``'s file.

        Struct/enum *objects* created by this file are kept under their keys
        (later units hold references into them; deleting and re-creating
        would split type identity) — only their completion is undone, so the
        re-parse can complete them again without tripping the redefinition
        check.
        """
        self._apply_tables(record.pre)
        registry = self._type_registry
        for key in record.structs_completed:
            self._reset_struct(registry.structs[key])
        for tag in record.enums_completed:
            enum = registry.enums[tag]
            enum.members.clear()
            enum.complete = False

    def _undo_attempt(self, attempt_pre: _TableSnapshot) -> None:
        """Scrub everything a *failed* parse attempt left in the registry.

        Unlike :meth:`_restore_parse_point`, keys created by the dead
        attempt are deleted outright — nothing live references them, and a
        half-defined struct must not shadow a name a later edit reuses.
        """
        self._apply_tables(attempt_pre)
        registry = self._type_registry
        for key in list(registry.structs):
            if key not in attempt_pre.struct_keys:
                del registry.structs[key]
        for key in attempt_pre.struct_keys:
            struct = registry.structs[key]
            if struct.complete and key not in attempt_pre.structs_complete:
                self._reset_struct(struct)
        for tag in list(registry.enums):
            if tag not in attempt_pre.enum_keys:
                del registry.enums[tag]
        for tag in attempt_pre.enum_keys:
            enum = registry.enums[tag]
            if enum.complete and tag not in attempt_pre.enums_complete:
                enum.members.clear()
                enum.complete = False

    def _parse_source(self, corpus_file: CorpusFile) -> ast.TranslationUnit:
        PARSE_COUNTS[corpus_file.filename] += 1
        text = self._preprocessor.process(corpus_file.source, corpus_file.filename)
        tokens = tokenize(text, corpus_file.filename)
        parser = Parser(tokens, corpus_file.filename, self._type_registry)
        return parser.parse_translation_unit()

    def _build_record(self, pre: _TableSnapshot, corpus_file: CorpusFile,
                      unit: ast.TranslationUnit) -> _UnitRecord:
        post = self._snapshot()
        registry = self._type_registry
        printer = self._printer
        structs_completed = tuple(sorted(post.structs_complete - pre.structs_complete))
        enums_completed = tuple(sorted(post.enums_complete - pre.enums_complete))
        return _UnitRecord(
            filename=corpus_file.filename,
            corpus_file=corpus_file,
            content_key=_content_key(corpus_file),
            unit=unit,
            diagnostic=None,
            pre=pre,
            post=post,
            structs_completed=structs_completed,
            enums_completed=enums_completed,
            struct_renders={key: printer.print_type_definition(registry.structs[key])
                            for key in structs_completed},
            enum_members={tag: dict(registry.enums[tag].members)
                          for tag in enums_completed},
            decl_render="\n".join(printer.print_top_level(decl)
                                  for decl in unit.decls
                                  if not isinstance(decl, ast.FuncDef)))

    def _attempt_effect(self, attempt_pre: _TableSnapshot,
                        unit: ast.TranslationUnit) -> dict:
        """What a just-finished re-parse attempt did to the shared state.

        The pure tables (macros, typedefs, enum constants, the anonymous-tag
        counter) are reported as absolute values: the attempt started from
        ``record.pre`` exactly, so ending state equals the old ``post`` iff
        the file's contribution is unchanged.  Completion sets are reported
        as *deltas* from ``attempt_pre`` instead — the registry legitimately
        still holds types created by *later* files (their objects are never
        rolled back; downstream units hold references into them), so the
        absolute sets can never match a mid-corpus record's sequential
        snapshot.  Bare tag *interning* is deliberately not part of the
        effect: first mention of an unknown ``struct s`` just creates the
        shared registry object that any unit would create identically, the
        parser never consults completeness for it (layout is computed after
        linking), and named creation moves no counter — so it cannot change
        how a downstream unit parses.
        """
        post = self._snapshot()
        registry = self._type_registry
        printer = self._printer
        structs_completed = tuple(sorted(
            post.structs_complete - attempt_pre.structs_complete))
        enums_completed = tuple(sorted(
            post.enums_complete - attempt_pre.enums_complete))
        return {
            "macros": post.macros,
            "typedef_renders": post.typedef_renders,
            "enum_constants": post.enum_constants,
            "anon": post.anon,
            "structs_completed": structs_completed,
            "enums_completed": enums_completed,
            "struct_renders": {
                key: printer.print_type_definition(registry.structs[key])
                for key in structs_completed},
            "enum_members": {tag: dict(registry.enums[tag].members)
                             for tag in enums_completed},
            "decl_render": "\n".join(printer.print_top_level(decl)
                                     for decl in unit.decls
                                     if not isinstance(decl, ast.FuncDef)),
        }

    def _effect_matches(self, record: _UnitRecord, effect: dict) -> bool:
        """Was the edit *body-only*?  Any observable difference in how the
        file affects shared state — macros, typedefs, enum constants, type
        definitions, top-level declarations, even the anonymous-tag count —
        disqualifies the in-place re-parse and forces a full one."""
        old_post = record.post
        return (effect["macros"] == old_post.macros
                and effect["typedef_renders"] == old_post.typedef_renders
                and effect["enum_constants"] == old_post.enum_constants
                and effect["anon"] == old_post.anon
                and effect["structs_completed"] == record.structs_completed
                and effect["enums_completed"] == record.enums_completed
                and effect["struct_renders"] == record.struct_renders
                and effect["enum_members"] == record.enum_members
                and effect["decl_render"] == record.decl_render)

    def _reparse_unit(self, index: int, corpus_file: CorpusFile,
                      stats: IncrementalStats) -> bool:
        """Re-parse one edited file in place; False means "full-parse me".

        The attempt is only accepted when the new parse's effect on the
        shared tables is provably identical to the old one's — otherwise
        downstream (not re-parsed) units could have parsed differently.
        An accepted attempt therefore keeps the record's sequential
        ``pre``/``post`` snapshots verbatim: the guard just proved they
        still describe this file's boundaries exactly.
        """
        record = self._records[index]
        if record.unit is None:
            return False
        self._restore_parse_point(record)
        attempt_pre = self._snapshot()
        try:
            unit = self._parse_source(corpus_file)
            stats.parsed_units += 1
        except MiniCError as error:
            diagnostic = ParseDiagnostic(
                filename=corpus_file.filename, kind=_diagnostic_kind(error),
                message=error.message, location=error.location)
            # Keep serving the last good parse: scrub the failed attempt,
            # then re-parse the last good source to re-complete the types
            # the rollback undid.
            self._undo_attempt(attempt_pre)
            try:
                good_unit = self._parse_source(record.corpus_file)
                stats.parsed_units += 1
            except MiniCError:
                return False
            if not self._effect_matches(
                    record, self._attempt_effect(attempt_pre, good_unit)):
                return False
            self._records[index] = replace(
                record, content_key=_content_key(corpus_file),
                diagnostic=diagnostic)
            return True
        if not self._effect_matches(
                record, self._attempt_effect(attempt_pre, unit)):
            return False
        self._records[index] = replace(
            record, corpus_file=corpus_file,
            content_key=_content_key(corpus_file),
            unit=unit, diagnostic=None)
        self._last_good[corpus_file.filename] = corpus_file
        return True

    def _full_parse(self, files: tuple[CorpusFile, ...],
                    stats: IncrementalStats, reason: str) -> None:
        stats.full_reparse = True
        stats.reparse_reason = reason
        self._type_registry = TypeRegistry()
        self._preprocessor = Preprocessor(dict(self.defines))
        self._records = []
        for corpus_file in files:
            pre = self._snapshot()
            try:
                unit = self._parse_source(corpus_file)
                stats.parsed_units += 1
            except MiniCError as error:
                diagnostic = ParseDiagnostic(
                    filename=corpus_file.filename,
                    kind=_diagnostic_kind(error),
                    message=error.message, location=error.location)
                self._undo_attempt(pre)
                record = self._parse_last_good(pre, corpus_file, stats)
                if record is None:
                    record = _UnitRecord(
                        filename=corpus_file.filename,
                        corpus_file=corpus_file,
                        content_key=_content_key(corpus_file),
                        unit=None, diagnostic=diagnostic,
                        pre=pre, post=self._snapshot())
                else:
                    record.content_key = _content_key(corpus_file)
                    record.diagnostic = diagnostic
                self._records.append(record)
                continue
            self._records.append(self._build_record(pre, corpus_file, unit))
            self._last_good[corpus_file.filename] = corpus_file

    def _parse_last_good(self, pre: _TableSnapshot, corpus_file: CorpusFile,
                         stats: IncrementalStats) -> _UnitRecord | None:
        """During a full parse, substitute a broken file's last good source."""
        good = self._last_good.get(corpus_file.filename)
        if good is None or good.source == corpus_file.source:
            return None
        try:
            unit = self._parse_source(good)
            stats.parsed_units += 1
        except MiniCError:
            self._undo_attempt(pre)
            return None
        return self._build_record(pre, good, unit)

    def _reconcile_parse(self, files: tuple[CorpusFile, ...],
                         stats: IncrementalStats) -> None:
        if self._type_registry is None:
            self._full_parse(files, stats, reason="initial")
            return
        if [f.filename for f in files] != [r.filename for r in self._records]:
            self._full_parse(files, stats, reason="file-set-changed")
            return
        changed = [index for index, corpus_file in enumerate(files)
                   if _content_key(corpus_file) != self._records[index].content_key]
        stats.reused_units = len(files) - len(changed)
        if not changed:
            return
        for index in changed:
            if not self._reparse_unit(index, files[index], stats):
                self._full_parse(files, stats, reason="in-place-guard")
                return
        # Re-apply the suffix files' (unreplayed) table effects so the next
        # pass's rollbacks start from the canonical end-of-corpus state.
        self._apply_tables(self._records[-1].post)

    def _link(self) -> tuple[Program, tuple[ParseDiagnostic, ...]]:
        """Link the current units, isolating link-time errors per unit
        exactly like :func:`repro.kernel.build.parse_corpus_tolerant`."""
        program = Program(registry=self._type_registry)
        diagnostics: list[ParseDiagnostic] = []
        linked: list[ast.TranslationUnit] = []
        for record in self._records:
            if record.diagnostic is not None:
                diagnostics.append(record.diagnostic)
            if record.unit is None:
                continue
            try:
                program.add_unit(record.unit)
                linked.append(record.unit)
            except MiniCError as error:
                diagnostics.append(ParseDiagnostic(
                    filename=record.filename, kind=_diagnostic_kind(error),
                    message=error.message, location=error.location))
                if len(program.units) != len(linked):
                    program = Program(registry=self._type_registry)
                    for good in linked:
                        program.add_unit(good)
        program._corpus_preprocessor = self._preprocessor  # type: ignore[attr-defined]
        return program, tuple(diagnostics)

    # -- fingerprints ---------------------------------------------------------

    def _fingerprint(self, program: Program):
        """Per-function body hashes plus the corpus-global fingerprint.

        ``sem_hashes`` are *semantic*: the macro-expanded, pretty-printed
        body (signature and annotations included) — what summaries and
        constant facts can observe.  ``loc_hashes`` additionally fold every
        node's source position, because checker findings carry line
        numbers: an edit that only shifts a function down a line must
        invalidate its shard payloads without re-solving its summaries.

        Building a :class:`TypeEnv` per function *first* is load-bearing:
        its construction canonically absorbs declarator-trailing Deputy
        annotations into the pointer types (idempotently), so rendering
        before it would hash a pre-canonical AST on the first pass and the
        canonical one ever after.  The envs are returned for reuse — the
        points-to pass and the deputy checker consume the same entries.
        """
        printer = self._printer
        sem_hashes: dict[str, str] = {}
        loc_hashes: dict[str, str] = {}
        type_envs: dict[str, TypeEnv] = {}
        global_parts = [__version__, self.precision.name,
                        json.dumps(self.defines, sort_keys=True)]
        for unit in program.units:
            global_parts.append(f"@{unit.filename}")
            for decl in unit.decls:
                if isinstance(decl, ast.FuncDef):
                    type_envs[decl.name] = TypeEnv(program, decl)
                    sem = _sha(printer.print_funcdef(decl))
                    sem_hashes[decl.name] = sem
                    digest = hashlib.sha256(sem.encode())
                    for node in walk(decl):
                        location = getattr(node, "location", None)
                        if location is not None:
                            digest.update(
                                f"{location.line}:{location.column};".encode())
                    loc_hashes[decl.name] = digest.hexdigest()[:32]
                else:
                    global_parts.append(printer.print_top_level(decl))
        globals_fp = _sha("\x00".join(global_parts))
        return sem_hashes, loc_hashes, globals_fp, type_envs

    # -- analysis -------------------------------------------------------------

    def _solve_consts(self, program: Program, globals_fp: str,
                      sem_hashes: dict[str, str],
                      stats: IncrementalStats) -> dict:
        consts: dict = {}
        store: dict[str, tuple[tuple[str, str, str], object]] = {}
        domains = domain_fingerprint(DEFAULT_DOMAINS)
        # Values are wrapped in a 1-tuple on disk: ``None`` is a legitimate
        # artifact (branchless function), so a bare miss must be
        # distinguishable from a stored ``None``.
        disk_writes: list[tuple[str, tuple]] = []
        disk_touches: list[str] = []
        for name, func in program.functions_subset(None):
            key = (sem_hashes[name], globals_fp, domains)
            disk_key = _sha("\x00".join(key))
            cached = self._consts_store.get(name)
            if cached is not None and cached[0] == key:
                value = cached[1]
                stats.consts_reused += 1
                disk_touches.append(disk_key)
            else:
                wrapped = (self.store.get("consts", disk_key)
                           if self.store is not None else None)
                if wrapped is not None:
                    value = wrapped[0]
                    stats.consts_reused += 1
                    stats.store_hits += 1
                else:
                    value = facts_of(func)
                    stats.consts_solved += 1
                    disk_writes.append((disk_key, (value,)))
            consts[name] = value
            store[name] = (key, value)
        self._consts_store = store
        if self.store is not None:
            self.store.put_many("consts", disk_writes)
            self.store.touch("consts", disk_touches)
            stats.store_writes += len(disk_writes)
        return consts

    def _solve_summaries(self, program: Program, graph, pointsto,
                         condensation, consts: dict, scc_keys: list[str],
                         stats: IncrementalStats) -> dict:
        """Bottom-up solve reusing clean components from the SCC store.

        Mirrors :func:`repro.dataflow.interproc.solve_summaries` wave
        order exactly (dict iteration order is observable downstream);
        dirty components start at lattice bottom with their clean
        dependencies supplied, so the result is the batch least fixpoint.
        When ``jobs`` allows it the dirty components are pre-solved on the
        work-stealing executor; the loop below still merges in serial wave
        order, so parallel and serial passes are byte-identical.
        """
        ctx = build_context(program, graph, consts=consts)
        # Components missing from memory may still be on disk: prefetch
        # them so they are neither scheduled on the pool nor re-solved.
        from_disk: dict[str, dict] = {}
        if self.store is not None:
            for index in range(len(condensation.sccs)):
                key = scc_keys[index]
                if key in self._scc_store or key in from_disk:
                    continue
                wrapped = self.store.get("scc", key)
                if wrapped is not None:
                    from_disk[key] = wrapped[0]
                    stats.store_hits += 1
        dirty_indices = {index for index in range(len(condensation.sccs))
                         if scc_keys[index] not in self._scc_store
                         and scc_keys[index] not in from_disk}
        presolved = self._presolve_dirty(program, graph, pointsto,
                                         condensation, consts, scc_keys,
                                         dirty_indices, stats)
        solved: dict = {}
        store: dict[str, dict] = {}
        dirty: list[str] = []
        disk_writes: dict[str, dict] = {}
        disk_touches: list[str] = []
        for wave in condensation.waves:
            for index in wave:
                scc = condensation.sccs[index]
                key = scc_keys[index]
                component = self._scc_store.get(key)
                if component is not None:
                    stats.sccs_reused += 1
                    disk_touches.append(key)
                elif key in from_disk:
                    component = from_disk[key]
                    stats.sccs_reused += 1
                else:
                    if presolved is not None and index in presolved:
                        component = presolved[index]
                    else:
                        component = solve_scc(scc, ctx, graph, solved)
                    dirty.extend(scc)
                    disk_writes[key] = component
                store[key] = component
                solved.update(component)
        stats.dirty_sccs = len(condensation.sccs) - stats.sccs_reused
        stats.dirty_functions = sorted(dirty)
        self._scc_store = store
        if self.store is not None:
            self.store.put_many(
                "scc", [(key, (component,))
                        for key, component in disk_writes.items()])
            self.store.touch("scc", disk_touches)
            stats.store_writes += len(disk_writes)
        return solved

    def _presolve_dirty(self, program, graph, pointsto, condensation,
                        consts: dict, scc_keys: list[str],
                        dirty: set[int],
                        stats: IncrementalStats) -> dict | None:
        """Solve the dirty components on a work-stealing pool, or ``None``.

        Only the *dirty* subgraph is scheduled: each dirty SCC depends on
        its dirty callee components (clean callee summaries come from the
        store and ship with the task payload), so the pool drains exactly
        the invalidated slice of the condensation with no barriers.  The
        pool forks fresh per pass — it must inherit *this* pass's parse.
        """
        jobs = resolve_jobs(self.jobs)
        if jobs < 2 or not fork_available() or len(dirty) < 2:
            return None
        effective = min(jobs, max(2, usable_cpus()))
        clean: dict = {}
        for index, scc in enumerate(condensation.sccs):
            if index not in dirty:
                clean.update(self._scc_store[scc_keys[index]])
        wave_of = {index: depth
                   for depth, wave in enumerate(condensation.waves)
                   for index in wave}
        tasks = []
        for index in sorted(dirty):
            deps = tuple(f"scc:{callee}"
                         for callee in condensation.scc_callees.get(index, ())
                         if callee in dirty)
            tasks.append(Task(
                id=f"scc:{index}", kind="scc", deps=deps,
                payload_fn=_dirty_scc_payload(condensation.sccs[index], graph,
                                              condensation, consts, clean,
                                              dirty),
                wave=wave_of.get(index, 0)))
        handler = _make_steal_handler(program, graph, pointsto,
                                      self.precision, self.registry)
        with WorkStealingExecutor(effective, handler) as executor:
            results = executor.run(tasks)
        stats.parallel_jobs = effective
        return {index: results[f"scc:{index}"] for index in sorted(dirty)}

    def _shard_key(self, analysis, name: str, filename: str,
                   functions: list[str], loc_hashes: dict[str, str],
                   scc_key_of: dict[str, str], globals_fp: str,
                   salt: str) -> str:
        parts = [name, filename, globals_fp, salt]
        for function in functions:
            parts.append(f"{function}={loc_hashes.get(function, '')}")
            if analysis.interprocedural:
                parts.append(scc_key_of.get(function, ""))
        return _sha("\x00".join(parts))

    def _run_shards(self, artifacts: SharedArtifacts, loc_hashes: dict[str, str],
                    scc_keys: list[str], globals_fp: str,
                    report: EngineReport, stats: IncrementalStats) -> None:
        condensation = artifacts.condensation
        scc_key_of: dict[str, str] = {}
        for index, scc in enumerate(condensation.sccs):
            for function in scc:
                scc_key_of[function] = scc_keys[index]
        root_parts = [globals_fp, callgraph_fingerprint(artifacts.graph)]
        root_parts.extend(f"{name}={loc_hashes[name]}"
                          for name in sorted(loc_hashes))
        root_fp = _sha("\x00".join(root_parts))
        store: dict[str, dict] = {}
        disk_writes: list[tuple[str, tuple]] = []
        disk_touches: list[str] = []
        for name in ANALYSIS_ORDER:
            if name not in self.registry:
                continue
            analysis = self.registry[name]
            salt = analysis.shard_salt(artifacts)
            payloads = []
            if analysis.per_unit:
                keys = [
                    self._shard_key(analysis, name, filename, functions,
                                    loc_hashes, scc_key_of, globals_fp, salt)
                    for filename, functions in artifacts.unit_functions.items()
                    if functions]
                tasks = [functions for functions
                         in artifacts.unit_functions.values() if functions]
            else:
                keys = [_sha("\x00".join([name, root_fp, salt]))]
                tasks = [None]
            for key, functions in zip(keys, tasks):
                payload = self._shard_store.get(key)
                if payload is None:
                    wrapped = (self.store.get("shard", key)
                               if self.store is not None else None)
                    if wrapped is not None:
                        payload = wrapped[0]
                        stats.shards_reused += 1
                        stats.store_hits += 1
                    else:
                        payload = analysis.run_shard(artifacts, functions)
                        stats.shards_rerun += 1
                        disk_writes.append((key, (payload,)))
                else:
                    stats.shards_reused += 1
                    disk_touches.append(key)
                store[key] = payload
                payloads.append(payload)
            report.analyses[name] = analysis.merge(artifacts, payloads)
        self._shard_store = store
        if self.store is not None:
            self.store.put_many("shard", disk_writes)
            self.store.touch("shard", disk_touches)
            stats.store_writes += len(disk_writes)

    def analyze(self, files: tuple[CorpusFile, ...] | None = None) -> EngineReport:
        """Run one incremental pass; returns the merged engine report."""
        start = time.perf_counter()
        self.revision += 1
        stats = IncrementalStats(revision=self.revision)
        files = tuple(files) if files is not None else self.files
        self._reconcile_parse(files, stats)
        self.files = files
        program, diagnostics = self._link()
        stats.parse_errors = len(diagnostics)

        sem_hashes, loc_hashes, globals_fp, type_envs = self._fingerprint(program)
        graph, indirect_calls = build_direct_callgraph(program)
        pointsto_pass = FunctionPointerAnalysis(program, self.precision)
        pointsto_pass.collect()
        pointsto = pointsto_pass.resolve(graph, indirect_calls, envs=type_envs)

        consts = self._solve_consts(program, globals_fp, sem_hashes, stats)
        condensation = condense_callgraph(graph)
        scc_keys = scc_fingerprints(condensation, graph, sem_hashes, globals_fp)
        summaries = self._solve_summaries(program, graph, pointsto,
                                          condensation, consts, scc_keys,
                                          stats)

        artifacts = SharedArtifacts(
            program=program,
            precision=self.precision,
            graph=graph,
            pointsto=pointsto,
            consts=consts,
            condensation=condensation,
            summaries=summaries,
            blocking=derive_blocking(program, graph, summaries),
            irq_handlers=find_irq_handlers(program),
            error_returning=find_error_returning_functions(program, summaries),
            annotations={name: program.function_annotations(name)
                         for name in program.all_function_names()},
            type_envs=type_envs,
            unit_functions=unit_function_map(program),
        )
        self.artifacts = artifacts

        report = EngineReport(
            corpus_files=[f.filename for f in files],
            precision=self.precision.name.lower(),
            jobs=1, parallel=False)
        self._run_shards(artifacts, loc_hashes, scc_keys, globals_fp,
                         report, stats)
        if diagnostics:
            report.analyses["diagnostics"] = diagnostics_report(diagnostics)

        solved_consts = [fc for fc in consts.values() if fc is not None]
        interval_edges = sum(len(fc.interval_pruned) for fc in solved_consts)
        octagon_edges = sum(len(fc.octagon_pruned) for fc in solved_consts)
        report.summary_stats = {
            "functions": len(summaries),
            "sccs": len(condensation.sccs),
            "waves": len(condensation.waves),
            "largest_wave": max((len(w) for w in condensation.waves), default=0),
            "recursive_functions": len(condensation.recursive_functions()),
            "cache_hit": stats.dirty_sccs == 0,
            "consts_functions": len(solved_consts),
            "consts_pruned_functions": sum(
                1 for fc in solved_consts
                if len(fc.infeasible) > len(fc.interval_pruned)
                + len(fc.octagon_pruned)),
            "consts_infeasible_edges": (sum(len(fc.infeasible)
                                            for fc in solved_consts)
                                        - interval_edges - octagon_edges),
            "consts_cache_hit": stats.consts_solved == 0,
            "intervals_pruned_functions": sum(
                1 for fc in solved_consts if fc.interval_pruned),
            "intervals_infeasible_edges": interval_edges,
            "octagons_pruned_functions": sum(
                1 for fc in solved_consts if fc.octagon_pruned),
            "octagons_infeasible_edges": octagon_edges,
        }
        report.cache_stats = {
            "hits": stats.consts_reused + stats.sccs_reused + stats.shards_reused,
            "misses": stats.consts_solved + stats.dirty_sccs + stats.shards_rerun,
            "disk_hits": stats.store_hits,
            "evictions": 0,
            "const_solve_ms": 0.0,
        }
        stats.elapsed_seconds = time.perf_counter() - start
        report.elapsed_seconds = stats.elapsed_seconds
        self.last_stats = stats
        return report
