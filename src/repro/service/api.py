"""The analysis service's HTTP JSON API (stdlib only).

Endpoints (all JSON, UTF-8, sorted keys):

* ``GET /health`` — liveness; 503 with ``{"status": "starting"}`` until the
  first analysis pass has published a snapshot, 200 afterwards.
* ``GET /findings`` — every finding of the current snapshot, batch-identical
  with ``repro-engine run --json``; ``?checker=`` and ``?function=`` filter.
  ``?since=<revision>`` switches to delta form: ``added``/``removed``
  relative to that past revision (``delta_base``), falling back to the full
  list with ``"delta_base": null`` when the revision has aged out of the
  service's history window.
* ``GET /findings/by-file/<tu>`` — the current findings of one translation
  unit (``<tu>`` is the corpus filename and may contain slashes).
* ``GET /summaries/<function>`` — one function's interprocedural summary
  (the CLI callgraph payload) plus its SCC membership; 404 when unknown.
* ``GET /stats`` — service counters plus the last pass's incremental stats.
* ``POST /analyze`` — force a reconcile pass now; returns its stats.
  Concurrent requests coalesce: while a pass runs, one follow-up pass is
  queued and later arrivals ride on it (``"coalesced": true``) instead of
  stacking up redundant full passes.

Handlers read one immutable snapshot reference and serve entirely from it,
so requests never block behind a running re-analysis (except ``/analyze``,
which *is* one).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..engine.analyses import summary_payload


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests against the owning service's current snapshot."""

    server_version = "repro-engine-serve/1"
    #: Set by make_server on the subclass.
    service = None

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.service, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        if route == "/health":
            self._health()
        elif route.startswith("/findings/by-file/"):
            self._findings_by_file(route[len("/findings/by-file/"):])
        elif route == "/findings":
            self._findings(query)
        elif route.startswith("/summaries/"):
            self._summary(route[len("/summaries/"):])
        elif route == "/stats":
            self._stats()
        else:
            self._reply(404, {"error": f"unknown endpoint {route!r}",
                              "endpoints": ["/health", "/findings",
                                            "/findings/by-file/<tu>",
                                            "/summaries/<function>",
                                            "/stats", "POST /analyze"]})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        route = urlparse(self.path).path.rstrip("/")
        if route == "/analyze":
            snapshot, coalesced = self.service.request_reconcile()
            self._reply(200, {"status": "ok",
                              "revision": snapshot.revision,
                              "coalesced": coalesced,
                              "finding_count": snapshot.report.finding_count,
                              "stats": snapshot.stats.to_dict()})
        else:
            self._reply(404, {"error": f"unknown endpoint {route!r}"})

    # -- endpoint bodies ----------------------------------------------------

    def _health(self) -> None:
        snapshot = self.service.snapshot
        if snapshot is None:
            self._reply(503, {"status": "starting"})
            return
        self._reply(200, {"status": "ok",
                          "revision": snapshot.revision,
                          "passes": self.service.passes,
                          "uptime_seconds": round(self.service.uptime(), 3)})

    def _findings(self, query: dict) -> None:
        snapshot = self.service.snapshot
        if snapshot is None:
            self._reply(503, {"status": "starting"})
            return
        findings = snapshot.report.all_findings()
        checker = query.get("checker", [None])[0]
        function = query.get("function", [None])[0]
        if checker is not None:
            findings = [f for f in findings if f["analysis"] == checker]
        if function is not None:
            findings = [f for f in findings if f["function"] == function]
        since = query.get("since", [None])[0]
        if since is not None:
            self._findings_delta(snapshot, findings, since, checker, function)
            return
        self._reply(200, {"revision": snapshot.revision,
                          "count": len(findings),
                          "findings": findings})

    def _findings_delta(self, snapshot, findings: list, since: str,
                        checker, function) -> None:
        """Delta form of ``/findings``: what changed since a past revision.

        An unparsable or aged-out ``since`` degrades to the full list with
        ``delta_base: null`` — clients resynchronize from it and resume
        polling with the new revision.
        """
        try:
            base_revision = int(since)
        except ValueError:
            base_revision = None
        base = (self.service.findings_at(base_revision)
                if base_revision is not None else None)
        if base is None:
            self._reply(200, {"revision": snapshot.revision,
                              "delta_base": None,
                              "count": len(findings),
                              "findings": findings})
            return
        if checker is not None:
            base = [f for f in base if f["analysis"] == checker]
        if function is not None:
            base = [f for f in base if f["function"] == function]

        def key(finding: dict) -> str:
            return json.dumps(finding, sort_keys=True)

        base_keys = {key(f) for f in base}
        current_keys = {key(f) for f in findings}
        added = [f for f in findings if key(f) not in base_keys]
        removed = [f for f in base if key(f) not in current_keys]
        self._reply(200, {"revision": snapshot.revision,
                          "delta_base": base_revision,
                          "count": len(findings),
                          "added": added,
                          "removed": removed})

    def _findings_by_file(self, filename: str) -> None:
        snapshot = self.service.snapshot
        if snapshot is None:
            self._reply(503, {"status": "starting"})
            return
        findings = [f for f in snapshot.report.all_findings()
                    if f["file"] == filename]
        self._reply(200, {"revision": snapshot.revision,
                          "file": filename,
                          "count": len(findings),
                          "findings": findings})

    def _summary(self, name: str) -> None:
        snapshot = self.service.snapshot
        if snapshot is None:
            self._reply(503, {"status": "starting"})
            return
        artifacts = snapshot.artifacts
        payload = summary_payload(artifacts, name)
        if not payload:
            self._reply(404, {"error": f"unknown function {name!r}"})
            return
        condensation = artifacts.condensation
        index = condensation.scc_of.get(name)
        if index is not None:
            scc = condensation.sccs[index]
            payload["scc"] = {"members": list(scc),
                              "recursive": condensation.is_recursive(name)}
        payload["function"] = name
        payload["revision"] = snapshot.revision
        self._reply(200, payload)

    def _stats(self) -> None:
        self._reply(200, self.service.stats_payload())


def make_server(service, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (port 0 picks a free one)."""
    handler = type("BoundServiceRequestHandler", (ServiceRequestHandler,),
                   {"service": service})
    return ThreadingHTTPServer((host, port), handler)
