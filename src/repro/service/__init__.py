"""Always-on analysis service: incremental re-analysis behind an HTTP API.

Layered as:

* :mod:`repro.service.incremental` — the :class:`IncrementalAnalyzer`
  core: per-TU parse reuse, per-function constant facts, per-SCC Merkle
  summary keys, per-(analysis, unit) shard payload caching; byte-identical
  with batch engine reports by construction;
* :mod:`repro.service.watcher` — corpus export/load on disk plus the
  polling, debouncing :class:`CorpusWatcher`;
* :mod:`repro.service.api` — the stdlib HTTP JSON endpoints;
* :mod:`repro.service.daemon` — :class:`AnalysisService`, which ties the
  three together and publishes immutable snapshots.
"""

from .daemon import AnalysisService, Snapshot, serve
from .incremental import IncrementalAnalyzer, IncrementalStats
from .watcher import CorpusWatcher, export_corpus, load_corpus_dir

__all__ = [
    "AnalysisService",
    "CorpusWatcher",
    "IncrementalAnalyzer",
    "IncrementalStats",
    "Snapshot",
    "export_corpus",
    "load_corpus_dir",
    "serve",
]
