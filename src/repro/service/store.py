"""Persistent warm-start store for analysis artifacts.

The incremental analyzer already computes content-addressed keys for every
artifact it caches in memory — per-function consts facts keyed by
``(semantic hash, globals fingerprint, domain fingerprint)``, per-SCC
summaries keyed by a Merkle fingerprint over the SCC's member hashes and
its callees' fingerprints, and per-(analysis, TU) finding shards keyed the
same way.  This module spills those maps to a SQLite file so a restarted
``repro-engine serve`` (or a batch run pointed at the same store) re-solves
~0 SCCs on an unchanged corpus instead of paying a full cold pass.

Because the keys are fingerprints of everything the artifact depends on
(including the analyzer version via the globals fingerprint), invalidation
is free: a changed input simply produces a different key, and the stale
row ages out through the LRU sweep.  A version mismatch purges the file
outright, keeping it from accumulating unreachable rows across upgrades.

Values are pickled Python objects; a row that fails to unpickle is treated
as a miss and deleted.  All access is serialized behind one lock — the
analyzer's passes are already serialized behind the service reconcile
lock, so contention is not a concern.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Optional

from .. import __version__

_DB_NAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    space TEXT NOT NULL,
    key TEXT NOT NULL,
    value BLOB NOT NULL,
    size INTEGER NOT NULL,
    atime REAL NOT NULL,
    PRIMARY KEY (space, key)
);
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class PersistentStore:
    """A content-keyed artifact store on disk, LRU-bounded by size.

    ``spaces`` partition the keyspace by artifact kind ("consts", "scc",
    "shard"); keys within a space are the analyzer's own fingerprints, so
    equality of key implies equality of artifact.
    """

    def __init__(self, directory: str | os.PathLike,
                 max_mb: Optional[float] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _DB_NAME
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb else None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        with self._lock:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name = 'version'").fetchone()
            if row is not None and row[0] != __version__:
                self._conn.execute("DELETE FROM entries")
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (name, value) VALUES (?, ?)",
                ("version", __version__))
            self._conn.commit()

    # -- core operations ----------------------------------------------------

    def get(self, space: str, key: str) -> Any:
        """The stored value, or ``None`` on miss (touches the LRU clock)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM entries WHERE space = ? AND key = ?",
                (space, key)).fetchone()
            if row is None:
                self.misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                self._conn.execute(
                    "DELETE FROM entries WHERE space = ? AND key = ?",
                    (space, key))
                self._conn.commit()
                self.misses += 1
                return None
            self._conn.execute(
                "UPDATE entries SET atime = ? WHERE space = ? AND key = ?",
                (time.time(), space, key))
            self._conn.commit()
            self.hits += 1
            return value

    def put(self, space: str, key: str, value: Any) -> None:
        self.put_many(space, [(key, value)])

    def put_many(self, space: str, items) -> None:
        """Write-through a batch of ``(key, value)`` pairs in one commit."""
        rows = []
        now = time.time()
        for key, value in items:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            rows.append((space, key, blob, len(blob), now))
        if not rows:
            return
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO entries (space, key, value, size, atime)"
                " VALUES (?, ?, ?, ?, ?)", rows)
            self.writes += len(rows)
            self._evict_locked()
            self._conn.commit()

    def touch(self, space: str, keys) -> None:
        """Refresh the LRU clock of entries served from the in-memory tier."""
        now = time.time()
        rows = [(now, space, key) for key in keys]
        if not rows:
            return
        with self._lock:
            self._conn.executemany(
                "UPDATE entries SET atime = ? WHERE space = ? AND key = ?",
                rows)
            self._conn.commit()

    def contains(self, space: str, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM entries WHERE space = ? AND key = ?",
                (space, key)).fetchone()
            return row is not None

    # -- bookkeeping --------------------------------------------------------

    def _evict_locked(self) -> None:
        if self.max_bytes is None:
            return
        total = self._conn.execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()[0]
        while total > self.max_bytes:
            victim = self._conn.execute(
                "SELECT space, key, size FROM entries"
                " ORDER BY atime ASC LIMIT 1").fetchone()
            if victim is None:
                break
            self._conn.execute(
                "DELETE FROM entries WHERE space = ? AND key = ?",
                (victim[0], victim[1]))
            total -= victim[2]
            self.evictions += 1

    def entry_count(self, space: Optional[str] = None) -> int:
        with self._lock:
            if space is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM entries WHERE space = ?",
                    (space,)).fetchone()
            return int(row[0])

    def total_bytes(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()
            return int(row[0])

    def stats(self) -> dict:
        return {"path": str(self.path), "entries": self.entry_count(),
                "bytes": self.total_bytes(), "hits": self.hits,
                "misses": self.misses, "writes": self.writes,
                "evictions": self.evictions,
                "max_mb": (self.max_bytes / (1024 * 1024)
                           if self.max_bytes else None)}

    def close(self) -> None:
        with self._lock:
            self._conn.close()
