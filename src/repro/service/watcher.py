"""Corpus-on-disk support for the analysis service.

The repro's corpus is embedded in :mod:`repro.kernel.corpus` as Python
literals; a long-running service needs sources it can *watch*.  This module
round-trips the corpus through a directory tree:

* :func:`export_corpus` writes each translation unit to its corpus path
  (``lib/kernel_lib.c`` and friends) plus a ``MANIFEST.json`` recording the
  link order — corpus files share one macro/type namespace, so order is
  semantic, not cosmetic;
* :func:`load_corpus_dir` reads the tree back into :class:`CorpusFile`
  tuples, honoring the manifest when present and falling back to sorted
  ``*.c`` discovery otherwise;
* :class:`CorpusWatcher` polls the tree for changes (mtime/size based, with
  a debounce window so an editor's burst of writes coalesces into one
  re-analysis) and invokes a callback off its own daemon thread.

Polling is deliberate: it needs no platform notification API, and the
incremental analyzer makes the follow-up pass cheap enough that a sub-second
poll interval costs almost nothing when nothing changed.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, Iterable

from ..kernel.corpus import KERNEL_FILES, CorpusFile

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_SCHEMA = "repro-corpus-manifest/1"


def export_corpus(directory: str | Path,
                  files: Iterable[CorpusFile] = KERNEL_FILES) -> Path:
    """Write ``files`` under ``directory`` and return the manifest path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {"schema": MANIFEST_SCHEMA, "files": []}
    for corpus_file in files:
        target = root / corpus_file.filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(corpus_file.source)
        manifest["files"].append({"filename": corpus_file.filename,
                                  "path": corpus_file.filename,
                                  "kernel": corpus_file.kernel})
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def load_corpus_dir(directory: str | Path) -> tuple[CorpusFile, ...]:
    """Read a corpus tree back into link order.

    With a manifest, files load in its order under their recorded corpus
    filenames.  Without one, every ``*.c`` below the directory is taken in
    sorted relative-path order — deterministic, though possibly not the
    dependency order the embedded corpus uses.
    """
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    files: list[CorpusFile] = []
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest.get("files", []):
            path = root / entry.get("path", entry["filename"])
            files.append(CorpusFile(
                filename=entry["filename"],
                source=path.read_text(),
                kernel=bool(entry.get("kernel", True))))
        return tuple(files)
    for path in sorted(root.rglob("*.c")):
        files.append(CorpusFile(filename=path.relative_to(root).as_posix(),
                                source=path.read_text()))
    return tuple(files)


class CorpusWatcher:
    """Poll a corpus directory and fire ``on_change`` after edits settle.

    ``on_change`` runs on the watcher thread once no further modification
    has been observed for ``debounce_seconds`` — so saving five files in
    two seconds triggers one re-analysis, not five.
    """

    def __init__(self, directory: str | Path,
                 on_change: Callable[[], None],
                 poll_seconds: float = 0.5,
                 debounce_seconds: float = 0.3) -> None:
        self.directory = Path(directory)
        self.on_change = on_change
        self.poll_seconds = poll_seconds
        self.debounce_seconds = debounce_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_state = self._scan()

    def _scan(self) -> dict[str, tuple[int, int]]:
        state: dict[str, tuple[int, int]] = {}
        paths = list(self.directory.rglob("*.c"))
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists():
            paths.append(manifest)
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            state[path.as_posix()] = (stat.st_mtime_ns, stat.st_size)
        return state

    def poll_once(self) -> bool:
        """One poll step; True if a (settled) change fired the callback."""
        state = self._scan()
        if state == self._last_state:
            return False
        # Debounce: wait for the tree to hold still before reporting.
        while not self._stop.is_set():
            previous = state
            if self._stop.wait(self.debounce_seconds):
                return False
            state = self._scan()
            if state == previous:
                break
        self._last_state = state
        self.on_change()
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - a watcher must outlive bad polls
                continue

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="repro-corpus-watcher",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
