"""The hbench-like micro-benchmark suite."""

from .runner import BenchmarkRow, SuiteResult, fresh_kernel, run_benchmark_pair, run_suite
from .suite import (
    Benchmark,
    PAPER_TABLE1,
    TABLE1_ORDER,
    all_benchmarks,
    benchmark,
    get_benchmark,
)

__all__ = [
    "BenchmarkRow", "SuiteResult", "fresh_kernel", "run_benchmark_pair",
    "run_suite",
    "Benchmark", "PAPER_TABLE1", "TABLE1_ORDER", "all_benchmarks",
    "benchmark", "get_benchmark",
]
