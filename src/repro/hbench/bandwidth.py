"""Bandwidth micro-benchmarks (the ``bw_*`` rows of Table 1)."""

from __future__ import annotations

from ..kernel.boot import KernelInstance
from .suite import benchmark

#: Iteration counts are small because the abstract machine is deterministic:
#: one pass produces the same relative numbers as a thousand.
BULK_ITERS = 6
IO_ITERS = 8
#: Stream chunk for pipe/TCP benchmarks (bounded by the pipe ring buffer).
CHUNK = 1000
#: Chunk for file-backed benchmarks (bounded by the ramfs file size).
FILE_CHUNK = 3000


def _open_scratch(kernel: KernelInstance, name: str) -> int:
    addr = kernel.interp.intern_string(name)
    kernel.call("vfs_create", addr, 1)
    return int(kernel.call("vfs_open", addr).value)


def _scratch_buffer(kernel: KernelInstance, size: int = 1024) -> int:
    return kernel.interp.intern_string("#" * size)


def _file_buffer(kernel: KernelInstance) -> int:
    return _scratch_buffer(kernel, FILE_CHUNK + 8)


@benchmark("bw_bzero", "bw", "zero a user buffer repeatedly")
def bw_bzero(kernel: KernelInstance) -> int:
    return int(kernel.call("user_bw_bzero", BULK_ITERS).value)


@benchmark("bw_mem_cp", "bw", "copy between user buffers")
def bw_mem_cp(kernel: KernelInstance) -> int:
    return int(kernel.call("user_bw_mem_cp", BULK_ITERS).value)


@benchmark("bw_mem_rd", "bw", "strided reads of a user buffer")
def bw_mem_rd(kernel: KernelInstance) -> int:
    return int(kernel.call("user_bw_mem_rd", BULK_ITERS).value)


@benchmark("bw_mem_wr", "bw", "strided writes of a user buffer")
def bw_mem_wr(kernel: KernelInstance) -> int:
    return int(kernel.call("user_bw_mem_wr", BULK_ITERS).value)


@benchmark("bw_file_rd", "bw", "read a cached ramfs file")
def bw_file_rd(kernel: KernelInstance) -> int:
    fd = _open_scratch(kernel, "bw_file_rd.dat")
    buf = _file_buffer(kernel)
    kernel.call("vfs_write", fd, buf, FILE_CHUNK)
    total = 0
    for _ in range(IO_ITERS):
        kernel.call("vfs_seek", fd, 0)
        total += int(kernel.call("vfs_read", fd, buf, FILE_CHUNK).value)
    kernel.call("vfs_close", fd)
    return total


@benchmark("bw_mmap_rd", "bw", "read a file through a mapped region")
def bw_mmap_rd(kernel: KernelInstance) -> int:
    # mmap in the mini-kernel is modelled as mapping an area then faulting the
    # file's pages in with reads through the VFS.
    fd = _open_scratch(kernel, "bw_mmap_rd.dat")
    buf = _file_buffer(kernel)
    kernel.call("vfs_write", fd, buf, FILE_CHUNK)
    total = 0
    for index in range(IO_ITERS):
        mm = _task_mm(kernel)
        if mm:
            kernel.call("mm_add_area", mm, 0x1000 * index, 0x1000 * (index + 1), 3)
        kernel.call("vfs_seek", fd, 0)
        total += int(kernel.call("vfs_read", fd, buf, FILE_CHUNK).value)
    kernel.call("vfs_close", fd)
    return total


def _task_mm(kernel: KernelInstance) -> int:
    task = int(kernel.call("get_current").value)
    if task == 0:
        return 0
    mm = kernel.interp.memory.load(task + _mm_offset(kernel), 4)
    if mm == 0:
        mm = int(kernel.call("mm_alloc").value)
        kernel.interp.memory.store(task + _mm_offset(kernel), 4, mm)
    return mm


def _mm_offset(kernel: KernelInstance) -> int:
    struct = kernel.build.program.registry.struct_tag("task_struct")
    return struct.field_named("mm").offset


@benchmark("bw_pipe", "bw", "stream data through a pipe")
def bw_pipe(kernel: KernelInstance) -> int:
    pipe = int(kernel.call("pipe_create").value)
    buf = _scratch_buffer(kernel)
    total = 0
    for _ in range(IO_ITERS):
        total += int(kernel.call("pipe_write", pipe, buf, CHUNK).value)
        total += int(kernel.call("pipe_read", pipe, buf, CHUNK).value)
    kernel.call("pipe_destroy", pipe)
    return total


@benchmark("bw_tcp", "bw", "stream data over a loopback TCP connection")
def bw_tcp(kernel: KernelInstance) -> int:
    a = int(kernel.call("sock_create", 6).value)
    b = int(kernel.call("sock_create", 6).value)
    kernel.call("sock_bind", a, 4001)
    kernel.call("sock_bind", b, 4002)
    kernel.call("tcp_connect", a, 4002)
    total = int(kernel.call("user_tcp_stream", a, b, CHUNK, IO_ITERS).value)
    kernel.call("sock_close", a)
    kernel.call("sock_close", b)
    return total
