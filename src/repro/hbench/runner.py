"""Run the hbench suite against two kernel builds and compute Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable, Optional

from ..deputy import DeputyOptions
from ..kernel.boot import KernelInstance, boot_kernel
from ..kernel.build import BuildConfig, build_kernel
from ..machine.program import Program
from .suite import Benchmark, PAPER_TABLE1, all_benchmarks

#: Supplies a pre-parsed (mutation-safe) kernel program for a build, or None
#: to parse from scratch — the analysis engine's cached parse plugs in here.
ProgramFactory = Optional[Callable[[BuildConfig], Optional[Program]]]


@dataclass
class BenchmarkRow:
    """One row of the relative-performance table."""

    name: str
    kind: str
    baseline_cycles: int
    instrumented_cycles: int
    paper_value: float | None = None

    @property
    def relative(self) -> float:
        """Relative performance with the paper's conventions.

        Bandwidth rows report relative throughput (1/overhead), latency rows
        report relative latency (overhead), so "bigger is worse" exactly when
        it is in Table 1.
        """
        if self.baseline_cycles == 0 or self.instrumented_cycles == 0:
            return 1.0
        overhead = self.instrumented_cycles / self.baseline_cycles
        if self.kind == "bw":
            return 1.0 / overhead
        return overhead

    @property
    def overhead_fraction(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return self.instrumented_cycles / self.baseline_cycles - 1.0


@dataclass
class SuiteResult:
    """The whole table."""

    label: str
    rows: list[BenchmarkRow] = field(default_factory=list)

    def row(self, name: str) -> BenchmarkRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def bandwidth_rows(self) -> list[BenchmarkRow]:
        return [r for r in self.rows if r.kind == "bw"]

    def latency_rows(self) -> list[BenchmarkRow]:
        return [r for r in self.rows if r.kind == "lat"]

    def format_table(self) -> str:
        lines = [f"Relative performance of the {self.label} kernel",
                 f"{'Benchmark':<14}{'Rel. Perf.':>12}{'Paper':>10}"]
        for row in self.rows:
            paper = f"{row.paper_value:.2f}" if row.paper_value is not None else "-"
            lines.append(f"{row.name:<14}{row.relative:>12.2f}{paper:>10}")
        return "\n".join(lines)


def fresh_kernel(config: BuildConfig, max_steps: int = 80_000_000,
                 program_factory: ProgramFactory = None) -> KernelInstance:
    """Boot a fresh kernel for one benchmark run."""
    base_program = program_factory(config) if program_factory is not None else None
    build = build_kernel(config, base_program=base_program)
    return boot_kernel(build=build, max_steps=max_steps,
                       reset_cycles_after_boot=True)


def run_benchmark_pair(bench: Benchmark, baseline_config: BuildConfig,
                       instrumented_config: BuildConfig,
                       program_factory: ProgramFactory = None) -> BenchmarkRow:
    """Measure one benchmark on freshly booted baseline/instrumented kernels."""
    baseline_kernel = fresh_kernel(baseline_config, program_factory=program_factory)
    instrumented_kernel = fresh_kernel(instrumented_config,
                                       program_factory=program_factory)
    baseline = bench.measure(baseline_kernel)
    instrumented = bench.measure(instrumented_kernel)
    return BenchmarkRow(name=bench.name, kind=bench.kind,
                        baseline_cycles=baseline,
                        instrumented_cycles=instrumented,
                        paper_value=PAPER_TABLE1.get(bench.name))


def run_suite(instrumented_config: BuildConfig | None = None,
              baseline_config: BuildConfig | None = None,
              benchmarks: list[Benchmark] | None = None,
              label: str | None = None,
              shared_kernels: bool = True,
              program_factory: ProgramFactory = None) -> SuiteResult:
    """Run the whole suite (defaults to baseline vs. deputized kernel).

    With ``shared_kernels`` (the default, and how hbench itself runs) the two
    kernels are booted once and every benchmark runs on them in sequence;
    otherwise each benchmark gets freshly booted kernels.
    """
    baseline_config = baseline_config or BuildConfig()
    instrumented_config = instrumented_config or BuildConfig(
        deputy=True, deputy_options=DeputyOptions())
    result = SuiteResult(label=label or instrumented_config.label)
    selected = benchmarks or all_benchmarks()
    if not shared_kernels:
        for bench in selected:
            result.rows.append(run_benchmark_pair(bench, baseline_config,
                                                  instrumented_config,
                                                  program_factory=program_factory))
        return result
    baseline_kernel = fresh_kernel(baseline_config, program_factory=program_factory)
    instrumented_kernel = fresh_kernel(instrumented_config,
                                       program_factory=program_factory)
    for bench in selected:
        baseline = bench.measure(baseline_kernel)
        instrumented = bench.measure(instrumented_kernel)
        result.rows.append(BenchmarkRow(
            name=bench.name, kind=bench.kind, baseline_cycles=baseline,
            instrumented_cycles=instrumented,
            paper_value=PAPER_TABLE1.get(bench.name)))
    return result
