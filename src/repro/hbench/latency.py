"""Latency micro-benchmarks (the ``lat_*`` rows of Table 1)."""

from __future__ import annotations

from ..kernel.boot import KernelInstance
from .suite import benchmark

ITERS = 10
SMALL = 16


def _scratch(kernel: KernelInstance, size: int = 64) -> int:
    return kernel.interp.intern_string("." * size)


@benchmark("lat_syscall", "lat", "null system call round trip")
def lat_syscall(kernel: KernelInstance) -> int:
    return int(kernel.call("user_lat_syscall", ITERS * 2).value)


@benchmark("lat_proc", "lat", "process creation (fork + exit)")
def lat_proc(kernel: KernelInstance) -> int:
    return int(kernel.call("user_fork_exit", 3).value)


@benchmark("lat_ctx", "lat", "context switch between two processes")
def lat_ctx(kernel: KernelInstance) -> int:
    kernel.call("do_fork", 0)
    return int(kernel.call("user_context_switch", ITERS).value)


@benchmark("lat_ctx2", "lat", "context switch with a larger working set")
def lat_ctx2(kernel: KernelInstance) -> int:
    for _ in range(3):
        kernel.call("do_fork", 0)
    mm = kernel.call("get_current").value
    return int(kernel.call("user_context_switch", ITERS * 2).value)


@benchmark("lat_pipe", "lat", "pipe ping-pong latency")
def lat_pipe(kernel: KernelInstance) -> int:
    pipe = int(kernel.call("pipe_create").value)
    result = int(kernel.call("user_pipe_pingpong", pipe, SMALL, ITERS).value)
    kernel.call("pipe_destroy", pipe)
    return result


@benchmark("lat_fs", "lat", "file create / write / delete latency")
def lat_fs(kernel: KernelInstance) -> int:
    buf = _scratch(kernel)
    total = 0
    for index in range(ITERS):
        name = kernel.interp.intern_string(f"lat_fs_{index}")
        kernel.call("vfs_create", name, 1)
        fd = int(kernel.call("vfs_open", name).value)
        if fd >= 0:
            total += int(kernel.call("vfs_write", fd, buf, SMALL).value)
            kernel.call("vfs_close", fd)
    return total


@benchmark("lat_fslayer", "lat", "VFS layer traversal (open/close only)")
def lat_fslayer(kernel: KernelInstance) -> int:
    name = kernel.interp.intern_string("lat_fslayer.dat")
    kernel.call("vfs_create", name, 1)
    total = 0
    for _ in range(ITERS * 2):
        fd = int(kernel.call("vfs_open", name).value)
        if fd >= 0:
            kernel.call("vfs_close", fd)
            total += 1
    return total


@benchmark("lat_mmap", "lat", "map and unmap address-space areas")
def lat_mmap(kernel: KernelInstance) -> int:
    mm = int(kernel.call("mm_alloc").value)
    for index in range(ITERS):
        kernel.call("mm_add_area", mm, 0x10000 * index, 0x10000 * index + 0x4000, 3)
    kernel.call("mm_release", mm)
    return ITERS


@benchmark("lat_sig", "lat", "signal send and delivery latency")
def lat_sig(kernel: KernelInstance) -> int:
    return int(kernel.call("user_signal_roundtrip", ITERS * 2).value)


@benchmark("lat_connect", "lat", "TCP connection establishment")
def lat_connect(kernel: KernelInstance) -> int:
    total = 0
    for index in range(4):
        a = int(kernel.call("sock_create", 6).value)
        b = int(kernel.call("sock_create", 6).value)
        kernel.call("sock_bind", a, 5000 + index * 2)
        kernel.call("sock_bind", b, 5001 + index * 2)
        total += int(kernel.call("tcp_connect", a, 5001 + index * 2).value)
        kernel.call("sock_close", a)
        kernel.call("sock_close", b)
    return total


@benchmark("lat_tcp", "lat", "TCP small-message round trip")
def lat_tcp(kernel: KernelInstance) -> int:
    a = int(kernel.call("sock_create", 6).value)
    b = int(kernel.call("sock_create", 6).value)
    kernel.call("sock_bind", a, 6001)
    kernel.call("sock_bind", b, 6002)
    kernel.call("tcp_connect", a, 6002)
    total = int(kernel.call("user_tcp_stream", a, b, SMALL, ITERS).value)
    kernel.call("sock_close", a)
    kernel.call("sock_close", b)
    return total


@benchmark("lat_udp", "lat", "UDP small-message round trip")
def lat_udp(kernel: KernelInstance) -> int:
    a = int(kernel.call("sock_create", 17).value)
    b = int(kernel.call("sock_create", 17).value)
    kernel.call("sock_bind", a, 7001)
    kernel.call("sock_bind", b, 7002)
    total = int(kernel.call("user_udp_pingpong", a, b, 7002, 7001, SMALL, ITERS).value)
    kernel.call("sock_close", a)
    kernel.call("sock_close", b)
    return total


@benchmark("lat_rpc", "lat", "RPC-style request/response over UDP plus dispatch")
def lat_rpc(kernel: KernelInstance) -> int:
    a = int(kernel.call("sock_create", 17).value)
    b = int(kernel.call("sock_create", 17).value)
    kernel.call("sock_bind", a, 8001)
    kernel.call("sock_bind", b, 8002)
    buf = _scratch(kernel)
    total = 0
    for _ in range(ITERS):
        # request, server-side "work" (a couple of syscalls), response
        kernel.call("udp_sendto", a, buf, SMALL, 8002)
        kernel.call("udp_recv", b, buf, SMALL)
        kernel.call("do_syscall", 0, 0, 0, 0)
        kernel.call("udp_sendto", b, buf, SMALL, 8001)
        total += int(kernel.call("udp_recv", a, buf, SMALL).value)
    kernel.call("sock_close", a)
    kernel.call("sock_close", b)
    return total
