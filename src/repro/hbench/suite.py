"""The hbench-like micro-benchmark suite (Table 1's 21 benchmarks).

Each benchmark is a short driver that exercises one kernel path on a booted
:class:`~repro.kernel.boot.KernelInstance` and reports the cycles it consumed.
Bandwidth benchmarks (``bw_*``) report relative *throughput* (baseline cycles
divided by instrumented cycles, so 0.85 means 15% less bandwidth); latency
benchmarks (``lat_*``) report relative *latency* (instrumented cycles divided
by baseline cycles, so 1.35 means 35% more latency) — the same conventions as
Table 1 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..kernel.boot import KernelInstance


@dataclass(frozen=True)
class Benchmark:
    """One hbench micro-benchmark."""

    name: str
    kind: str                     # "bw" or "lat"
    description: str
    run: Callable[[KernelInstance], int]

    def measure(self, kernel: KernelInstance) -> int:
        """Run the benchmark and return the cycles it consumed."""
        before = kernel.interp.counter.cycles
        self.run(kernel)
        return kernel.interp.counter.cycles - before


_REGISTRY: dict[str, Benchmark] = {}


def benchmark(name: str, kind: str, description: str):
    """Decorator registering a benchmark function."""
    def wrap(fn: Callable[[KernelInstance], int]) -> Callable[[KernelInstance], int]:
        _REGISTRY[name] = Benchmark(name=name, kind=kind, description=description, run=fn)
        return fn
    return wrap


def all_benchmarks() -> list[Benchmark]:
    """Every registered benchmark, in Table 1's order."""
    from . import bandwidth, latency  # noqa: F401  (registration side effect)
    order = TABLE1_ORDER
    return [_REGISTRY[name] for name in order if name in _REGISTRY]


def get_benchmark(name: str) -> Benchmark:
    from . import bandwidth, latency  # noqa: F401
    return _REGISTRY[name]


#: The benchmarks of Table 1, in the paper's (column-major) order.
TABLE1_ORDER: tuple[str, ...] = (
    "bw_bzero", "bw_file_rd", "bw_mem_cp", "bw_mem_rd", "bw_mem_wr",
    "bw_mmap_rd", "bw_pipe", "bw_tcp",
    "lat_connect", "lat_ctx", "lat_ctx2",
    "lat_fs", "lat_fslayer", "lat_mmap", "lat_pipe", "lat_proc",
    "lat_rpc", "lat_sig", "lat_syscall", "lat_tcp", "lat_udp",
)

#: The relative-performance numbers the paper reports (Table 1).
PAPER_TABLE1: dict[str, float] = {
    "bw_bzero": 1.01, "bw_file_rd": 0.98, "bw_mem_cp": 1.00, "bw_mem_rd": 1.00,
    "bw_mem_wr": 1.06, "bw_mmap_rd": 0.85, "bw_pipe": 0.98, "bw_tcp": 0.83,
    "lat_connect": 1.10, "lat_ctx": 1.15, "lat_ctx2": 1.35, "lat_fs": 1.35,
    "lat_fslayer": 1.04, "lat_mmap": 1.41, "lat_pipe": 1.14, "lat_proc": 1.29,
    "lat_rpc": 1.37, "lat_sig": 1.31, "lat_syscall": 0.74, "lat_tcp": 1.41,
    "lat_udp": 1.48,
}
