"""BlockStop's run-time assertions.

Static analysis of function pointers is conservative, so some reported
violations are false positives.  The paper's remedy is a run-time check: "We
defined a special function that panics if interrupts are disabled, and
manually inserted calls to this function in 15 places in the kernel."  Adding
the check to the entry of a function asserts that it will in fact never be
called with interrupts disabled; the static checker then stops reporting paths
that run through it, and if the assertion was wrong the kernel fails loudly at
run time instead of hanging silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.errors import CheckFailure
from ..machine.interpreter import Interpreter
from ..machine.program import Program
from ..machine.values import TypedValue, VOID_VALUE
from ..minic import ast_nodes as ast

ASSERT_BUILTIN = "__blockstop_assert_irqs_enabled"


@dataclass
class RuntimeCheckSet:
    """The set of functions that carry the manual run-time assertion."""

    functions: set[str] = field(default_factory=set)

    def add(self, name: str) -> None:
        self.functions.add(name)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __len__(self) -> int:
        return len(self.functions)


@dataclass
class BlockStopRuntimeStats:
    """Counters from executing the inserted assertions."""

    assertions_executed: int = 0
    assertion_failures: int = 0


def install(interp: Interpreter) -> BlockStopRuntimeStats:
    """Register the assertion builtin on ``interp``."""
    stats = BlockStopRuntimeStats()

    def assert_irqs_enabled(interp: Interpreter, args: list[TypedValue], loc) -> TypedValue:
        stats.assertions_executed += 1
        interp.counter.charge("blockstop_assert")
        if not interp.hw.irqs_enabled or interp.hw.in_interrupt:
            stats.assertion_failures += 1
            raise CheckFailure(
                "function asserted to run with interrupts enabled was called "
                "from atomic context", tool="blockstop", location=loc)
        return VOID_VALUE

    interp.register_builtin(ASSERT_BUILTIN, assert_irqs_enabled)
    return stats


def insert_assertions(program: Program, checks: RuntimeCheckSet) -> int:
    """Insert the assertion call at the top of every function in ``checks``.

    Returns the number of assertions actually inserted.  The insertion is a
    source-level change (the instrumented program still pretty-prints and
    re-parses), mirroring how the paper's authors edited the 15 kernel sites.
    """
    inserted = 0
    for name in sorted(checks.functions):
        func = program.function(name)
        if func is None:
            continue
        already = any(
            isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call)
            and isinstance(stmt.expr.func, ast.Ident)
            and stmt.expr.func.name == ASSERT_BUILTIN
            for stmt in func.body.stmts[:1])
        if already:
            continue
        call = ast.make_call(ASSERT_BUILTIN, [], func.location)
        func.body.stmts.insert(0, ast.ExprStmt(expr=call, location=func.location))
        inserted += 1
    return inserted
