"""BlockStop reports: the §2.3 numbers."""

from __future__ import annotations

from dataclasses import dataclass, field

from .checker import BlockStopResult, Violation


@dataclass
class BlockStopReport:
    """Summary of one BlockStop run over the kernel."""

    functions_analyzed: int = 0
    blocking_functions: int = 0
    blocking_seeds: int = 0
    indirect_edges: int = 0
    atomic_call_sites: int = 0
    violations_reported: int = 0
    violations_silenced: int = 0
    irq_handlers: int = 0
    asm_functions: int = 0
    runtime_checks: int = 0
    precision: str = "type_based"
    reported: list[Violation] = field(default_factory=list)
    silenced: list[Violation] = field(default_factory=list)

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("points-to precision", self.precision),
            ("functions analyzed", str(self.functions_analyzed)),
            ("annotated blocking seeds", str(self.blocking_seeds)),
            ("functions that may block", str(self.blocking_functions)),
            ("indirect call edges", str(self.indirect_edges)),
            ("interrupt handlers found", str(self.irq_handlers)),
            ("calls in atomic context", str(self.atomic_call_sites)),
            ("violations reported", str(self.violations_reported)),
            ("violations silenced by run-time checks", str(self.violations_silenced)),
            ("manual run-time checks", str(self.runtime_checks)),
            ("functions with inline asm (opaque)", str(self.asm_functions)),
        ]

    def __str__(self) -> str:
        lines = [f"{key:>42}: {value}" for key, value in self.rows()]
        if self.reported:
            lines.append("reported violations:")
            lines.extend("  " + v.describe() for v in self.reported)
        return "\n".join(lines)


def build_report(result: BlockStopResult) -> BlockStopReport:
    """Summarise a :class:`BlockStopResult`."""
    return BlockStopReport(
        functions_analyzed=len(result.graph),
        blocking_functions=len(result.blocking.may_block),
        blocking_seeds=len(result.blocking.seeds) + len(result.blocking.conditional_seeds),
        indirect_edges=len(result.graph.indirect_sites()),
        atomic_call_sites=len(result.atomic_call_sites),
        violations_reported=len(result.reported),
        violations_silenced=len(result.silenced),
        irq_handlers=len(result.irq_handlers),
        asm_functions=len(result.asm_functions),
        runtime_checks=len(result.runtime_checks),
        precision=result.precision.name.lower(),
        reported=list(result.reported),
        silenced=list(result.silenced),
    )
