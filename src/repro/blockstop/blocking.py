"""Blocking-function inference, derived from interprocedural summaries.

Certain primitives may sleep (``schedule``, ``wait_for_completion``,
``copy_to_user``/``copy_from_user`` on a fault, allocators called with
``GFP_KERNEL``), and any function that can reach one of them on some path may
itself block.  BlockStop seeds the set from ``blocking`` annotations; the
closure over the call graph — "a sound approximation of the set of functions
that might block" — now falls out of the shared bottom-up summary sweep
(:mod:`repro.dataflow.interproc`): each function's ``may_block`` bit is part
of its :class:`~repro.dataflow.summaries.FunctionSummary`, computed callees-
first over the SCC condensation, so the old ad-hoc backwards worklist over
the whole program is gone.

Allocator-style functions annotated ``blocking_if_wait`` only block when
their flags argument can include ``GFP_WAIT``; call sites that pass a
constant ``GFP_ATOMIC`` therefore do not make their caller blocking.  This
is the "special annotation" for ``kmalloc`` the paper describes.  The GFP
constant folding itself lives in :mod:`repro.dataflow.summaries` (the
summary computation needs it too) and is re-exported here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind
from ..dataflow.interproc import solve_summaries
from ..dataflow.summaries import (   # noqa: F401  (re-exported legacy names)
    GFP_WAIT_BIT,
    NONBLOCKING_BUILTINS,
    FunctionSummary,
    constant_of as _constant_of,
    flags_may_wait as _flags_may_wait,
)
from ..machine.program import Program
from ..minic import ast_nodes as ast
from .callgraph import CallGraph


@dataclass
class BlockingInfo:
    """The may-block classification of every function."""

    seeds: set[str] = field(default_factory=set)
    conditional_seeds: set[str] = field(default_factory=set)   # blocking_if_wait
    may_block: set[str] = field(default_factory=set)
    asserted_noblock: set[str] = field(default_factory=set)

    def blocks(self, name: str) -> bool:
        return name in self.may_block

    def annotation_for(self, name: str) -> str | None:
        """The annotation BlockStop would emit for ``name`` (or None)."""
        if name in self.conditional_seeds:
            return "blocking_if_wait"
        if name in self.may_block:
            return "blocking"
        if name in self.asserted_noblock:
            return "noblock"
        return None


def collect_seeds(program: Program) -> BlockingInfo:
    """Find directly annotated blocking functions."""
    info = BlockingInfo()
    for name in program.all_function_names():
        annotations = program.function_annotations(name)
        if annotations.has(AnnotationKind.BLOCKING):
            info.seeds.add(name)
        if annotations.has(AnnotationKind.BLOCKING_IF_WAIT):
            info.conditional_seeds.add(name)
        if annotations.has(AnnotationKind.NOBLOCK):
            info.asserted_noblock.add(name)
    return info


def call_site_may_block(program: Program, info: BlockingInfo,
                        call: ast.Call) -> bool:
    """Whether this particular call expression can sleep.

    Unconditional blocking callees always can; ``blocking_if_wait`` callees
    only when the flags argument might include GFP_WAIT.
    """
    if not isinstance(call.func, ast.Ident):
        return False
    name = call.func.name
    if name in info.seeds or (name in info.may_block and name not in info.conditional_seeds):
        return True
    if name in info.conditional_seeds:
        return _flags_may_wait(call)
    return False


def derive_blocking(program: Program, graph: CallGraph,
                    summaries: dict[str, FunctionSummary] | None = None,
                    info: BlockingInfo | None = None) -> BlockingInfo:
    """Fill ``info.may_block`` from the bottom-up function summaries.

    Every function whose summary says it can reach a blocking primitive
    (through any direct or points-to-resolved indirect edge, with the
    GFP_WAIT refinement applied per call site) is marked, plus the seeds
    themselves.  One SCC-ordered sweep replaces the old program-wide
    worklist *and* the separate graph-closure pass for indirect edges.
    """
    info = info or collect_seeds(program)
    if summaries is None:
        summaries = solve_summaries(program, graph)
    info.may_block |= {name for name, summary in summaries.items()
                       if summary.may_block}
    info.may_block |= info.seeds
    return info


def emit_annotations(info: BlockingInfo, graph: CallGraph) -> dict[str, str]:
    """The per-function annotations BlockStop would write back to the source.

    "Once we've run this analysis, we can emit an annotation for each function
    (and function pointer) that might eventually call a blocking function."
    """
    annotations: dict[str, str] = {}
    for name in sorted(graph.nodes):
        label = info.annotation_for(name)
        if label is not None:
            annotations[name] = label
    return annotations
