"""Blocking-function inference.

Certain primitives may sleep (``schedule``, ``wait_for_completion``,
``copy_to_user``/``copy_from_user`` on a fault, allocators called with
``GFP_KERNEL``), and any function that can reach one of them on some path may
itself block.  BlockStop seeds the set from ``blocking`` annotations and
propagates it backwards through the call graph — "a sound approximation of the
set of functions that might block".

Allocator-style functions annotated ``blocking_if_wait`` only block when their
flags argument can include ``GFP_WAIT``; call sites that pass a constant
``GFP_ATOMIC`` therefore do not make their caller blocking.  This is the
"special annotation" for ``kmalloc`` the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk
from .callgraph import CallGraph

#: Bit the corpus uses for "this allocation may wait" (mirrors __GFP_WAIT).
GFP_WAIT_BIT = 0x10

#: Builtins that are known to never sleep (the machine executes them inline).
NONBLOCKING_BUILTINS = frozenset({
    "memset", "memcpy", "memmove", "memcmp", "strlen", "strcpy", "strncpy",
    "strcmp", "strncmp", "printk", "panic", "BUG", "WARN",
    "__raw_alloc", "__raw_free", "__raw_size",
    "__hw_cli", "__hw_sti", "__hw_save_flags", "__hw_restore_flags",
    "__hw_irqs_disabled", "__hw_in_interrupt", "__hw_context_switch",
    "__hw_syscall_overhead", "__hw_cycles", "smp_processor_id",
    "__copy_block", "__hw_might_sleep",
    "__ccount_delay_begin", "__ccount_delay_end", "__ccount_rtti",
    "__ccount_rc_inc", "__ccount_rc_dec", "__ccount_memcpy", "__ccount_memset",
    "__ccount_ptr_write", "__ccount_refcount",
    "__deputy_check_ptr", "__deputy_check_nonnull", "__deputy_check_index",
    "__deputy_check_count", "__deputy_check_nt", "__deputy_check_union",
    "__deputy_check_cast",
    "__blockstop_assert_irqs_enabled",
})


@dataclass
class BlockingInfo:
    """The result of the blocking propagation."""

    seeds: set[str] = field(default_factory=set)
    conditional_seeds: set[str] = field(default_factory=set)   # blocking_if_wait
    may_block: set[str] = field(default_factory=set)
    asserted_noblock: set[str] = field(default_factory=set)

    def blocks(self, name: str) -> bool:
        return name in self.may_block

    def annotation_for(self, name: str) -> str | None:
        """The annotation BlockStop would emit for ``name`` (or None)."""
        if name in self.conditional_seeds:
            return "blocking_if_wait"
        if name in self.may_block:
            return "blocking"
        if name in self.asserted_noblock:
            return "noblock"
        return None


def collect_seeds(program: Program) -> BlockingInfo:
    """Find directly annotated blocking functions."""
    info = BlockingInfo()
    for name in program.all_function_names():
        annotations = program.function_annotations(name)
        if annotations.has(AnnotationKind.BLOCKING):
            info.seeds.add(name)
        if annotations.has(AnnotationKind.BLOCKING_IF_WAIT):
            info.conditional_seeds.add(name)
        if annotations.has(AnnotationKind.NOBLOCK):
            info.asserted_noblock.add(name)
    return info


def call_site_may_block(program: Program, info: BlockingInfo,
                        call: ast.Call) -> bool:
    """Whether this particular call expression can sleep.

    Unconditional blocking callees always can; ``blocking_if_wait`` callees
    only when the flags argument might include GFP_WAIT.
    """
    if not isinstance(call.func, ast.Ident):
        return False
    name = call.func.name
    if name in info.seeds or (name in info.may_block and name not in info.conditional_seeds):
        return True
    if name in info.conditional_seeds:
        return _flags_may_wait(call)
    return False


def _flags_may_wait(call: ast.Call) -> bool:
    """Conservatively decide whether an allocator call may pass GFP_WAIT."""
    if not call.args:
        return True
    flags = call.args[-1]
    constant = _constant_of(flags)
    if constant is None:
        return True
    return bool(constant & GFP_WAIT_BIT)


def _constant_of(expr: ast.Expr) -> int | None:
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    if isinstance(expr, ast.Binary):
        left = _constant_of(expr.left)
        right = _constant_of(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "|":
            return left | right
        if expr.op == "&":
            return left & right
        if expr.op == "+":
            return left + right
    if isinstance(expr, ast.Cast):
        return _constant_of(expr.operand)
    return None


def propagate_blocking(program: Program, graph: CallGraph,
                       info: BlockingInfo | None = None) -> BlockingInfo:
    """Propagate the blocking property backwards through the call graph.

    A function may block if it contains a call site that may block.  The
    conditional (``blocking_if_wait``) seeds are handled per call site, so a
    caller that only ever allocates with ``GFP_ATOMIC`` stays non-blocking.
    """
    info = info or collect_seeds(program)
    # Iterate to a fixed point; the graph is small enough that the simple
    # worklist formulation is clearer than building a reverse topological order.
    changed = True
    while changed:
        changed = False
        for name, func in program.functions.items():
            if name in info.may_block:
                continue
            if _function_may_block(program, info, func):
                info.may_block.add(name)
                changed = True
    # Unconditionally blocking seeds are, of course, blocking themselves.
    info.may_block |= info.seeds
    return info


def _function_may_block(program: Program, info: BlockingInfo,
                        func: ast.FuncDef) -> bool:
    for node in walk(func.body):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Ident):
            name = target.name
            if name in NONBLOCKING_BUILTINS:
                continue
            if name in info.conditional_seeds or name in info.seeds:
                if call_site_may_block(program, info, node):
                    return True
                continue
            if name in info.may_block:
                return True
        else:
            # Indirect call: resolved edges live in the call graph, so the
            # per-call-site refinement is unavailable; the graph-level closure
            # below (via may_block of resolved callees) covers it.
            continue
    return False


def propagate_over_graph(graph: CallGraph, info: BlockingInfo) -> BlockingInfo:
    """Graph-level backwards closure, including indirect edges.

    This complements :func:`propagate_blocking`: after indirect edges are
    added to the call graph, every caller that can reach a blocking function
    through any edge (direct or resolved-indirect) is marked blocking.
    """
    roots = set(info.may_block) | set(info.seeds)
    info.may_block |= graph.reverse_reachable(roots)
    return info


def emit_annotations(info: BlockingInfo, graph: CallGraph) -> dict[str, str]:
    """The per-function annotations BlockStop would write back to the source.

    "Once we've run this analysis, we can emit an annotation for each function
    (and function pointer) that might eventually call a blocking function."
    """
    annotations: dict[str, str] = {}
    for name in sorted(graph.nodes):
        label = info.annotation_for(name)
        if label is not None:
            annotations[name] = label
    return annotations
