"""BlockStop: whole-program analysis of blocking in atomic context."""

from .blocking import (
    BlockingInfo,
    GFP_WAIT_BIT,
    call_site_may_block,
    collect_seeds,
    derive_blocking,
    emit_annotations,
)
from .callgraph import CallGraph, CallSite, IndirectCall, build_direct_callgraph
from .checker import (
    AtomicCallSite,
    BlockStopChecker,
    BlockStopResult,
    Violation,
    find_irq_handlers,
    run_blockstop,
)
from .pointsto import FunctionPointerAnalysis, PointsToResult, Precision
from .report import BlockStopReport, build_report
from .runtime_checks import (
    ASSERT_BUILTIN,
    BlockStopRuntimeStats,
    RuntimeCheckSet,
    insert_assertions,
    install,
)

__all__ = [
    "BlockingInfo", "GFP_WAIT_BIT", "call_site_may_block", "collect_seeds",
    "derive_blocking", "emit_annotations",
    "CallGraph", "CallSite", "IndirectCall", "build_direct_callgraph",
    "AtomicCallSite", "BlockStopChecker", "BlockStopResult", "Violation",
    "find_irq_handlers", "run_blockstop",
    "FunctionPointerAnalysis", "PointsToResult", "Precision",
    "BlockStopReport", "build_report",
    "ASSERT_BUILTIN", "BlockStopRuntimeStats", "RuntimeCheckSet",
    "insert_assertions", "install",
]
