"""Function-pointer points-to analysis.

The paper: "The major challenge is to account for calls through function
pointers.  We use a whole-program points-to analysis to determine which
functions a given pointer could refer to" and notes that the analysis is
overly conservative ("Replacing our simple points-to analysis with one that is
field- and context-sensitive would improve the results").

Two precision levels are provided:

* ``TYPE_BASED`` — the paper's simple analysis: an indirect call can reach any
  address-taken function whose type signature matches the call.  Sound but
  conservative; this is what produces the false positives §2.3 reports.
* ``FIELD_SENSITIVE`` — the suggested improvement: function addresses stored
  into a named struct field (``.read = ext2_read``) only flow to calls through
  that same field (``ops->read(...)``).  Signature matching is the fallback
  when the storing field cannot be determined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import CFunc, CPointer, CStruct, CType
from ..minic.visitor import walk
from .callgraph import CallGraph, IndirectCall


class Precision(Enum):
    """Precision level of the function-pointer analysis."""

    TYPE_BASED = auto()
    FIELD_SENSITIVE = auto()


@dataclass
class PointsToResult:
    """Resolution of indirect calls to candidate callees."""

    precision: Precision
    address_taken: set[str] = field(default_factory=set)
    by_signature: dict[str, set[str]] = field(default_factory=dict)
    by_field: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    resolved_sites: int = 0
    unresolved_sites: int = 0

    def candidates_for_signature(self, signature: str) -> set[str]:
        return set(self.by_signature.get(signature, set()))

    def candidates_for_field(self, struct_tag: str, field_name: str) -> set[str]:
        return set(self.by_field.get((struct_tag, field_name), set()))


class FunctionPointerAnalysis:
    """Collect address-taken functions and resolve indirect calls."""

    def __init__(self, program: Program,
                 precision: Precision = Precision.TYPE_BASED) -> None:
        self.program = program
        self.precision = precision
        self.result = PointsToResult(precision=precision)

    # -- collection ------------------------------------------------------------

    def collect(self) -> PointsToResult:
        """Scan the program for function addresses stored into data."""
        for unit in self.program.units:
            for decl in unit.decls:
                if isinstance(decl, ast.Declaration) and decl.init is not None:
                    self._collect_initializer(decl.type, decl.init)
                elif isinstance(decl, ast.FuncDef):
                    self._collect_body(decl)
        return self.result

    def _note_function(self, name: str, struct_tag: str | None,
                       field_name: str | None) -> None:
        ftype = self.program.function_type(name)
        if ftype is None:
            return
        self.result.address_taken.add(name)
        signature = ftype.signature()
        self.result.by_signature.setdefault(signature, set()).add(name)
        if struct_tag is not None and field_name is not None:
            key = (struct_tag, field_name)
            self.result.by_field.setdefault(key, set()).add(name)

    def _collect_initializer(self, ctype: CType, init: ast.Initializer) -> None:
        stripped = ctype.strip()
        if init.is_list:
            elements = init.elements or []
            names = init.field_names or [None] * len(elements)
            if isinstance(stripped, CStruct):
                next_index = 0
                for designator, element in zip(names, elements):
                    if designator is not None and stripped.has_field(designator):
                        member = stripped.field_named(designator)
                        next_index = stripped.fields.index(member) + 1
                    elif next_index < len(stripped.fields):
                        member = stripped.fields[next_index]
                        next_index += 1
                    else:
                        continue
                    self._collect_field_initializer(stripped, member.name,
                                                    member.type, element)
            else:
                element_type = getattr(stripped, "element", stripped)
                for element in elements:
                    self._collect_initializer(element_type, element)
            return
        if init.expr is not None:
            self._collect_expr_store(init.expr, None, None)

    def _collect_field_initializer(self, struct: CStruct, field_name: str,
                                   field_type: CType, init: ast.Initializer) -> None:
        if init.is_list:
            self._collect_initializer(field_type, init)
            return
        if init.expr is not None:
            self._collect_expr_store(init.expr, struct.tag, field_name)

    def _collect_body(self, func: ast.FuncDef) -> None:
        for node in walk(func.body):
            if isinstance(node, ast.Assign) and node.op == "=":
                struct_tag, field_name = self._field_target(node.target)
                self._collect_expr_store(node.value, struct_tag, field_name)
            elif isinstance(node, ast.Call):
                # Function names passed as call arguments (request_irq etc.).
                for arg in node.args:
                    self._collect_expr_store(arg, None, None)

    def _collect_expr_store(self, expr: ast.Expr, struct_tag: str | None,
                            field_name: str | None) -> None:
        if isinstance(expr, ast.Ident) and expr.name in self.program.functions:
            self._note_function(expr.name, struct_tag, field_name)
        elif isinstance(expr, ast.Unary) and expr.op == "&":
            inner = expr.operand
            if isinstance(inner, ast.Ident) and inner.name in self.program.functions:
                self._note_function(inner.name, struct_tag, field_name)
        elif isinstance(expr, ast.Cast):
            self._collect_expr_store(expr.operand, struct_tag, field_name)

    def _field_target(self, target: ast.Expr) -> tuple[str | None, str | None]:
        if isinstance(target, ast.Member):
            return self._struct_tag_of(target), target.name
        return None, None

    def _struct_tag_of(self, member: ast.Member) -> str | None:
        # Without full type information at every point we fall back to the
        # field name alone when the struct tag cannot be recovered; using the
        # same key shape keeps matching consistent.
        return None

    # -- resolution -------------------------------------------------------------

    def resolve(self, graph: CallGraph, indirect_calls: list[IndirectCall],
                envs: dict[str, "TypeEnv"] | None = None) -> PointsToResult:
        """Add call-graph edges for every indirect call site.

        ``envs`` is an optional shared per-function :class:`TypeEnv` cache
        (the engine's symbol-table artifact); it is filled in as a side
        effect so later analyses reuse the same environments.
        """
        env_cache = envs if envs is not None else {}
        for site in indirect_calls:
            callees = self._resolve_site(site, env_cache)
            if callees:
                self.result.resolved_sites += 1
            else:
                self.result.unresolved_sites += 1
            for callee in sorted(callees):
                graph.add_edge(site.caller, callee, site.location, indirect=True)
        return self.result

    def _resolve_site(self, site: IndirectCall,
                      env_cache: dict[str, "TypeEnv"]) -> set[str]:
        from ..deputy.typesystem import TypeEnv

        func = self.program.function(site.caller)
        if func is None:
            return set()
        env = env_cache.get(site.caller)
        if env is None:
            env = TypeEnv(self.program, func)
            env_cache[site.caller] = env
        callee_expr = site.expr.func
        # Field-sensitive resolution: ops->read(...) or ops.read(...).
        if self.precision is Precision.FIELD_SENSITIVE and isinstance(callee_expr, ast.Member):
            struct_tag = self._member_struct_tag(env, callee_expr)
            if struct_tag is not None:
                by_field = self.result.candidates_for_field(struct_tag, callee_expr.name)
                if by_field:
                    return by_field
            # Also try the tag-agnostic key recorded for plain assignments.
            by_field = self.result.candidates_for_field(None, callee_expr.name)  # type: ignore[arg-type]
            if by_field:
                return by_field
        # Signature-based fallback (the paper's simple analysis).
        signature = self._callee_signature(env, callee_expr)
        if signature is not None:
            return self.result.candidates_for_signature(signature)
        return set(self.result.address_taken)

    def _member_struct_tag(self, env: "TypeEnv", member: ast.Member) -> str | None:
        base_type = env.type_of(member.base).strip()
        if member.arrow and isinstance(base_type, CPointer):
            base_type = base_type.target.strip()
        if isinstance(base_type, CStruct):
            return base_type.tag
        return None

    def _callee_signature(self, env: "TypeEnv", callee: ast.Expr) -> str | None:
        ctype = env.type_of(callee).strip()
        if isinstance(ctype, CPointer):
            inner = ctype.target.strip()
            if isinstance(inner, CFunc):
                return inner.signature()
        if isinstance(ctype, CFunc):
            return ctype.signature()
        return None


def analyse_function_pointers(program: Program, graph: CallGraph,
                              indirect_calls: list[IndirectCall],
                              precision: Precision = Precision.TYPE_BASED) -> PointsToResult:
    """Run collection and resolution in one step."""
    analysis = FunctionPointerAnalysis(program, precision)
    analysis.collect()
    return analysis.resolve(graph, indirect_calls)
