"""The BlockStop checker: no blocking calls while interrupts are disabled.

The analysis proceeds in four steps:

1. build the call graph (direct calls + points-to-resolved indirect calls);
2. compute the set of functions that may block — the ``may_block`` bit of the
   bottom-up function summaries (:mod:`repro.dataflow.interproc`), seeded by
   the ``blocking`` annotations with the GFP_WAIT refinement for allocators;
3. find every *atomic region*: code executed with interrupts disabled, either
   because the enclosing function disabled them (``local_irq_save``,
   ``spin_lock_irqsave``, ``spin_lock_irq``, ``cli``), because it called a
   helper whose summary says it returns with interrupts disabled (the callee
   IRQ delta), or because the function is an interrupt handler (registered
   through ``request_irq``) — skipping constant-false branch arms, which the
   shared constants lattice (:mod:`repro.dataflow.consts`) proves dead;
4. report every call site inside an atomic region whose callee may block,
   excluding paths that run through functions carrying the manual run-time
   assertion (:mod:`repro.blockstop.runtime_checks`).

Functions containing inline assembly are treated as opaque, matching the
paper's stated soundness caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow import build_cfg, reachable_blocks, solve_forward
from ..dataflow.consts import refined_edges
from ..dataflow.context import AnalysisContext
from ..dataflow.domains import FunctionFacts, facts_of
from ..dataflow.interproc import solve_summaries
from ..dataflow.summaries import (
    IRQ_DEPTH_CAP,
    IRQ_DISABLE_CALLS,
    IRQ_ENABLE_CALLS,
    FunctionSummary,
)
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import SourceLocation
from ..minic.visitor import walk
from .blocking import (
    BlockingInfo,
    call_site_may_block,
    derive_blocking,
)
from .callgraph import CallGraph, build_direct_callgraph
from .pointsto import FunctionPointerAnalysis, Precision
from .runtime_checks import RuntimeCheckSet
#: Registration functions whose function-pointer argument runs in IRQ context.
IRQ_HANDLER_REGISTRATION = frozenset({"request_irq", "register_irq_handler"})

#: Widening cap on the abstract interrupt-disable nesting depth.  The scan
#: only distinguishes 0 from >0; the cap keeps the lattice finite so a loop
#: that disables without a matching enable still reaches a fixpoint.
_DEPTH_CAP = IRQ_DEPTH_CAP


@dataclass
class Violation:
    """One potential blocking-in-atomic-context bug."""

    caller: str
    callee: str
    location: SourceLocation
    path: list[str] = field(default_factory=list)
    via_indirect: bool = False
    silenced_by_check: bool = False

    def describe(self) -> str:
        chain = " -> ".join(self.path) if self.path else f"{self.caller} -> {self.callee}"
        kind = "indirect" if self.via_indirect else "direct"
        return (f"{self.location}: {self.caller} may call blocking function "
                f"{self.callee} with interrupts disabled ({kind} path: {chain})")


@dataclass
class AtomicCallSite:
    """A call made while interrupts are disabled."""

    caller: str
    callee: str
    location: SourceLocation
    indirect: bool
    conditional_blocks: bool = False   # a blocking_if_wait callee passed GFP_WAIT


@dataclass
class BlockStopResult:
    """Everything the BlockStop analysis produced."""

    graph: CallGraph
    blocking: BlockingInfo
    violations: list[Violation] = field(default_factory=list)
    atomic_call_sites: list[AtomicCallSite] = field(default_factory=list)
    irq_handlers: set[str] = field(default_factory=set)
    asm_functions: set[str] = field(default_factory=set)
    precision: Precision = Precision.TYPE_BASED
    runtime_checks: RuntimeCheckSet = field(default_factory=RuntimeCheckSet)
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)

    @property
    def reported(self) -> list[Violation]:
        return [v for v in self.violations if not v.silenced_by_check]

    @property
    def silenced(self) -> list[Violation]:
        return [v for v in self.violations if v.silenced_by_check]


def find_irq_handlers(program: Program) -> set[str]:
    """Functions registered as interrupt handlers (run in IRQ context).

    Shared artifact: BlockStop seeds its atomic-region scan with these, and
    lockcheck uses them as its set of interrupt-context functions.
    """
    handlers: set[str] = set()
    for unit in program.units:
        for decl in unit.decls:
            if not isinstance(decl, ast.FuncDef):
                continue
            for node in walk(decl.body):
                if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                        and node.func.name in IRQ_HANDLER_REGISTRATION):
                    for arg in node.args:
                        name = _function_name_of(arg, program)
                        if name is not None:
                            handlers.add(name)
    return handlers


class BlockStopChecker:
    """Run the whole BlockStop pipeline over a program.

    The call graph, blocking summary and interrupt-handler set can either be
    derived from scratch (the standalone entry point) or supplied pre-built by
    :class:`repro.engine.AnalysisEngine`, which shares them between analyses.
    """

    def __init__(self, program: Program,
                 precision: Precision = Precision.TYPE_BASED,
                 runtime_checks: RuntimeCheckSet | None = None,
                 graph: CallGraph | None = None,
                 blocking: BlockingInfo | None = None,
                 irq_handlers: set[str] | None = None,
                 summaries: dict[str, FunctionSummary] | None = None,
                 consts: dict[str, FunctionFacts | None] | None = None) -> None:
        self.program = program
        self.precision = precision
        self.runtime_checks = runtime_checks or RuntimeCheckSet()
        self._graph = graph
        self._blocking = blocking
        self._irq_handlers = irq_handlers
        self._summaries = summaries
        #: Per-function constant facts (engine artifact or lazily solved).
        self.consts = consts if consts is not None else {}
        self.summaries: dict[str, FunctionSummary] = {}

    def run(self) -> BlockStopResult:
        graph = self._graph
        blocking = self._blocking
        irq_handlers = self._irq_handlers
        summaries = self._summaries
        if graph is None:
            graph, indirect_calls = build_direct_callgraph(self.program)
            pointsto = FunctionPointerAnalysis(self.program, self.precision)
            pointsto.collect()
            pointsto.resolve(graph, indirect_calls)
        if summaries is None:
            summaries = solve_summaries(self.program, graph)
        self.summaries = summaries
        if blocking is None:
            blocking = derive_blocking(self.program, graph, summaries)
        if irq_handlers is None:
            irq_handlers = find_irq_handlers(self.program)

        result = BlockStopResult(graph=graph, blocking=blocking,
                                 precision=self.precision,
                                 runtime_checks=self.runtime_checks,
                                 summaries=summaries)
        result.irq_handlers = set(irq_handlers)
        self._scan_atomic_regions(result, blocking)
        # (function, location) ordering: the rendered report must not depend
        # on dict iteration or CFG block numbering details.
        result.atomic_call_sites.sort(
            key=lambda s: (s.caller, s.location.filename, s.location.line,
                           s.location.column, s.callee))
        self._check_violations(result)
        result.violations.sort(
            key=lambda v: (v.caller, v.location.filename, v.location.line,
                           v.location.column, v.callee))
        return result

    # -- atomic-region scan -------------------------------------------------------

    def _scan_atomic_regions(self, result: BlockStopResult,
                             blocking: BlockingInfo) -> None:
        for name, func in self.program.functions.items():
            if _contains_asm(func):
                result.asm_functions.add(name)
            starts_atomic = name in result.irq_handlers
            self._scan_function(result, name, func, starts_atomic, blocking)

    def _scan_function(self, result: BlockStopResult, name: str,
                       func: ast.FuncDef, starts_atomic: bool,
                       blocking: BlockingInfo) -> None:
        """Track the interrupt flag flow-sensitively over the function's CFG.

        The abstract state is a counter of nested disables.  The join at
        merge points is ``max`` — the paper's conservative "assume atomic if
        any path is atomic" semantics — but, unlike the old linear statement
        scan, a ``local_irq_save`` inside one arm of an ``if``/``else`` no
        longer poisons the sibling arm, and an early return that re-enables
        interrupts no longer hides the atomic region on the fall-through
        path.  Loops iterate to a fixpoint; the depth is capped so an
        unmatched disable inside a loop body still converges.  These
        per-function atomic regions feed the interprocedural step (callees
        of an atomic call site inherit atomic context through the graph).

        Callee IRQ deltas from the function summaries are threaded through
        the same counter: a call to a helper whose summary says it returns
        with interrupts disabled raises the depth exactly as a direct
        ``local_irq_disable`` would, so a blocking call that is atomic only
        *because of* the callee's delta is found in the caller.

        The solve is condition-aware: constant-false branch edges (a
        ``#define DEBUG 0`` debug arm inside the atomic region) are
        infeasible, so calls in provably-dead arms are never recorded as
        atomic call sites.
        """
        if not starts_atomic and not self._can_raise_depth(func):
            return      # depth can never leave 0: skip the CFG + solve cost
        cfg = build_cfg(func)
        func_consts = facts_of(func, cache=self.consts, cfg=cfg)
        entry_depth = 1 if starts_atomic else 0

        def transfer(block, depth: int) -> int:
            for element in block.elements:
                depth = self._apply_element(element.expr, depth)
            return depth

        in_states = solve_forward(cfg, transfer, max, entry_state=entry_depth,
                                  edge_refine=refined_edges(func_consts))
        for block, depth in reachable_blocks(cfg, in_states):
            for element in block.elements:
                depth = self._apply_element(element.expr, depth,
                                            result=result, caller=name,
                                            blocking=blocking)

    def _can_raise_depth(self, func: ast.FuncDef) -> bool:
        """Whether any call in ``func`` can push the disable depth above 0."""
        for node in walk(func.body):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
                continue
            name = node.func.name
            if name in IRQ_DISABLE_CALLS:
                return True
            if name not in IRQ_ENABLE_CALLS:
                summary = self.summaries.get(name)
                if summary is not None and summary.irq_delta > 0:
                    return True
        return False

    def _apply_element(self, expr: ast.Expr | None, depth: int,
                       result: BlockStopResult | None = None,
                       caller: str | None = None,
                       blocking: BlockingInfo | None = None) -> int:
        """Step the disable depth over every call inside ``expr``.

        With ``result`` supplied this is the recording pass: calls made at
        depth > 0 are appended as atomic call sites.  A named callee that is
        neither a disable nor an enable primitive contributes its summary's
        IRQ delta *after* the call site itself is recorded (the call starts
        in the caller's current context; what the callee does internally is
        the callee's own scan's business).
        """
        if expr is None:
            return depth
        for node in walk(expr):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Ident):
                callee = target.name
                if callee in IRQ_DISABLE_CALLS:
                    depth = min(depth + 1, _DEPTH_CAP)
                    continue
                if callee in IRQ_ENABLE_CALLS:
                    depth = max(0, depth - 1)
                    continue
                if depth > 0 and result is not None:
                    conditional = (callee in blocking.conditional_seeds
                                   and call_site_may_block(self.program, blocking, node))
                    result.atomic_call_sites.append(AtomicCallSite(
                        caller=caller, callee=callee,
                        location=node.location, indirect=False,
                        conditional_blocks=conditional))
                summary = self.summaries.get(callee)
                if summary is not None and summary.irq_delta:
                    depth = max(0, min(depth + summary.irq_delta, _DEPTH_CAP))
            else:
                if depth > 0 and result is not None:
                    # Indirect call in atomic context: all resolved callees
                    # from this caller are candidates.
                    result.atomic_call_sites.append(AtomicCallSite(
                        caller=caller, callee="<indirect>",
                        location=node.location, indirect=True))
        return depth

    # -- violation detection --------------------------------------------------------

    def _check_violations(self, result: BlockStopResult) -> None:
        blocking = result.blocking
        graph = result.graph
        blocking_set = set(blocking.may_block)
        for site in result.atomic_call_sites:
            callees: list[tuple[str, bool]] = []
            if site.indirect:
                resolved = [s.callee for s in graph.call_sites
                            if s.caller == site.caller and s.indirect]
                callees = [(callee, True) for callee in sorted(set(resolved))]
            else:
                callees = [(site.callee, False)]
            for callee, indirect in callees:
                if callee in blocking.conditional_seeds and not site.indirect:
                    # Allocator-style callee: blocking only when this call
                    # site can pass GFP_WAIT.
                    if not site.conditional_blocks:
                        continue
                elif callee not in blocking_set:
                    continue
                else:
                    reachable_blockers = (graph.reachable_from([callee])
                                          & (set(blocking.seeds)
                                             | set(blocking.conditional_seeds)))
                    if not reachable_blockers and callee not in blocking.seeds:
                        continue
                path = graph.shortest_path(callee, blocking.seeds | {callee})
                silenced = callee in self.runtime_checks
                result.violations.append(Violation(
                    caller=site.caller, callee=callee, location=site.location,
                    path=[site.caller, *path] if path else [site.caller, callee],
                    via_indirect=indirect, silenced_by_check=silenced))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _function_name_of(expr: ast.Expr, program: Program) -> str | None:
    if isinstance(expr, ast.Ident) and expr.name in program.functions:
        return expr.name
    if isinstance(expr, ast.Unary) and expr.op == "&":
        return _function_name_of(expr.operand, program)
    if isinstance(expr, ast.Cast):
        return _function_name_of(expr.operand, program)
    return None


def _contains_asm(func: ast.FuncDef) -> bool:
    return any(isinstance(node, ast.Asm) for node in walk(func.body))


def check_blockstop(ctx: AnalysisContext,
                    precision: Precision = Precision.TYPE_BASED,
                    runtime_checks: RuntimeCheckSet | None = None,
                    ) -> BlockStopResult:
    """Run the full BlockStop analysis over a shared analysis context.

    This is the primary entry point: the engine builds one
    :class:`repro.dataflow.AnalysisContext` per run and every checker
    consumes the same bundle.  Prebuilt ``blocking`` facts and the IRQ
    handler set travel in ``ctx.extras`` (they have no cross-checker home);
    anything missing is computed on demand exactly as before.
    """
    extras = ctx.extras
    return BlockStopChecker(ctx.program, precision, runtime_checks,
                            graph=ctx.call_graph,
                            blocking=extras.get("blocking"),
                            irq_handlers=extras.get("irq_handlers"),
                            summaries=ctx.summaries,
                            consts=ctx.facts).run()


def run_blockstop(program: Program,
                  precision: Precision = Precision.TYPE_BASED,
                  runtime_checks: RuntimeCheckSet | None = None,
                  graph: CallGraph | None = None,
                  blocking: BlockingInfo | None = None,
                  irq_handlers: set[str] | None = None,
                  summaries: dict[str, FunctionSummary] | None = None,
                  consts: dict[str, FunctionFacts | None] | None = None,
                  ) -> BlockStopResult:
    """Convenience wrapper for scripts and tests: loose artifacts in, one
    :class:`AnalysisContext` out, delegated to :func:`check_blockstop`."""
    extras: dict = {}
    if blocking is not None:
        extras["blocking"] = blocking
    if irq_handlers is not None:
        extras["irq_handlers"] = irq_handlers
    ctx = AnalysisContext(program=program, call_graph=graph,
                          summaries=summaries, facts=consts, extras=extras)
    return check_blockstop(ctx, precision, runtime_checks)
