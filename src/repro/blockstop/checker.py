"""The BlockStop checker: no blocking calls while interrupts are disabled.

The analysis proceeds in four steps:

1. build the call graph (direct calls + points-to-resolved indirect calls);
2. compute the set of functions that may block (backwards propagation of the
   ``blocking`` annotations, with the GFP_WAIT refinement for allocators);
3. find every *atomic region*: code executed with interrupts disabled, either
   because the enclosing function disabled them (``local_irq_save``,
   ``spin_lock_irqsave``, ``spin_lock_irq``, ``cli``) or because the function
   is an interrupt handler (registered through ``request_irq``);
4. report every call site inside an atomic region whose callee may block,
   excluding paths that run through functions carrying the manual run-time
   assertion (:mod:`repro.blockstop.runtime_checks`).

Functions containing inline assembly are treated as opaque, matching the
paper's stated soundness caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import SourceLocation
from ..minic.visitor import walk
from .blocking import (
    BlockingInfo,
    call_site_may_block,
    collect_seeds,
    propagate_blocking,
    propagate_over_graph,
)
from .callgraph import CallGraph, build_direct_callgraph
from .pointsto import FunctionPointerAnalysis, Precision
from .runtime_checks import RuntimeCheckSet

#: Functions (in the corpus) that disable interrupts until the matching enable.
IRQ_DISABLE_CALLS = frozenset({
    "local_irq_disable", "local_irq_save", "spin_lock_irqsave", "spin_lock_irq",
    "__hw_cli", "cli",
})
IRQ_ENABLE_CALLS = frozenset({
    "local_irq_enable", "local_irq_restore", "spin_unlock_irqrestore",
    "spin_unlock_irq", "__hw_sti", "sti",
})
#: Registration functions whose function-pointer argument runs in IRQ context.
IRQ_HANDLER_REGISTRATION = frozenset({"request_irq", "register_irq_handler"})


@dataclass
class Violation:
    """One potential blocking-in-atomic-context bug."""

    caller: str
    callee: str
    location: SourceLocation
    path: list[str] = field(default_factory=list)
    via_indirect: bool = False
    silenced_by_check: bool = False

    def describe(self) -> str:
        chain = " -> ".join(self.path) if self.path else f"{self.caller} -> {self.callee}"
        kind = "indirect" if self.via_indirect else "direct"
        return (f"{self.location}: {self.caller} may call blocking function "
                f"{self.callee} with interrupts disabled ({kind} path: {chain})")


@dataclass
class AtomicCallSite:
    """A call made while interrupts are disabled."""

    caller: str
    callee: str
    location: SourceLocation
    indirect: bool
    conditional_blocks: bool = False   # a blocking_if_wait callee passed GFP_WAIT


@dataclass
class BlockStopResult:
    """Everything the BlockStop analysis produced."""

    graph: CallGraph
    blocking: BlockingInfo
    violations: list[Violation] = field(default_factory=list)
    atomic_call_sites: list[AtomicCallSite] = field(default_factory=list)
    irq_handlers: set[str] = field(default_factory=set)
    asm_functions: set[str] = field(default_factory=set)
    precision: Precision = Precision.TYPE_BASED
    runtime_checks: RuntimeCheckSet = field(default_factory=RuntimeCheckSet)

    @property
    def reported(self) -> list[Violation]:
        return [v for v in self.violations if not v.silenced_by_check]

    @property
    def silenced(self) -> list[Violation]:
        return [v for v in self.violations if v.silenced_by_check]


def find_irq_handlers(program: Program) -> set[str]:
    """Functions registered as interrupt handlers (run in IRQ context).

    Shared artifact: BlockStop seeds its atomic-region scan with these, and
    lockcheck uses them as its set of interrupt-context functions.
    """
    handlers: set[str] = set()
    for unit in program.units:
        for decl in unit.decls:
            if not isinstance(decl, ast.FuncDef):
                continue
            for node in walk(decl.body):
                if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                        and node.func.name in IRQ_HANDLER_REGISTRATION):
                    for arg in node.args:
                        name = _function_name_of(arg, program)
                        if name is not None:
                            handlers.add(name)
    return handlers


class BlockStopChecker:
    """Run the whole BlockStop pipeline over a program.

    The call graph, blocking summary and interrupt-handler set can either be
    derived from scratch (the standalone entry point) or supplied pre-built by
    :class:`repro.engine.AnalysisEngine`, which shares them between analyses.
    """

    def __init__(self, program: Program,
                 precision: Precision = Precision.TYPE_BASED,
                 runtime_checks: RuntimeCheckSet | None = None,
                 graph: CallGraph | None = None,
                 blocking: BlockingInfo | None = None,
                 irq_handlers: set[str] | None = None) -> None:
        self.program = program
        self.precision = precision
        self.runtime_checks = runtime_checks or RuntimeCheckSet()
        self._graph = graph
        self._blocking = blocking
        self._irq_handlers = irq_handlers

    def run(self) -> BlockStopResult:
        graph = self._graph
        blocking = self._blocking
        irq_handlers = self._irq_handlers
        if graph is None:
            graph, indirect_calls = build_direct_callgraph(self.program)
            pointsto = FunctionPointerAnalysis(self.program, self.precision)
            pointsto.collect()
            pointsto.resolve(graph, indirect_calls)
        if blocking is None:
            blocking = collect_seeds(self.program)
            propagate_blocking(self.program, graph, blocking)
            propagate_over_graph(graph, blocking)
        if irq_handlers is None:
            irq_handlers = find_irq_handlers(self.program)

        result = BlockStopResult(graph=graph, blocking=blocking,
                                 precision=self.precision,
                                 runtime_checks=self.runtime_checks)
        result.irq_handlers = set(irq_handlers)
        self._scan_atomic_regions(result, blocking)
        self._check_violations(result)
        return result

    # -- atomic-region scan -------------------------------------------------------

    def _scan_atomic_regions(self, result: BlockStopResult,
                             blocking: BlockingInfo) -> None:
        for name, func in self.program.functions.items():
            if _contains_asm(func):
                result.asm_functions.add(name)
            starts_atomic = name in result.irq_handlers
            self._scan_function(result, name, func, starts_atomic, blocking)

    def _scan_function(self, result: BlockStopResult, name: str,
                       func: ast.FuncDef, starts_atomic: bool,
                       blocking: BlockingInfo) -> None:
        """Track the interrupt flag through the statement sequence.

        The scan is a simple syntactic abstraction: a counter of nested
        disables, updated in statement order, with branches explored with the
        state they inherit.  This is how the per-function summaries feed the
        interprocedural step (callees of an atomic call site inherit atomic
        context through the call graph).
        """
        state = {"depth": 1 if starts_atomic else 0}

        def visit_stmt(stmt: ast.Stmt) -> None:
            for node in _statement_expressions(stmt):
                self._scan_expr(result, name, node, state, blocking)
            for child in _child_statements(stmt):
                visit_stmt(child)

        visit_stmt(func.body)

    def _scan_expr(self, result: BlockStopResult, caller: str,
                   expr: ast.Expr, state: dict, blocking: BlockingInfo) -> None:
        for node in walk(expr):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Ident):
                callee = target.name
                if callee in IRQ_DISABLE_CALLS:
                    state["depth"] += 1
                    continue
                if callee in IRQ_ENABLE_CALLS:
                    state["depth"] = max(0, state["depth"] - 1)
                    continue
                if state["depth"] > 0:
                    conditional = (callee in blocking.conditional_seeds
                                   and call_site_may_block(self.program, blocking, node))
                    result.atomic_call_sites.append(AtomicCallSite(
                        caller=caller, callee=callee,
                        location=node.location, indirect=False,
                        conditional_blocks=conditional))
            else:
                if state["depth"] > 0:
                    # Indirect call in atomic context: all resolved callees
                    # from this caller are candidates.
                    result.atomic_call_sites.append(AtomicCallSite(
                        caller=caller, callee="<indirect>",
                        location=node.location, indirect=True))

    # -- violation detection --------------------------------------------------------

    def _check_violations(self, result: BlockStopResult) -> None:
        blocking = result.blocking
        graph = result.graph
        blocking_set = set(blocking.may_block)
        for site in result.atomic_call_sites:
            callees: list[tuple[str, bool]] = []
            if site.indirect:
                resolved = [s.callee for s in graph.call_sites
                            if s.caller == site.caller and s.indirect]
                callees = [(callee, True) for callee in sorted(set(resolved))]
            else:
                callees = [(site.callee, False)]
            for callee, indirect in callees:
                if callee in blocking.conditional_seeds and not site.indirect:
                    # Allocator-style callee: blocking only when this call
                    # site can pass GFP_WAIT.
                    if not site.conditional_blocks:
                        continue
                elif callee not in blocking_set:
                    continue
                else:
                    reachable_blockers = (graph.reachable_from([callee])
                                          & (set(blocking.seeds)
                                             | set(blocking.conditional_seeds)))
                    if not reachable_blockers and callee not in blocking.seeds:
                        continue
                path = graph.shortest_path(callee, blocking.seeds | {callee})
                silenced = callee in self.runtime_checks
                result.violations.append(Violation(
                    caller=site.caller, callee=callee, location=site.location,
                    path=[site.caller, *path] if path else [site.caller, callee],
                    via_indirect=indirect, silenced_by_check=silenced))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _function_name_of(expr: ast.Expr, program: Program) -> str | None:
    if isinstance(expr, ast.Ident) and expr.name in program.functions:
        return expr.name
    if isinstance(expr, ast.Unary) and expr.op == "&":
        return _function_name_of(expr.operand, program)
    if isinstance(expr, ast.Cast):
        return _function_name_of(expr.operand, program)
    return None


def _contains_asm(func: ast.FuncDef) -> bool:
    return any(isinstance(node, ast.Asm) for node in walk(func.body))


def _statement_expressions(stmt: ast.Stmt) -> list[ast.Expr]:
    """The expressions evaluated directly by ``stmt`` (not via sub-statements)."""
    exprs: list[ast.Expr] = []
    if isinstance(stmt, ast.ExprStmt):
        exprs.append(stmt.expr)
    elif isinstance(stmt, ast.DeclStmt) and stmt.decl.init is not None:
        exprs.extend(_initializer_expressions(stmt.decl.init))
    elif isinstance(stmt, (ast.If, ast.While, ast.DoWhile, ast.Switch)):
        exprs.append(stmt.cond)
    elif isinstance(stmt, ast.For):
        if isinstance(stmt.init, ast.Expr):
            exprs.append(stmt.init)
        elif isinstance(stmt.init, ast.Declaration) and stmt.init.init is not None:
            exprs.extend(_initializer_expressions(stmt.init.init))
        if stmt.cond is not None:
            exprs.append(stmt.cond)
        if stmt.step is not None:
            exprs.append(stmt.step)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        exprs.append(stmt.value)
    return exprs


def _initializer_expressions(init: ast.Initializer) -> list[ast.Expr]:
    if init.is_list:
        collected: list[ast.Expr] = []
        for element in init.elements or []:
            collected.extend(_initializer_expressions(element))
        return collected
    return [init.expr] if init.expr is not None else []


def _child_statements(stmt: ast.Stmt) -> list[ast.Stmt]:
    if isinstance(stmt, ast.Block):
        return list(stmt.stmts)
    if isinstance(stmt, ast.If):
        children = [stmt.then]
        if stmt.otherwise is not None:
            children.append(stmt.otherwise)
        return children
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return [stmt.body]
    if isinstance(stmt, ast.Switch):
        collected: list[ast.Stmt] = []
        for case in stmt.cases:
            collected.extend(case.stmts)
        return collected
    if isinstance(stmt, ast.Label) and stmt.stmt is not None:
        return [stmt.stmt]
    return []


def run_blockstop(program: Program,
                  precision: Precision = Precision.TYPE_BASED,
                  runtime_checks: RuntimeCheckSet | None = None,
                  graph: CallGraph | None = None,
                  blocking: BlockingInfo | None = None,
                  irq_handlers: set[str] | None = None) -> BlockStopResult:
    """Convenience entry point: run the full BlockStop analysis."""
    return BlockStopChecker(program, precision, runtime_checks,
                            graph=graph, blocking=blocking,
                            irq_handlers=irq_handlers).run()
