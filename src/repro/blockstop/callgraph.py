"""Call graph construction.

BlockStop is a whole-program analysis, and the call graph is its backbone
(the paper also proposes reusing it for stack-depth checking, which
:mod:`repro.analyses.stackcheck` does).  Direct calls contribute edges
immediately; calls through function pointers are resolved by the points-to
analysis in :mod:`repro.blockstop.pointsto` and added as *indirect* edges,
labelled so reports can distinguish them (they are the main source of false
positives the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import SourceLocation
from ..minic.visitor import walk


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    caller: str
    callee: str
    location: SourceLocation
    indirect: bool = False
    irqs_disabled: bool = False   # filled in by the checker's context scan


@dataclass
class CallGraph:
    """Directed graph over function names."""

    nodes: set[str] = field(default_factory=set)
    edges: dict[str, set[str]] = field(default_factory=dict)
    reverse_edges: dict[str, set[str]] = field(default_factory=dict)
    call_sites: list[CallSite] = field(default_factory=list)

    def add_node(self, name: str) -> None:
        self.nodes.add(name)
        self.edges.setdefault(name, set())
        self.reverse_edges.setdefault(name, set())

    def add_edge(self, caller: str, callee: str,
                 location: SourceLocation | None = None,
                 indirect: bool = False) -> None:
        self.add_node(caller)
        self.add_node(callee)
        self.edges[caller].add(callee)
        self.reverse_edges[callee].add(caller)
        self.call_sites.append(CallSite(
            caller=caller, callee=callee,
            location=location or SourceLocation(), indirect=indirect))

    def callees(self, name: str) -> set[str]:
        return self.edges.get(name, set())

    def callers(self, name: str) -> set[str]:
        return self.reverse_edges.get(name, set())

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """All functions reachable (forwards) from ``roots``."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def reverse_reachable(self, roots: Iterable[str]) -> set[str]:
        """All functions from which some root is reachable (backwards closure)."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.reverse_edges.get(current, ()))
        return seen

    def shortest_path(self, source: str, targets: set[str]) -> list[str]:
        """Breadth-first path from ``source`` to any function in ``targets``."""
        if source in targets:
            return [source]
        parents: dict[str, str] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for callee in sorted(self.edges.get(node, ())):
                    if callee in seen:
                        continue
                    parents[callee] = node
                    if callee in targets:
                        path = [callee]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    seen.add(callee)
                    next_frontier.append(callee)
            frontier = next_frontier
        return []

    def indirect_sites(self) -> list[CallSite]:
        return [site for site in self.call_sites if site.indirect]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.nodes))

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class IndirectCall:
    """A call through a function pointer, awaiting points-to resolution."""

    caller: str
    expr: ast.Call
    location: SourceLocation


def build_direct_callgraph(program: Program) -> tuple[CallGraph, list[IndirectCall]]:
    """Build the call graph from direct calls; collect indirect call sites."""
    graph = CallGraph()
    indirect: list[IndirectCall] = []
    for name in program.defined_function_names():
        graph.add_node(name)
    for name, func in program.functions.items():
        for node in walk(func.body):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Ident):
                graph.add_edge(name, target.name, node.location, indirect=False)
            else:
                indirect.append(IndirectCall(caller=name, expr=node,
                                             location=node.location))
    return graph, indirect
