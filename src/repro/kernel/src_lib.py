"""Mini-kernel corpus: shared headers, list primitives and small utilities.

This file plays the role of ``include/linux/*.h`` plus ``lib/``: the type and
constant definitions every other corpus file relies on (GFP flags, list heads,
spinlocks, wait queues) and a few generic helpers.  It is parsed first so its
struct tags, typedefs and enum constants are visible to the rest of the build
through the shared :class:`~repro.minic.symtab.TypeRegistry`.
"""

FILENAME = "lib/kernel_lib.c"

SOURCE = r"""
/* ------------------------------------------------------------------ */
/* Basic types and constants (include/linux/types.h)                   */
/* ------------------------------------------------------------------ */

typedef unsigned int u32;
typedef unsigned short u16;
typedef unsigned char u8;
typedef int pid_t;
typedef unsigned int size_t;
typedef long ssize_t;
typedef unsigned long gfp_t;

#define NULL 0
#define EINVAL 22
#define ENOMEM 12
#define ENOENT 2
#define EBADF 9
#define EAGAIN 11
#define EFAULT 14

/* GFP allocation flags: GFP_WAIT is the bit that allows sleeping. */
#define GFP_WAIT 16
#define GFP_ATOMIC 1
#define GFP_KERNEL 17

#define PAGE_SIZE 4096
#define MAX_ERRNO 4095

/* ------------------------------------------------------------------ */
/* Doubly-linked circular lists (include/linux/list.h)                 */
/* ------------------------------------------------------------------ */

struct list_head {
    struct list_head *next;
    struct list_head *prev;
};

void INIT_LIST_HEAD(struct list_head *head nonnull)
{
    head->next = head;
    head->prev = head;
}

void list_add(struct list_head *entry nonnull, struct list_head *head nonnull)
{
    struct list_head *first = head->next;
    entry->next = first;
    entry->prev = head;
    first->prev = entry;
    head->next = entry;
}

void list_add_tail(struct list_head *entry nonnull, struct list_head *head nonnull)
{
    struct list_head *last = head->prev;
    entry->next = head;
    entry->prev = last;
    last->next = entry;
    head->prev = entry;
}

void list_del(struct list_head *entry nonnull)
{
    struct list_head *before = entry->prev;
    struct list_head *after = entry->next;
    before->next = after;
    after->prev = before;
    entry->next = 0;
    entry->prev = 0;
}

int list_empty(struct list_head *head nonnull)
{
    return head->next == head;
}

int list_length(struct list_head *head nonnull)
{
    int count = 0;
    struct list_head *pos;
    for (pos = head->next; pos != head; pos = pos->next) {
        count = count + 1;
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* Spinlocks and interrupt control (include/linux/spinlock.h)          */
/* ------------------------------------------------------------------ */

struct spinlock {
    int locked;
    int owner_cpu;
    char name[16];
};

void spin_lock_init(struct spinlock *lock nonnull)
{
    lock->locked = 0;
    lock->owner_cpu = -1;
}

void spin_lock(struct spinlock *lock nonnull)
{
    /* Uniprocessor model: taking the lock just records ownership. */
    lock->locked = lock->locked + 1;
    lock->owner_cpu = smp_processor_id();
}

void spin_unlock(struct spinlock *lock nonnull)
{
    lock->locked = lock->locked - 1;
    if (lock->locked == 0) {
        lock->owner_cpu = -1;
    }
}

unsigned long spin_lock_irqsave(struct spinlock *lock nonnull)
{
    unsigned long flags = __hw_save_flags();
    __hw_cli();
    spin_lock(lock);
    return flags;
}

void spin_unlock_irqrestore(struct spinlock *lock nonnull, unsigned long flags)
{
    spin_unlock(lock);
    __hw_restore_flags(flags);
}

void local_irq_disable(void)
{
    __hw_cli();
}

void local_irq_enable(void)
{
    __hw_sti();
}

unsigned long local_irq_save(void)
{
    unsigned long flags = __hw_save_flags();
    __hw_cli();
    return flags;
}

void local_irq_restore(unsigned long flags)
{
    __hw_restore_flags(flags);
}

int irqs_disabled(void)
{
    return __hw_irqs_disabled();
}

/* ------------------------------------------------------------------ */
/* Wait queues and completion (include/linux/wait.h)                   */
/* ------------------------------------------------------------------ */

struct wait_queue {
    struct list_head waiters;
    int wake_count;
};

void init_waitqueue(struct wait_queue *wq nonnull)
{
    INIT_LIST_HEAD(&wq->waiters);
    wq->wake_count = 0;
}

struct completion {
    int done;
    struct wait_queue wait;
};

void init_completion(struct completion *c nonnull)
{
    c->done = 0;
    init_waitqueue(&c->wait);
}

/* ------------------------------------------------------------------ */
/* Small generic helpers (lib/string.c style, on top of builtins)      */
/* ------------------------------------------------------------------ */

unsigned int kstrlen(char * nullterm s)
{
    unsigned int n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}

int kstrncmp(char * nullterm a, char * nullterm b, unsigned int limit)
{
    unsigned int i = 0;
    while (i < limit) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) {
                return -1;
            }
            return 1;
        }
        if (a[i] == 0) {
            return 0;
        }
        i = i + 1;
    }
    return 0;
}

void copy_bytes(char * count(n) dst, char * count(n) src, unsigned int n)
{
    unsigned int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = src[i];
    }
}

void fill_bytes(char * count(n) dst, int value, unsigned int n)
{
    unsigned int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = (char)value;
    }
}

unsigned int checksum_bytes(char * count(n) data, unsigned int n)
{
    unsigned int sum = 0;
    unsigned int i;
    for (i = 0; i < n; i = i + 1) {
        sum = sum + (unsigned int)(unsigned char)data[i];
        sum = (sum << 1) | (sum >> 31);
    }
    return sum;
}

/* A counted sample buffer: the canonical field-relative count(n) shape.
 * sum_samples walks it with the idiomatic i < buf->n guard, which the
 * interval layer discharges statically; sum_samples_overrun is its
 * off-by-one twin (i <= buf->n) and must keep its run-time index check;
 * get_sample guards a single access with an explicit range test. */
struct sample_buf {
    int n;
    int * count(n) a;
};

int sum_samples(struct sample_buf *buf nonnull)
{
    int s = 0;
    int i;
    for (i = 0; i < buf->n; i = i + 1) {
        s = s + buf->a[i];
    }
    return s;
}

int sum_samples_overrun(struct sample_buf *buf nonnull)
{
    int s = 0;
    int i;
    for (i = 0; i <= buf->n; i = i + 1) {
        s = s + buf->a[i];
    }
    return s;
}

int get_sample(struct sample_buf *buf nonnull, int i)
{
    if (i >= 0 && i < buf->n) {
        return buf->a[i];
    }
    return -EINVAL;
}

/* Relational-bound shapes: neither loop tests the annotated bound (n)
 * directly, so per-variable ranges and syntactic guard matching both
 * fail — only the difference-bound domain discharges the index check,
 * by closing i <= limit through limit == n - 1 (and i < m through
 * m == n).  sum_suffix_overrun is the derived-bound off-by-one twin
 * (limit == n, i <= limit allows i == n) and must keep its check. */
int sum_prefix_derived(int * count(n) a, int n)
{
    int limit = n - 1;
    int s = 0;
    int i;
    for (i = 0; i <= limit; i = i + 1) {
        s = s + a[i];
    }
    return s;
}

int sum_alias_bound(int * count(n) a, int n)
{
    int m = n;
    int s = 0;
    int i;
    for (i = 0; i < m; i = i + 1) {
        s = s + a[i];
    }
    return s;
}

int sum_suffix_overrun(int * count(n) a, int n)
{
    int limit = n;
    int s = 0;
    int i;
    for (i = 0; i <= limit; i = i + 1) {
        s = s + a[i];
    }
    return s;
}

/* Error-pointer helpers (include/linux/err.h). */
int IS_ERR_VALUE(long value)
{
    return value < 0 && value >= -MAX_ERRNO;
}
"""
