"""Mini-kernel corpus: the system call layer (arch/i386/kernel/entry.S analogue).

System calls are dispatched through a function-pointer table, charging the
fixed trap cost on entry — the path measured by ``lat_syscall`` and the entry
point every hbench workload goes through.
"""

FILENAME = "kernel/syscall.c"

SOURCE = r"""
#define NR_SYSCALLS 16

#define SYS_GETPID 0
#define SYS_OPEN 1
#define SYS_READ 2
#define SYS_WRITE 3
#define SYS_CLOSE 4
#define SYS_FORK 5
#define SYS_EXIT 6
#define SYS_PIPE_WRITE 7
#define SYS_PIPE_READ 8
#define SYS_SEEK 9
#define SYS_NULL 10

typedef long (*syscall_fn_t)(long a, long b, long c);

static syscall_fn_t syscall_table[NR_SYSCALLS];
static unsigned int syscall_count;

/* ------------------------------------------------------------------ */
/* Individual system call implementations                              */
/* ------------------------------------------------------------------ */

long sys_getpid(long a, long b, long c)
{
    return (long)current_pid();
}

long sys_null(long a, long b, long c)
{
    /* The "do nothing" syscall lat_syscall measures. */
    return 0;
}

long sys_read(long fd, long buf, long count)
{
    return (long)vfs_read((int)fd, (char * trusted)buf, (unsigned int)count);
}

long sys_write(long fd, long buf, long count)
{
    return (long)vfs_write((int)fd, (char * trusted)buf, (unsigned int)count);
}

long sys_close(long fd, long b, long c)
{
    return (long)vfs_close((int)fd);
}

long sys_seek(long fd, long pos, long c)
{
    return (long)vfs_seek((int)fd, (unsigned int)pos);
}

long sys_fork(long a, long b, long c) blocking
{
    struct task_struct *child = do_fork(0);
    if (child == 0) {
        return -ENOMEM;
    }
    return (long)child->pid;
}

long sys_exit(long code, long b, long c)
{
    struct task_struct *task = get_current();
    if (task != 0 && task->pid != 1) {
        do_exit(task, (int)code);
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Dispatch                                                            */
/* ------------------------------------------------------------------ */

long do_syscall(int nr, long a, long b, long c)
{
    syscall_fn_t handler;
    __hw_syscall_overhead();
    if (nr < 0 || nr >= NR_SYSCALLS) {
        return -EINVAL;
    }
    handler = syscall_table[nr];
    if (handler == 0) {
        return -EINVAL;
    }
    syscall_count = syscall_count + 1;
    return handler(a, b, c);
}

unsigned int syscalls_executed(void)
{
    return syscall_count;
}

void syscall_init(void)
{
    int i;
    for (i = 0; i < NR_SYSCALLS; i = i + 1) {
        syscall_table[i] = 0;
    }
    syscall_table[SYS_GETPID] = sys_getpid;
    syscall_table[SYS_READ] = sys_read;
    syscall_table[SYS_WRITE] = sys_write;
    syscall_table[SYS_CLOSE] = sys_close;
    syscall_table[SYS_SEEK] = sys_seek;
    syscall_table[SYS_FORK] = sys_fork;
    syscall_table[SYS_EXIT] = sys_exit;
    syscall_table[SYS_NULL] = sys_null;
    syscall_count = 0;
}
"""
