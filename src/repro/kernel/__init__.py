"""The mini-kernel: corpus, build system, boot and workloads."""

from .boot import KernelInstance, boot_kernel
from .build import (
    BuildConfig,
    KernelBuild,
    baseline_build,
    build_kernel,
    ccount_build,
    deputized_build,
    parse_corpus,
)
from .corpus import (
    ALL_FILES,
    BOOT_SEQUENCE,
    KERNEL_FILES,
    USER_FILES,
    CorpusFile,
    corpus_line_count,
    kernel_line_count,
)
from .workloads import (
    WorkloadResult,
    workload_boot_to_login,
    workload_deferred_work,
    workload_fork,
    workload_light_use,
    workload_module_load,
)

__all__ = [
    "KernelInstance", "boot_kernel",
    "BuildConfig", "KernelBuild", "baseline_build", "build_kernel",
    "ccount_build", "deputized_build", "parse_corpus",
    "ALL_FILES", "BOOT_SEQUENCE", "KERNEL_FILES", "USER_FILES", "CorpusFile",
    "corpus_line_count", "kernel_line_count",
    "WorkloadResult", "workload_boot_to_login", "workload_deferred_work",
    "workload_fork", "workload_light_use", "workload_module_load",
]
