"""The mini-kernel corpus: file list and raw sources.

The corpus plays the role of the paper's stripped-down Linux 2.6.15.5 tree:
enough of a kernel (memory management, scheduler, interrupts, pipes, a
filesystem, a network stack, drivers, syscalls, a module loader) to boot on
the abstract machine and run the hbench-style workloads, written in MiniC and
annotated the way the paper's conversion annotated the real kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import (
    src_bugs,
    src_drivers,
    src_fs,
    src_ipc,
    src_irq,
    src_lib,
    src_mm,
    src_module,
    src_net,
    src_sched,
    src_syscall,
    src_userbench,
)


@dataclass(frozen=True)
class CorpusFile:
    """One source file of the corpus."""

    filename: str
    source: str
    kernel: bool = True      # False for user-level code (never instrumented)


#: Kernel sources, in dependency order (earlier files define the types and
#: prototypes later files use, mirroring shared headers).
KERNEL_FILES: tuple[CorpusFile, ...] = (
    CorpusFile(src_lib.FILENAME, src_lib.SOURCE),
    CorpusFile(src_mm.FILENAME, src_mm.SOURCE),
    CorpusFile(src_sched.FILENAME, src_sched.SOURCE),
    CorpusFile(src_irq.FILENAME, src_irq.SOURCE),
    CorpusFile(src_ipc.FILENAME, src_ipc.SOURCE),
    CorpusFile(src_fs.FILENAME, src_fs.SOURCE),
    CorpusFile(src_net.FILENAME, src_net.SOURCE),
    CorpusFile(src_drivers.FILENAME, src_drivers.SOURCE),
    CorpusFile(src_syscall.FILENAME, src_syscall.SOURCE),
    CorpusFile(src_module.FILENAME, src_module.SOURCE),
    CorpusFile(src_bugs.FILENAME, src_bugs.SOURCE),
)

#: User-level sources linked after instrumentation (not deputized).
USER_FILES: tuple[CorpusFile, ...] = (
    CorpusFile(src_userbench.FILENAME, src_userbench.SOURCE, kernel=False),
)

ALL_FILES: tuple[CorpusFile, ...] = KERNEL_FILES + USER_FILES

#: The boot sequence, in order (each is a corpus function taking no arguments).
BOOT_SEQUENCE: tuple[str, ...] = (
    "mm_init",
    "sched_init",
    "irq_init",
    "ipc_init",
    "vfs_init",
    "net_init",
    "drivers_init",
    "syscall_init",
    "module_init_subsystem",
    "watchdog_init",
    "watchdog_register_handlers",
    "user_bench_init",
)


def kernel_line_count() -> int:
    """Total number of source lines in the kernel half of the corpus."""
    return sum(len(f.source.splitlines()) for f in KERNEL_FILES)


def corpus_line_count() -> int:
    """Total number of source lines in the whole corpus."""
    return sum(len(f.source.splitlines()) for f in ALL_FILES)
