"""Building the mini-kernel: parse, link, and (optionally) instrument.

This is the analogue of replacing ``gcc`` with ``deputy`` in the kernel
makefiles: a :class:`KernelBuild` describes which tools are applied, and
:func:`build_kernel` produces a linked :class:`~repro.machine.program.Program`
with the requested instrumentation, plus the per-tool conversion summaries the
harness reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..ccount import (
    CCountConfig,
    CCountInstrumentationResult,
    build_typeinfo,
)
from ..ccount import instrument as ccount_instrument
from ..deputy import DeputyOptions, InstrumentationResult
from ..deputy import instrument as deputy_instrument
from ..machine.program import Program
from ..minic.errors import MiniCError, SourceLocation
from ..minic.lexer import tokenize
from ..minic.parser import Parser
from ..minic.source import Preprocessor
from ..minic.symtab import TypeRegistry
from .corpus import ALL_FILES, KERNEL_FILES, USER_FILES, CorpusFile


@dataclass
class BuildConfig:
    """Which tools to apply when building the kernel."""

    deputy: bool = False
    ccount: bool = False
    deputy_options: DeputyOptions = field(default_factory=DeputyOptions)
    ccount_config: CCountConfig = field(default_factory=CCountConfig)
    include_user: bool = True
    defines: dict[str, str] = field(default_factory=dict)

    @property
    def label(self) -> str:
        tools = []
        if self.deputy:
            tools.append("deputy")
        if self.ccount:
            tools.append("ccount")
        return "+".join(tools) if tools else "baseline"


@dataclass
class KernelBuild:
    """A built kernel image and its conversion metadata."""

    program: Program
    config: BuildConfig
    deputy_result: Optional[InstrumentationResult] = None
    ccount_result: Optional[CCountInstrumentationResult] = None

    @property
    def label(self) -> str:
        return self.config.label


#: How many times each corpus file has been parsed in this process.  The
#: engine's parse-once guarantee is asserted against this counter.
PARSE_COUNTS: Counter[str] = Counter()


def reset_parse_counts() -> None:
    """Reset the per-file parse counter (used by tests)."""
    PARSE_COUNTS.clear()


def _parse_file(corpus_file: CorpusFile, registry: TypeRegistry,
                preprocessor: Preprocessor):
    """Preprocess and parse one corpus file against the shared state."""
    PARSE_COUNTS[corpus_file.filename] += 1
    text = preprocessor.process(corpus_file.source, corpus_file.filename)
    tokens = tokenize(text, corpus_file.filename)
    parser = Parser(tokens, corpus_file.filename, registry)
    return parser.parse_translation_unit()


def parse_corpus(files: tuple[CorpusFile, ...] = ALL_FILES,
                 defines: dict[str, str] | None = None,
                 registry: TypeRegistry | None = None,
                 preprocessor: Preprocessor | None = None) -> Program:
    """Parse and link corpus ``files``.

    The type registry *and* the preprocessor macro table are shared across
    files, which is how the corpus models kernel-wide headers (GFP flags,
    buffer sizes, syscall numbers) without a real ``#include`` mechanism.
    """
    registry = registry or TypeRegistry()
    preprocessor = preprocessor or Preprocessor(defines)
    program = Program(registry=registry)
    for corpus_file in files:
        program.add_unit(_parse_file(corpus_file, registry, preprocessor))
    # Stash the shared preprocessor so later additions (user files) see the
    # same macro environment.
    program._corpus_preprocessor = preprocessor  # type: ignore[attr-defined]
    return program


@dataclass(frozen=True)
class ParseDiagnostic:
    """A frontend error confined to one translation unit."""

    filename: str
    kind: str            # "lex-error", "parse-error", "type-error", ...
    message: str
    location: SourceLocation

    def to_dict(self) -> dict:
        return {"filename": self.filename, "kind": self.kind,
                "message": self.message,
                "file": self.location.filename, "line": self.location.line,
                "column": self.location.column}


def _diagnostic_kind(error: MiniCError) -> str:
    name = type(error).__name__.rstrip("_")
    parts = []
    for ch in name:
        if ch.isupper() and parts:
            parts.append("-")
        parts.append(ch.lower())
    return "".join(parts)


def parse_corpus_tolerant(
    files: tuple[CorpusFile, ...] = ALL_FILES,
    defines: dict[str, str] | None = None,
    registry: TypeRegistry | None = None,
    preprocessor: Preprocessor | None = None,
) -> tuple[Program, tuple[ParseDiagnostic, ...]]:
    """Parse and link the corpus, isolating frontend errors per file.

    A lex/parse/type error in one translation unit no longer aborts the
    whole build: the broken file is skipped (its functions simply don't
    exist in the linked program — every analysis stays sound over the
    files that *did* parse) and reported as a structured diagnostic.
    Link-time errors (duplicate definitions) skip the offending unit the
    same way.
    """
    registry = registry or TypeRegistry()
    preprocessor = preprocessor or Preprocessor(defines)
    program = Program(registry=registry)
    diagnostics: list[ParseDiagnostic] = []
    linked: list = []
    for corpus_file in files:
        try:
            unit = _parse_file(corpus_file, registry, preprocessor)
            program.add_unit(unit)
            linked.append(unit)
        except MiniCError as error:
            diagnostics.append(ParseDiagnostic(
                filename=corpus_file.filename,
                kind=_diagnostic_kind(error),
                message=error.message,
                location=error.location))
            if len(program.units) != len(linked):
                # add_unit failed midway; relink the good units so the
                # broken one leaves no partial functions/globals behind.
                program = Program(registry=registry)
                for good in linked:
                    program.add_unit(good)
    program._corpus_preprocessor = preprocessor  # type: ignore[attr-defined]
    return program, tuple(diagnostics)


def build_kernel(config: BuildConfig | None = None,
                 base_program: Program | None = None) -> KernelBuild:
    """Build the kernel with the tools requested by ``config``.

    Instrumentation is applied to the kernel files only; the user-level
    benchmark sources are linked in afterwards, exactly as un-deputized user
    programs run on top of a deputized kernel.

    ``base_program`` lets a caller (the analysis engine) supply an already
    parsed kernel program instead of re-parsing the corpus.  Instrumentation
    mutates the program in place, so the caller must hand over a private copy
    (:meth:`repro.engine.AnalysisEngine.fresh_program`).
    """
    config = config or BuildConfig()
    program = base_program or parse_corpus(KERNEL_FILES, config.defines)
    build = KernelBuild(program=program, config=config)

    if config.deputy:
        build.deputy_result = deputy_instrument.instrument_program(
            program, config.deputy_options)
    if config.ccount:
        typeinfo = build_typeinfo(program)
        build.ccount_result = ccount_instrument.instrument_program(
            program, config.ccount_config, typeinfo)

    if config.include_user:
        preprocessor = getattr(program, "_corpus_preprocessor", None) or Preprocessor(
            config.defines)
        for corpus_file in USER_FILES:
            program.add_unit(_parse_file(corpus_file, program.registry, preprocessor))
    return build


def baseline_build() -> KernelBuild:
    """A plain, uninstrumented kernel build."""
    return build_kernel(BuildConfig())


def deputized_build(options: DeputyOptions | None = None) -> KernelBuild:
    """A Deputy-instrumented kernel build."""
    return build_kernel(BuildConfig(deputy=True,
                                    deputy_options=options or DeputyOptions()))


def ccount_build(config: CCountConfig | None = None) -> KernelBuild:
    """A CCount-instrumented kernel build."""
    return build_kernel(BuildConfig(ccount=True,
                                    ccount_config=config or CCountConfig()))
