"""Mini-kernel corpus: processes and the scheduler (kernel/sched.c, kernel/fork.c).

Tasks are real heap objects linked on a run queue; ``do_fork`` allocates and
copies a task (the workload behind the paper's fork overhead number), and
``schedule`` is the canonical blocking primitive everything else reaches.
The model is cooperative — a "context switch" updates the current pointer and
charges the hardware cost — which preserves every allocation and pointer-write
path the analyses instrument without needing preemptive threading.
"""

FILENAME = "kernel/sched.c"

SOURCE = r"""
#define TASK_RUNNING 0
#define TASK_INTERRUPTIBLE 1
#define TASK_ZOMBIE 2
#define MAX_OPEN_FILES 8
#define MM_AREA_SLOTS 4

/* ------------------------------------------------------------------ */
/* Task and address-space structures                                    */
/* ------------------------------------------------------------------ */

struct vm_area {
    unsigned long start;
    unsigned long end;
    unsigned int prot;
    struct vm_area *next;
};

struct mm_struct {
    unsigned int users;
    unsigned int total_pages;
    struct vm_area *mmap;
    unsigned long start_brk;
    unsigned long brk;
};

struct task_struct {
    /* run_list is deliberately the first member so that the run queue's
       list_head can be converted back to the task with a single (trusted)
       cast -- the corpus's stand-in for container_of(). */
    struct list_head run_list;
    pid_t pid;
    int state;
    int exit_code;
    unsigned int flags;
    struct mm_struct *mm;
    struct task_struct *parent;
    struct list_head children;
    struct list_head sibling;
    void *files[MAX_OPEN_FILES];
    char comm[16];
    unsigned long utime;
};

static struct task_struct *current_task;
static struct task_struct init_task;
static struct list_head run_queue;
static struct spinlock runqueue_lock;
static pid_t next_pid;
static unsigned int context_switches;
static unsigned int total_forks;

struct task_struct *get_current(void)
{
    return current_task;
}

pid_t current_pid(void)
{
    if (current_task == 0) {
        return 0;
    }
    return current_task->pid;
}

/* ------------------------------------------------------------------ */
/* The scheduler                                                        */
/* ------------------------------------------------------------------ */

void schedule(void) blocking
{
    struct task_struct *next;
    struct list_head *entry;
    unsigned long flags;
    __hw_might_sleep();
    flags = spin_lock_irqsave(&runqueue_lock);
    if (list_empty(&run_queue)) {
        spin_unlock_irqrestore(&runqueue_lock, flags);
        return;
    }
    entry = run_queue.next;
    list_del(entry);
    list_add_tail(entry, &run_queue);
    /* container_of(entry, struct task_struct, run_list): run_list is the
       first member, so the conversion is a (trusted) pointer cast. */
    next = (struct task_struct * trusted)entry;
    spin_unlock_irqrestore(&runqueue_lock, flags);
    if (next != current_task && next != 0) {
        context_switches = context_switches + 1;
        current_task = next;
        __hw_context_switch();
    }
}

void wake_up_process(struct task_struct *task nonnull)
{
    unsigned long flags;
    flags = spin_lock_irqsave(&runqueue_lock);
    if (task->state != TASK_RUNNING) {
        task->state = TASK_RUNNING;
        list_add_tail(&task->run_list, &run_queue);
    }
    spin_unlock_irqrestore(&runqueue_lock, flags);
}

void wait_for_completion(struct completion *done nonnull) blocking
{
    int spins = 0;
    __hw_might_sleep();
    while (done->done == 0 && spins < 4) {
        schedule();
        spins = spins + 1;
    }
    if (done->done > 0) {
        done->done = done->done - 1;
    }
}

void complete(struct completion *done nonnull)
{
    done->done = done->done + 1;
    done->wait.wake_count = done->wait.wake_count + 1;
}

/* ------------------------------------------------------------------ */
/* Address-space copying (kernel/fork.c)                                */
/* ------------------------------------------------------------------ */

struct mm_struct *mm_alloc(void)
{
    struct mm_struct *mm;
    mm = (struct mm_struct *)kmalloc(sizeof(struct mm_struct), GFP_KERNEL);
    if (mm == 0) {
        return 0;
    }
    __ccount_rtti((void *)mm, "struct mm_struct");
    mm->users = 1;
    mm->total_pages = 0;
    mm->mmap = 0;
    mm->start_brk = 0;
    mm->brk = 0;
    return mm;
}

int mm_add_area(struct mm_struct *mm nonnull, unsigned long start,
                unsigned long end, unsigned int prot)
{
    struct vm_area *area;
    area = (struct vm_area *)kmalloc(sizeof(struct vm_area), GFP_KERNEL);
    if (area == 0) {
        return -ENOMEM;
    }
    __ccount_rtti((void *)area, "struct vm_area");
    area->start = start;
    area->end = end;
    area->prot = prot;
    area->next = mm->mmap;
    mm->mmap = area;
    mm->total_pages = mm->total_pages + (unsigned int)((end - start) / PAGE_SIZE);
    return 0;
}

struct mm_struct *mm_copy(struct mm_struct *old nonnull)
{
    struct mm_struct *mm;
    struct vm_area *area;
    struct vm_area *copy;
    mm = mm_alloc();
    if (mm == 0) {
        return 0;
    }
    for (area = old->mmap; area != 0; area = area->next) {
        copy = (struct vm_area *)kmalloc(sizeof(struct vm_area), GFP_KERNEL);
        if (copy == 0) {
            return mm;
        }
        __ccount_rtti((void *)copy, "struct vm_area");
        __ccount_memcpy((void *)copy, (void *)area, sizeof(struct vm_area), 0);
        copy->next = mm->mmap;
        mm->mmap = copy;
        mm->total_pages = mm->total_pages + (unsigned int)((area->end - area->start) / PAGE_SIZE);
    }
    return mm;
}

void mm_release(struct mm_struct *mm)
{
    struct vm_area *area;
    struct vm_area *next;
    if (mm == 0) {
        return;
    }
    mm->users = mm->users - 1;
    if (mm->users > 0) {
        return;
    }
    __ccount_delay_begin();
    area = mm->mmap;
    while (area != 0) {
        next = area->next;
        area->next = 0;
        kfree((void *)area);
        area = next;
    }
    mm->mmap = 0;
    kfree((void *)mm);
    __ccount_delay_end();
}

/* ------------------------------------------------------------------ */
/* fork / exit                                                          */
/* ------------------------------------------------------------------ */

struct task_struct *do_fork(unsigned int flags) blocking
{
    struct task_struct *child;
    struct task_struct *parent = current_task;
    int i;
    child = (struct task_struct *)kmalloc(sizeof(struct task_struct), GFP_KERNEL);
    if (child == 0) {
        return 0;
    }
    __ccount_rtti((void *)child, "struct task_struct");
    next_pid = next_pid + 1;
    child->pid = next_pid;
    child->state = TASK_RUNNING;
    child->exit_code = 0;
    child->flags = flags;
    child->parent = parent;
    child->utime = 0;
    INIT_LIST_HEAD(&child->run_list);
    INIT_LIST_HEAD(&child->children);
    INIT_LIST_HEAD(&child->sibling);
    for (i = 0; i < MAX_OPEN_FILES; i = i + 1) {
        child->files[i] = 0;
    }
    for (i = 0; i < 16; i = i + 1) {
        child->comm[i] = 0;
    }
    if (parent != 0) {
        copy_bytes(child->comm, parent->comm, 16);
        if (parent->mm != 0) {
            child->mm = mm_copy(parent->mm);
        } else {
            child->mm = mm_alloc();
        }
        list_add_tail(&child->sibling, &parent->children);
    } else {
        child->mm = mm_alloc();
    }
    wake_up_process(child);
    total_forks = total_forks + 1;
    return child;
}

void release_task(struct task_struct *task nonnull)
{
    unsigned long flags;
    flags = spin_lock_irqsave(&runqueue_lock);
    if (task->run_list.next != 0) {
        list_del(&task->run_list);
    }
    if (task->sibling.next != 0) {
        list_del(&task->sibling);
    }
    spin_unlock_irqrestore(&runqueue_lock, flags);
    task->parent = 0;
    {
        /* CCount fix: the task's own reference must drop before the free. */
        struct mm_struct *old_mm = task->mm;
        task->mm = 0;
        mm_release(old_mm);
    }
    kfree((void *)task);
}

int do_exit(struct task_struct *task nonnull, int code)
{
    task->state = TASK_ZOMBIE;
    task->exit_code = code;
    release_task(task);
    return 0;
}

unsigned int fork_count(void)
{
    return total_forks;
}

unsigned int context_switch_count(void)
{
    return context_switches;
}

/* ------------------------------------------------------------------ */
/* Boot-time initialisation                                             */
/* ------------------------------------------------------------------ */

void sched_init(void)
{
    int i;
    INIT_LIST_HEAD(&run_queue);
    spin_lock_init(&runqueue_lock);
    next_pid = 1;
    context_switches = 0;
    total_forks = 0;
    init_task.pid = 1;
    init_task.state = TASK_RUNNING;
    init_task.exit_code = 0;
    init_task.flags = 0;
    init_task.mm = 0;
    init_task.parent = 0;
    init_task.utime = 0;
    INIT_LIST_HEAD(&init_task.run_list);
    INIT_LIST_HEAD(&init_task.children);
    INIT_LIST_HEAD(&init_task.sibling);
    for (i = 0; i < MAX_OPEN_FILES; i = i + 1) {
        init_task.files[i] = 0;
    }
    init_task.comm[0] = 'i';
    init_task.comm[1] = 'n';
    init_task.comm[2] = 'i';
    init_task.comm[3] = 't';
    init_task.comm[4] = 0;
    current_task = &init_task;
    list_add_tail(&init_task.run_list, &run_queue);
}
"""
