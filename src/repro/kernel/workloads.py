"""Scripted workloads that drive the booted kernel.

These are the reproduction's stand-ins for the system-level activity the
paper measures with CCount: booting to the login prompt, light interactive
use (idling plus copying a kernel image in over the network), repeated fork,
and repeated module loading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .boot import KernelInstance

#: Port numbers used by the networking workloads.
PORT_A = 1000
PORT_B = 2000
#: Syscall numbers (mirror kernel/syscall.c).
SYS_FORK = 5
SYS_EXIT = 6


@dataclass
class WorkloadResult:
    """What a workload did and what it cost."""

    name: str
    cycles: int = 0
    operations: int = 0
    details: dict[str, int] = field(default_factory=dict)

    def per_operation(self) -> float:
        return self.cycles / self.operations if self.operations else float(self.cycles)


def _measured(kernel: KernelInstance, name: str):
    class _Ctx:
        def __enter__(self):
            self.before = kernel.interp.counter.cycles
            return self

        def __exit__(self, *exc):
            self.cycles = kernel.interp.counter.cycles - self.before
            return False

    return _Ctx()


# ---------------------------------------------------------------------------
# Boot-to-login and light use (CCount's §2.2 free-verification workloads)
# ---------------------------------------------------------------------------

def workload_boot_to_login(kernel: KernelInstance,
                           processes: int = 6,
                           files: int = 4,
                           packets: int = 8) -> WorkloadResult:
    """Everything from boot until a login prompt could appear.

    Spawns early userspace (a few forks), opens and populates files, brings
    up networking, loads a module, and handles a burst of timer interrupts —
    the allocation/free profile of the paper's boot measurement, scaled down.
    """
    interp = kernel.interp
    result = WorkloadResult(name="boot_to_login")
    with _measured(kernel, "boot") as measure:
        if not kernel.booted:
            kernel.boot()
        # Early userspace: init forks a few daemons, some exit immediately.
        for index in range(processes):
            pid = interp.run("do_syscall", SYS_FORK, 0, 0, 0).value
            result.operations += 1
            if index % 2 == 1 and pid > 0:
                interp.run("do_syscall", SYS_EXIT, 0, 0, 0)
        # Mount-time file activity.
        for index in range(files):
            name = kernel.interp.intern_string(f"boot_file_{index}")
            kernel.interp.run("vfs_create", name, 1)
            fd = interp.run("vfs_open", name).value
            if fd >= 0:
                data = kernel.interp.intern_string("startup configuration data")
                interp.run("vfs_write", fd, data, 27)
                interp.run("vfs_seek", fd, 0)
                interp.run("vfs_read", fd, data, 16)
                interp.run("vfs_close", fd)
            result.operations += 4
        # Bring up networking and exchange a few datagrams.
        sock_a = interp.run("sock_create", 17).value
        sock_b = interp.run("sock_create", 17).value
        interp.run("sock_bind", sock_a, PORT_A)
        interp.run("sock_bind", sock_b, PORT_B)
        payload = kernel.interp.intern_string("boot-time probe packet")
        for _ in range(packets):
            interp.run("udp_sendto", sock_a, payload, 22, PORT_B)
            interp.run("udp_recv", sock_b, payload, 22)
            result.operations += 2
        # Load and unload one module (a driver brought up at boot).
        module_payload = kernel.interp.intern_string("module payload " * 4)
        name = kernel.interp.intern_string("e1000")
        module = interp.run("load_module", name, module_payload, 60).value
        if module:
            interp.run("unload_module", module)
        result.operations += 2
        # A burst of timer ticks while all this happens.
        for _ in range(10):
            kernel.trigger_interrupt(0)
            result.operations += 1
        interp.run("sock_close", sock_a)
        interp.run("sock_close", sock_b)
    result.cycles = measure.cycles
    result.details["forks"] = int(interp.run("fork_count").value)
    result.details["vfs_reads"] = int(interp.run("vfs_read_count").value)
    result.details["loopback_packets"] = int(interp.run("net_loopback_packets").value)
    return result


def workload_light_use(kernel: KernelInstance,
                       idle_ticks: int = 20,
                       transfer_chunks: int = 24) -> WorkloadResult:
    """Idle for a while, then copy a new kernel image in over the network.

    The paper's "light use" measurement (leaving the system idle and scp-ing
    a kernel in) drops the good-free percentage slightly below 100%; this is
    its scaled-down analogue: timer ticks while idle, then a TCP transfer
    whose payload is written to a file.
    """
    interp = kernel.interp
    result = WorkloadResult(name="light_use")
    with _measured(kernel, "light_use") as measure:
        for _ in range(idle_ticks):
            kernel.trigger_interrupt(0)
            interp.run("schedule")
            result.operations += 1
        sock_a = interp.run("sock_create", 6).value
        sock_b = interp.run("sock_create", 6).value
        interp.run("sock_bind", sock_a, PORT_A + 1)
        interp.run("sock_bind", sock_b, PORT_B + 1)
        interp.run("tcp_connect", sock_a, PORT_B + 1)
        image_name = kernel.interp.intern_string("vmlinuz-new")
        interp.run("vfs_create", image_name, 1)
        fd = interp.run("vfs_open", image_name).value
        chunk = kernel.interp.intern_string("kernel image chunk data payload!" * 2)
        for _ in range(transfer_chunks):
            interp.run("tcp_send", sock_a, chunk, 64)
            got = interp.run("tcp_recv", sock_b, chunk, 64).value
            if fd >= 0 and got > 0:
                interp.run("vfs_seek", fd, 0)
                interp.run("vfs_write", fd, chunk, got)
            result.operations += 3
        if fd >= 0:
            interp.run("vfs_close", fd)
        interp.run("sock_close", sock_a)
        interp.run("sock_close", sock_b)
        # A couple of interactive commands fork and exit.
        for _ in range(3):
            interp.run("do_syscall", SYS_FORK, 0, 0, 0)
            interp.run("do_syscall", SYS_EXIT, 0, 0, 0)
            result.operations += 2
    result.cycles = measure.cycles
    result.details["skbs_in_flight"] = int(interp.run("net_skbs_in_flight").value)
    return result


# ---------------------------------------------------------------------------
# The overhead workloads (fork, module loading) from §2.2
# ---------------------------------------------------------------------------

def workload_fork(kernel: KernelInstance, iterations: int = 12) -> WorkloadResult:
    """Repeated fork+exit through the syscall layer."""
    interp = kernel.interp
    result = WorkloadResult(name="fork", operations=iterations)
    with _measured(kernel, "fork") as measure:
        interp.run("user_fork_exit", iterations)
    result.cycles = measure.cycles
    result.details["forks"] = int(interp.run("fork_count").value)
    return result


def workload_module_load(kernel: KernelInstance, iterations: int = 8,
                         payload_size: int = 256) -> WorkloadResult:
    """Repeated module load/unload."""
    interp = kernel.interp
    result = WorkloadResult(name="module_load", operations=iterations)
    payload = kernel.interp.intern_string("x" * payload_size)
    name = kernel.interp.intern_string("testmod")
    with _measured(kernel, "module_load") as measure:
        for _ in range(iterations):
            module = interp.run("load_module", name, payload, payload_size).value
            if module:
                interp.run("unload_module", module)
    result.cycles = measure.cycles
    result.details["modules_left"] = int(interp.run("module_count").value)
    return result


def workload_deferred_work(kernel: KernelInstance, rounds: int = 2) -> WorkloadResult:
    """Run the deferred-work handlers (process context; legal blocking)."""
    interp = kernel.interp
    result = WorkloadResult(name="deferred_work", operations=rounds)
    with _measured(kernel, "deferred_work") as measure:
        for value in range(rounds):
            interp.run("run_deferred_work", value)
            interp.run("notify_listeners_atomic", value)
    result.cycles = measure.cycles
    return result
