"""Speculative two-pass parallel parse front-end.

The corpus is parsed against *shared* state — one macro table and one
:class:`~repro.minic.symtab.TypeRegistry` across every TU, the stand-in
for kernel-wide headers — which made parse the last strictly serial phase
of the engine pipeline.  This module parallelizes it without giving up
byte-identical output:

**Pass one (speculative).**  The first TU is parsed serially in the parent;
its post-state is the *seed*.  Every later TU is then parsed in a worker
against a private copy of the seed registry and an exactly *predicted*
macro table (:meth:`Preprocessor.scan_directives` replays only the
preprocessor directives of the intervening TUs — exact, because ``#ifdef``
consults defined-ness and ``#define``/``#undef`` never expand their
payload).  The worker records everything the parse *observed* of the
shared state (macro reads, typedef/enum-constant lookups, struct/enum tag
references — see :class:`RecordingPreprocessor` and
:class:`RecordingTypeRegistry`) plus everything it *wrote* (the TU's
effect delta).

**Pass two (replay).**  The parent consumes worker results in MANIFEST
order.  A TU is *adopted* when its recorded read set is consistent with
the canonical state at its position — i.e. the speculative parse observed
exactly what a serial parse would have observed — after which its effect
delta is applied and its type references are remapped onto the canonical
registry objects.  Any divergence (a mid-corpus typedef definer, a struct
completed by an intervening TU, a worker parse error) falls back to a
plain serial parse of that one TU at the canonical state, reproducing the
serial semantics — including error behaviour — exactly.

Workers also speculatively solve per-function dataflow facts for the TU
they parsed (``facts_of`` depends only on the ``FuncDef``), so the consts
phase can start before the last TU finishes parsing.  Functions whose body
folds ``sizeof`` of a struct/enum are excluded: that is the one place
parse-time facts could observe layout that a later TU completes.

Known residual: Deputy annotation expressions are not AST child nodes, so
a ``sizeof(struct ...)`` *inside an annotation* would keep a worker-local
(structurally identical) struct object after remap.  The corpus grammar
never produces one; the byte-identity assertions would catch it if it did.
"""

from __future__ import annotations

import copy
import multiprocessing
import queue as _queue
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..dataflow.domains import facts_of
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.ctypes import (
    CArray,
    CEnum,
    CFunc,
    CNamed,
    CPointer,
    CStruct,
    CType,
)
from ..minic.errors import MiniCError
from ..minic.lexer import tokenize
from ..minic.parser import Parser
from ..minic.pretty import PrettyPrinter
from ..minic.source import Preprocessor, RecordingPreprocessor
from ..minic.symtab import RecordingTypeRegistry, TypeRegistry
from ..minic.visitor import walk
from ..engine.scheduler import fork_available, usable_cpus
from .build import (
    PARSE_COUNTS,
    ParseDiagnostic,
    _diagnostic_kind,
    _parse_file,
    parse_corpus,
    parse_corpus_tolerant,
)
from .corpus import CorpusFile

#: Seconds between worker liveness checks while draining results.
_POLL_SECONDS = 10.0

#: AST attributes that may carry a CType needing canonical remapping.
_TYPE_ATTRS = ("ctype", "to_type", "of_type", "type")


@dataclass
class ParseEffects:
    """One TU's observations of — and mutations to — the shared state."""

    macro_reads: set[str] = field(default_factory=set)
    macro_sets: dict[str, str] = field(default_factory=dict)
    macro_dels: set[str] = field(default_factory=set)
    typedef_reads: set[str] = field(default_factory=set)
    typedef_writes: set[str] = field(default_factory=set)
    typedef_defs: dict[str, CType] = field(default_factory=dict)
    enum_constant_reads: set[str] = field(default_factory=set)
    enum_constant_writes: set[str] = field(default_factory=set)
    enum_constant_defs: dict[str, int] = field(default_factory=dict)
    struct_refs: set[str] = field(default_factory=set)
    struct_created: set[str] = field(default_factory=set)
    struct_completed: dict[str, CStruct] = field(default_factory=dict)
    enum_refs: set[str] = field(default_factory=set)
    enum_created: set[str] = field(default_factory=set)
    enum_completed: dict[str, CEnum] = field(default_factory=dict)
    anon_tags: int = 0


@dataclass
class ParallelParseStats:
    """What the two-pass parse did (surfaced in the engine's perf block)."""

    mode: str = "serial"          # "serial" | "inline" | "fork"
    jobs: int = 1
    units: int = 0
    speculated: int = 0           # worker parses attempted
    adopted: int = 0              # speculative results validated + merged
    fallbacks: int = 0            # TUs reparsed serially at canonical state
    worker_failures: int = 0      # worker parse raised (subset of fallbacks)
    facts_speculated: int = 0     # functions whose facts came from workers
    prescan_seconds: float = 0.0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "jobs": self.jobs, "units": self.units,
            "speculated": self.speculated, "adopted": self.adopted,
            "fallbacks": self.fallbacks,
            "worker_failures": self.worker_failures,
            "facts_speculated": self.facts_speculated,
            "prescan_seconds": round(self.prescan_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
        }


@dataclass
class ParallelParseResult:
    """A parsed+linked program plus the speculation byproducts."""

    program: Program
    diagnostics: tuple[ParseDiagnostic, ...]
    #: Speculatively solved per-function facts (only for adopted TUs whose
    #: functions are layout-hazard-free); feeds the consts phase.
    facts: dict[str, Any]
    stats: ParallelParseStats


@dataclass
class _SeedView:
    """Renders of everything a worker could observe at fork time."""

    typedefs: dict[str, str]
    enum_constants: dict[str, int]
    structs: dict[str, tuple[bool, Optional[str]]]
    enums: dict[str, tuple[bool, Optional[str]]]
    anon_counter: int


def _registry_view(registry: TypeRegistry, printer: PrettyPrinter) -> _SeedView:
    return _SeedView(
        typedefs={name: printer.type_name(ctype)
                  for name, ctype in registry.typedefs.items()},
        enum_constants=dict(registry.enum_constants),
        structs={key: (s.complete,
                       printer.print_type_definition(s) if s.complete else None)
                 for key, s in registry.structs.items()},
        enums={key: (e.complete,
                     printer.print_type_definition(e) if e.complete else None)
               for key, e in registry.enums.items()},
        anon_counter=registry._anon_counter,
    )


# ---------------------------------------------------------------------------
# Pass one: the speculative worker parse
# ---------------------------------------------------------------------------

def _layout_sensitive(ctype: CType) -> bool:
    """Whether ``sizeof(ctype)`` depends on struct/enum layout."""
    if isinstance(ctype, CNamed):
        return _layout_sensitive(ctype.underlying)
    if isinstance(ctype, (CStruct, CEnum)):
        return True
    if isinstance(ctype, CArray):
        return _layout_sensitive(ctype.element)
    if isinstance(ctype, CFunc):
        return True
    return False  # void/int/float/pointer sizes are fixed


def _sizeof_hazard_functions(unit: ast.TranslationUnit) -> set[str]:
    """Functions whose facts could observe a layout a later TU completes."""
    hazardous: set[str] = set()
    for decl in unit.decls:
        if not isinstance(decl, ast.FuncDef):
            continue
        for node in walk(decl):
            if (isinstance(node, ast.SizeofType)
                    and _layout_sensitive(node.of_type)):
                hazardous.add(decl.name)
                break
    return hazardous


def _speculative_parse(corpus_file: CorpusFile, seed_registry: TypeRegistry,
                       predicted_macros: dict[str, str],
                       speculate_facts: bool):
    """Parse one TU against private copies of the seed state.

    Returns ``(unit, effects, facts)``; raises ``MiniCError`` on parse
    failure (the caller falls back to a canonical serial parse, which
    reproduces the error semantics exactly).  Deliberately does *not*
    touch ``PARSE_COUNTS``: only the canonical merge counts the file.
    """
    snap = copy.deepcopy(seed_registry)
    registry = RecordingTypeRegistry(
        structs=snap.structs, enums=snap.enums, typedefs=snap.typedefs,
        enum_constants=snap.enum_constants, _anon_counter=snap._anon_counter)
    preprocessor = RecordingPreprocessor(predicted_macros)
    text = preprocessor.process(corpus_file.source, corpus_file.filename)
    tokens = tokenize(text, corpus_file.filename)
    unit = Parser(tokens, corpus_file.filename, registry).parse_translation_unit()

    effects = ParseEffects(
        macro_reads=set(preprocessor.macro_reads),
        macro_sets={name: preprocessor.defines[name]
                    for name in preprocessor.macro_writes
                    if name in preprocessor.defines},
        macro_dels={name for name in preprocessor.macro_writes
                    if name not in preprocessor.defines},
        typedef_reads=set(registry.typedef_reads),
        typedef_writes=set(registry.typedef_writes),
        typedef_defs={name: registry.typedefs[name]
                      for name in registry.typedef_writes},
        enum_constant_reads=set(registry.enum_constant_reads),
        enum_constant_writes=set(registry.enum_constant_writes),
        enum_constant_defs={name: registry.enum_constants[name]
                            for name in registry.enum_constant_writes},
        struct_refs=set(registry.struct_refs),
        struct_created={key for key in registry.structs
                        if key not in seed_registry.structs},
        struct_completed={
            key: struct for key, struct in registry.structs.items()
            if struct.complete and not (
                key in seed_registry.structs
                and seed_registry.structs[key].complete)},
        enum_refs=set(registry.enum_refs),
        enum_created={key for key in registry.enums
                      if key not in seed_registry.enums},
        enum_completed={
            key: enum for key, enum in registry.enums.items()
            if enum.complete and not (
                key in seed_registry.enums
                and seed_registry.enums[key].complete)},
        anon_tags=registry.anon_tags,
    )

    facts: dict[str, Any] = {}
    if speculate_facts:
        hazardous = _sizeof_hazard_functions(unit)
        for decl in unit.decls:
            if isinstance(decl, ast.FuncDef) and decl.name not in hazardous:
                try:
                    facts[decl.name] = facts_of(decl)
                except Exception:
                    pass  # solved for real in the consts phase instead
    return unit, effects, facts


def _parse_worker(task_queue, result_queue, files, seed_registry,
                  predicted, speculate_facts) -> None:
    """Worker loop: pull TU indices, push ``(index, status, payload)``.

    The ``(unit, effects, facts)`` tuple is pickled as one object, so the
    struct/enum/typedef objects shared between the unit's AST and the
    effect delta stay shared after the parent unpickles them — the remap
    in pass two relies on that.
    """
    while True:
        index = task_queue.get()
        if index is None:
            return
        try:
            payload = _speculative_parse(
                files[index], seed_registry, predicted[index], speculate_facts)
            result_queue.put((index, "ok", payload))
        except MiniCError:
            result_queue.put((index, "error", None))
        except Exception:  # never wedge the replay loop on a worker bug
            result_queue.put((index, "error", None))


# ---------------------------------------------------------------------------
# Pass two: validation, remap and adoption
# ---------------------------------------------------------------------------

def _validate_effects(effects: ParseEffects, seed_view: _SeedView,
                      registry: TypeRegistry,
                      canonical_defines: dict[str, str],
                      predicted: Optional[dict[str, str]],
                      printer: PrettyPrinter,
                      render_cache: dict[str, str]) -> Optional[str]:
    """Whether the speculative observations match the canonical state.

    Returns ``None`` when the TU can be adopted, else a human-readable
    divergence reason (the TU is then reparsed serially).  Write sets are
    validated like reads: a typedef/enum-constant (re)definition parses
    differently depending on whether the name was already a type name, so
    its pre-state must match too.  Macro writes need no pre-state check —
    ``#define`` overwrites unconditionally.
    """
    for name in effects.macro_reads:
        if (predicted or {}).get(name) != canonical_defines.get(name):
            return f"macro {name!r} diverged"

    for name in effects.typedef_reads | effects.typedef_writes:
        current = None
        if name in registry.typedefs:
            current = render_cache.get(name)
            if current is None:
                current = printer.type_name(registry.typedefs[name])
                render_cache[name] = current
        if seed_view.typedefs.get(name) != current:
            return f"typedef {name!r} diverged"

    for name in effects.enum_constant_reads | effects.enum_constant_writes:
        if (seed_view.enum_constants.get(name)
                != registry.enum_constants.get(name)):
            return f"enum constant {name!r} diverged"

    for key in effects.struct_refs:
        canonical = registry.structs.get(key)
        if key in effects.struct_completed:
            if canonical is not None and canonical.complete:
                # A serial parse would raise a redefinition error here;
                # fall back so the error (or tolerant skip) is reproduced.
                return f"{key} completed concurrently"
            continue
        if key in effects.struct_created:
            if canonical is not None and canonical.complete:
                # Worker observed the tag as incomplete; serial would see
                # the completed layout (sizeof could differ).
                return f"{key} completed before reference"
            continue
        state = None
        if canonical is not None:
            state = (canonical.complete,
                     printer.print_type_definition(canonical)
                     if canonical.complete else None)
        if seed_view.structs.get(key) != state:
            return f"{key} diverged"

    for key in effects.enum_refs:
        canonical = registry.enums.get(key)
        if key in effects.enum_completed:
            if canonical is not None and canonical.complete:
                return f"enum {key} completed concurrently"
            continue
        if key in effects.enum_created:
            if canonical is not None and canonical.complete:
                return f"enum {key} completed before reference"
            continue
        state = None
        if canonical is not None:
            state = (canonical.complete,
                     printer.print_type_definition(canonical)
                     if canonical.complete else None)
        if seed_view.enums.get(key) != state:
            return f"enum {key} diverged"

    if effects.anon_tags and registry._anon_counter != seed_view.anon_counter:
        return "anonymous tag counter diverged"
    return None


def _remap_type(ctype: Optional[CType], registry: TypeRegistry,
                memo: dict[int, CType]) -> Optional[CType]:
    """Rewrite a worker-local type graph onto the canonical registry.

    Struct/enum objects are swapped for the canonical object under the
    same key (installing the worker's completion when the canonical tag is
    still incomplete); compound types are mutated in place and memoized by
    ``id`` so shared subtrees — and cycles through struct fields — stay
    shared, exactly as a serial parse would have built them.
    """
    if ctype is None or not isinstance(ctype, CType):
        return ctype
    mapped = memo.get(id(ctype))
    if mapped is not None:
        return mapped
    if isinstance(ctype, CStruct):
        key = ("union " if ctype.is_union else "struct ") + ctype.tag
        canonical = registry.structs.get(key)
        if canonical is None:
            canonical = CStruct(tag=ctype.tag, is_union=ctype.is_union)
            registry.structs[key] = canonical
        memo[id(ctype)] = canonical
        if ctype is not canonical and ctype.complete and not canonical.complete:
            for member in ctype.fields:
                member.type = _remap_type(member.type, registry, memo)
            canonical.fields = ctype.fields
            canonical.annotations = ctype.annotations
            canonical.complete = True
            canonical._size = ctype._size
            canonical._align = ctype._align
        return canonical
    if isinstance(ctype, CEnum):
        canonical = registry.enums.get(ctype.tag)
        if canonical is None:
            canonical = CEnum(tag=ctype.tag)
            registry.enums[ctype.tag] = canonical
        memo[id(ctype)] = canonical
        if ctype is not canonical and ctype.complete and not canonical.complete:
            canonical.members = dict(ctype.members)
            canonical.complete = True
        return canonical
    memo[id(ctype)] = ctype
    if isinstance(ctype, CPointer):
        ctype.target = _remap_type(ctype.target, registry, memo)
    elif isinstance(ctype, CArray):
        ctype.element = _remap_type(ctype.element, registry, memo)
    elif isinstance(ctype, CFunc):
        ctype.return_type = _remap_type(ctype.return_type, registry, memo)
        for param in ctype.params:
            param.type = _remap_type(param.type, registry, memo)
    elif isinstance(ctype, CNamed):
        ctype.underlying = _remap_type(ctype.underlying, registry, memo)
    return ctype


def _adopt(unit: ast.TranslationUnit, effects: ParseEffects,
           registry: TypeRegistry, canonical_defines: dict[str, str],
           render_cache: dict[str, str]) -> None:
    """Apply a validated TU's effect delta to the canonical state."""
    memo: dict[int, CType] = {}
    for node in walk(unit):
        for attr in _TYPE_ATTRS:
            ctype = getattr(node, attr, None)
            if isinstance(ctype, CType):
                setattr(node, attr, _remap_type(ctype, registry, memo))
    for name, ctype in effects.typedef_defs.items():
        registry.typedefs[name] = _remap_type(ctype, registry, memo)
        render_cache.pop(name, None)
    for name, value in effects.enum_constant_defs.items():
        registry.enum_constants[name] = value
    registry._anon_counter += effects.anon_tags
    for name, value in effects.macro_sets.items():
        canonical_defines[name] = value
    for name in effects.macro_dels:
        canonical_defines.pop(name, None)


# ---------------------------------------------------------------------------
# The orchestrator
# ---------------------------------------------------------------------------

def _resolve_parse_mode(mode: Optional[str], jobs: int, units: int) -> str:
    if mode is not None:
        return mode
    if jobs >= 2 and units >= 3:
        if fork_available() and usable_cpus() >= 2:
            return "fork"
        return "inline"
    return "serial"


def parse_corpus_parallel(
    files: tuple[CorpusFile, ...],
    defines: dict[str, str] | None = None,
    jobs: int = 2,
    tolerant: bool = False,
    mode: Optional[str] = None,
    speculate_facts: bool = True,
) -> ParallelParseResult:
    """Two-pass speculative parallel parse of ``files``.

    Byte-identical with :func:`parse_corpus` (strict) or
    :func:`parse_corpus_tolerant` (``tolerant=True``) by construction:
    every adopted TU validated its full read set against the canonical
    state, and every other TU *is* a serial parse.  ``mode`` forces the
    worker pool flavour ("fork", "inline", or "serial" to bypass
    speculation entirely); by default fork is used when the host allows.
    """
    started = time.perf_counter()
    parse_mode = _resolve_parse_mode(mode, jobs, len(files))
    if parse_mode == "serial" or len(files) < 3:
        stats = ParallelParseStats(mode="serial", jobs=1, units=len(files))
        if tolerant:
            program, diagnostics = parse_corpus_tolerant(files, defines)
        else:
            program, diagnostics = parse_corpus(files, defines), ()
        stats.wall_seconds = time.perf_counter() - started
        return ParallelParseResult(program=program, diagnostics=tuple(diagnostics),
                                   facts={}, stats=stats)

    stats = ParallelParseStats(mode=parse_mode, jobs=max(1, jobs),
                               units=len(files))
    registry = TypeRegistry()
    preprocessor = Preprocessor(defines)
    program = Program(registry=registry)
    diagnostics: list[ParseDiagnostic] = []
    linked: list[ast.TranslationUnit] = []

    def link_unit(unit: ast.TranslationUnit, corpus_file: CorpusFile) -> None:
        nonlocal program
        if tolerant:
            try:
                program.add_unit(unit)
                linked.append(unit)
            except MiniCError as error:
                diagnostics.append(ParseDiagnostic(
                    filename=corpus_file.filename,
                    kind=_diagnostic_kind(error),
                    message=error.message,
                    location=error.location))
                if len(program.units) != len(linked):
                    program = Program(registry=registry)
                    for good in linked:
                        program.add_unit(good)
        else:
            program.add_unit(unit)
            linked.append(unit)

    def serial_parse(corpus_file: CorpusFile) -> Optional[ast.TranslationUnit]:
        nonlocal program
        if tolerant:
            try:
                unit = _parse_file(corpus_file, registry, preprocessor)
            except MiniCError as error:
                diagnostics.append(ParseDiagnostic(
                    filename=corpus_file.filename,
                    kind=_diagnostic_kind(error),
                    message=error.message,
                    location=error.location))
                return None
            link_unit(unit, corpus_file)
            return unit
        unit = _parse_file(corpus_file, registry, preprocessor)
        link_unit(unit, corpus_file)
        return unit

    # The seed: TU 0 parsed serially in the parent.
    serial_parse(files[0])

    # Exact macro prediction: replay only the directives of TUs 1..i-1 on
    # top of the post-seed table.  A preprocessor error mid-file leaves the
    # same partial mutations a serial parse would, so later predictions
    # stay exact even across broken TUs.
    prescan_started = time.perf_counter()
    scan = Preprocessor(dict(preprocessor.defines))
    predicted: dict[int, dict[str, str]] = {}
    for index in range(1, len(files)):
        predicted[index] = dict(scan.defines)
        if index + 1 < len(files):
            try:
                scan.scan_directives(files[index].source,
                                     files[index].filename)
            except MiniCError:
                pass
    stats.prescan_seconds = time.perf_counter() - prescan_started

    printer = PrettyPrinter()
    seed_view = _registry_view(registry, printer)
    render_cache: dict[str, str] = {}
    spec_facts: dict[str, Any] = {}
    indices = list(range(1, len(files)))

    results: dict[int, tuple[str, Any]] = {}
    workers: list = []
    if parse_mode == "fork":
        context = multiprocessing.get_context("fork")
        task_queue = context.SimpleQueue()
        result_queue = context.Queue()
        for index in indices:
            task_queue.put(index)
        pool = max(1, min(jobs, len(indices)))
        for _ in range(pool):
            task_queue.put(None)
        for _ in range(pool):
            process = context.Process(
                target=_parse_worker,
                args=(task_queue, result_queue, files, registry, predicted,
                      speculate_facts),
                daemon=True)
            process.start()
            workers.append(process)

        def next_result(index: int) -> tuple[str, Any]:
            while index not in results:
                try:
                    got, status, payload = result_queue.get(
                        timeout=_POLL_SECONDS)
                    results[got] = (status, payload)
                except _queue.Empty:
                    if not any(worker.is_alive() for worker in workers):
                        for missing in indices:
                            results.setdefault(missing, ("error", None))
            return results.pop(index)
    else:
        # The inline pool must speculate against the true post-seed state,
        # not the live registry pass two is mutating, so fork and inline
        # modes make identical adopt/fallback decisions.
        seed_template = copy.deepcopy(registry)

        def next_result(index: int) -> tuple[str, Any]:
            try:
                payload = _speculative_parse(
                    files[index], seed_template, predicted[index],
                    speculate_facts)
                return "ok", payload
            except MiniCError:
                return "error", None

    try:
        for index in indices:
            stats.speculated += 1
            status, payload = next_result(index)
            corpus_file = files[index]
            if status != "ok":
                stats.worker_failures += 1
                stats.fallbacks += 1
                serial_parse(corpus_file)
                continue
            unit, effects, facts = payload
            reason = _validate_effects(
                effects, seed_view, registry, preprocessor.defines,
                predicted.get(index), printer, render_cache)
            if reason is not None:
                stats.fallbacks += 1
                serial_parse(corpus_file)
                continue
            _adopt(unit, effects, registry, preprocessor.defines, render_cache)
            PARSE_COUNTS[corpus_file.filename] += 1
            stats.adopted += 1
            before = len(program.units)
            link_unit(unit, corpus_file)
            if len(program.units) > before:
                spec_facts.update(facts)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=5.0)

    program._corpus_preprocessor = preprocessor  # type: ignore[attr-defined]
    stats.facts_speculated = len(spec_facts)
    stats.wall_seconds = time.perf_counter() - started
    return ParallelParseResult(program=program, diagnostics=tuple(diagnostics),
                               facts=spec_facts, stats=stats)
