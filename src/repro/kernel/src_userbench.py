"""User-level benchmark bodies (the hbench workloads' user half).

hbench's benchmarks are user programs: a timing loop in userspace around
either pure memory operations (``bw_mem_*``, ``bw_bzero``) or system calls
(``lat_syscall``, ``lat_pipe``, ``bw_file_rd``, …).  Only the kernel is
deputized in the paper, so these translation units are linked into the image
*after* instrumentation — they run unchecked, exactly like real user binaries
on top of a deputized kernel.
"""

FILENAME = "user/hbench_user.c"

SOURCE = r"""
#define USER_BUF_SIZE 4096
#define USER_SMALL_BUF 256

static char user_src_buffer[USER_BUF_SIZE];
static char user_dst_buffer[USER_BUF_SIZE];
static char user_io_buffer[USER_SMALL_BUF];
static unsigned int user_checksum;

/* ------------------------------------------------------------------ */
/* Pure memory benchmarks (no kernel involvement)                       */
/* ------------------------------------------------------------------ */

unsigned int user_bw_bzero(unsigned int iterations)
{
    unsigned int i;
    for (i = 0; i < iterations; i = i + 1) {
        memset(user_dst_buffer, 0, USER_BUF_SIZE);
    }
    return iterations * USER_BUF_SIZE;
}

unsigned int user_bw_mem_cp(unsigned int iterations)
{
    unsigned int i;
    for (i = 0; i < iterations; i = i + 1) {
        memcpy(user_dst_buffer, user_src_buffer, USER_BUF_SIZE);
    }
    return iterations * USER_BUF_SIZE;
}

unsigned int user_bw_mem_rd(unsigned int iterations)
{
    unsigned int i;
    unsigned int j;
    unsigned int sum = 0;
    for (i = 0; i < iterations; i = i + 1) {
        for (j = 0; j < USER_BUF_SIZE; j = j + 16) {
            sum = sum + (unsigned int)user_src_buffer[j];
        }
    }
    user_checksum = sum;
    return iterations * USER_BUF_SIZE;
}

unsigned int user_bw_mem_wr(unsigned int iterations)
{
    unsigned int i;
    unsigned int j;
    for (i = 0; i < iterations; i = i + 1) {
        for (j = 0; j < USER_BUF_SIZE; j = j + 16) {
            user_dst_buffer[j] = (char)j;
        }
    }
    return iterations * USER_BUF_SIZE;
}

/* ------------------------------------------------------------------ */
/* Kernel-mediated benchmarks (loops around system calls)               */
/* ------------------------------------------------------------------ */

long user_lat_syscall(unsigned int iterations)
{
    unsigned int i;
    long rc = 0;
    for (i = 0; i < iterations; i = i + 1) {
        rc = rc + do_syscall(SYS_NULL, 0, 0, 0);
    }
    return rc;
}

long user_lat_getpid(unsigned int iterations)
{
    unsigned int i;
    long rc = 0;
    for (i = 0; i < iterations; i = i + 1) {
        rc = do_syscall(SYS_GETPID, 0, 0, 0);
    }
    return rc;
}

long user_file_write_read(int fd, unsigned int chunk, unsigned int iterations)
{
    unsigned int i;
    long total = 0;
    if (chunk > USER_SMALL_BUF) {
        chunk = USER_SMALL_BUF;
    }
    for (i = 0; i < iterations; i = i + 1) {
        do_syscall(SYS_SEEK, (long)fd, 0, 0);
        total = total + do_syscall(SYS_WRITE, (long)fd, (long)user_io_buffer, (long)chunk);
        do_syscall(SYS_SEEK, (long)fd, 0, 0);
        total = total + do_syscall(SYS_READ, (long)fd, (long)user_io_buffer, (long)chunk);
    }
    return total;
}

long user_fork_exit(unsigned int iterations)
{
    unsigned int i;
    long pid = 0;
    for (i = 0; i < iterations; i = i + 1) {
        pid = do_syscall(SYS_FORK, 0, 0, 0);
        if (pid > 0) {
            do_syscall(SYS_EXIT, 0, 0, 0);
        }
    }
    return pid;
}

long user_pipe_pingpong(struct pipe_inode *pipe, unsigned int chunk,
                        unsigned int iterations)
{
    unsigned int i;
    long total = 0;
    if (chunk > USER_SMALL_BUF) {
        chunk = USER_SMALL_BUF;
    }
    for (i = 0; i < iterations; i = i + 1) {
        total = total + pipe_write(pipe, user_io_buffer, chunk);
        total = total + pipe_read(pipe, user_io_buffer, chunk);
    }
    return total;
}

long user_udp_pingpong(int sock_a, int sock_b, unsigned int port_b,
                       unsigned int port_a, unsigned int chunk,
                       unsigned int iterations)
{
    unsigned int i;
    long total = 0;
    if (chunk > USER_SMALL_BUF) {
        chunk = USER_SMALL_BUF;
    }
    for (i = 0; i < iterations; i = i + 1) {
        total = total + udp_sendto(sock_a, user_io_buffer, chunk, port_b);
        total = total + udp_recv(sock_b, user_io_buffer, chunk);
        total = total + udp_sendto(sock_b, user_io_buffer, chunk, port_a);
        total = total + udp_recv(sock_a, user_io_buffer, chunk);
    }
    return total;
}

long user_tcp_stream(int sock_a, int sock_b, unsigned int chunk,
                     unsigned int iterations)
{
    unsigned int i;
    long total = 0;
    if (chunk > USER_SMALL_BUF) {
        chunk = USER_SMALL_BUF;
    }
    for (i = 0; i < iterations; i = i + 1) {
        total = total + tcp_send(sock_a, user_io_buffer, chunk);
        total = total + tcp_recv(sock_b, user_io_buffer, chunk);
    }
    return total;
}

unsigned int user_signal_roundtrip(unsigned int iterations)
{
    unsigned int i;
    unsigned int delivered = 0;
    struct task_struct *me = get_current();
    for (i = 0; i < iterations; i = i + 1) {
        send_signal(me, 10);
        delivered = delivered + (unsigned int)deliver_pending_signals();
    }
    return delivered;
}

long user_context_switch(unsigned int iterations)
{
    unsigned int i;
    for (i = 0; i < iterations; i = i + 1) {
        schedule();
    }
    return (long)context_switch_count();
}

void user_bench_init(void)
{
    unsigned int i;
    for (i = 0; i < USER_BUF_SIZE; i = i + 1) {
        user_src_buffer[i] = (char)(i & 0xff);
        user_dst_buffer[i] = 0;
    }
    for (i = 0; i < USER_SMALL_BUF; i = i + 1) {
        user_io_buffer[i] = (char)(i & 0x7f);
    }
    user_checksum = 0;
}
"""
