"""Mini-kernel corpus: memory management (mm/).

kmalloc/kfree, the slab-cache layer, and page allocation, all sitting on top
of the machine's raw allocator.  This is the layer the paper's CCount work
modified: allocation zeroes storage, frees are checked, and the conversion
added run-time type information after allocations of structured objects.
"""

FILENAME = "mm/slab.c"

SOURCE = r"""
/* ------------------------------------------------------------------ */
/* Allocation statistics                                                */
/* ------------------------------------------------------------------ */

struct mm_stats {
    unsigned int kmalloc_calls;
    unsigned int kfree_calls;
    unsigned int pages_allocated;
    unsigned int cache_allocs;
    unsigned int cache_frees;
    unsigned int bytes_outstanding;
};

static struct mm_stats mm_statistics;
static struct spinlock mm_lock;

/* ------------------------------------------------------------------ */
/* kmalloc / kfree                                                      */
/* ------------------------------------------------------------------ */

void *kmalloc(unsigned int size, gfp_t flags) blocking_if_wait
{
    void *obj;
    if (size == 0) {
        return 0;
    }
    if ((flags & GFP_WAIT) != 0) {
        /* A waiting allocation may sleep for memory to become available. */
        __hw_might_sleep();
    }
    obj = __raw_alloc(size);
    if (obj == 0) {
        return 0;
    }
    memset(obj, 0, size);
    mm_statistics.kmalloc_calls = mm_statistics.kmalloc_calls + 1;
    mm_statistics.bytes_outstanding = mm_statistics.bytes_outstanding + size;
    return obj;
}

void kfree(void *obj)
{
    if (obj == 0) {
        return;
    }
    mm_statistics.kfree_calls = mm_statistics.kfree_calls + 1;
    __raw_free(obj);
}

void *kzalloc(unsigned int size, gfp_t flags) blocking_if_wait
{
    /* kmalloc already zeroes under CCount; do it unconditionally anyway. */
    void *obj = kmalloc(size, flags);
    return obj;
}

/* ------------------------------------------------------------------ */
/* Page allocation (a simplified buddy allocator front end)             */
/* ------------------------------------------------------------------ */

struct page {
    unsigned int order;
    unsigned int flags;
    void *virtual_address;
    struct list_head lru;
};

void *alloc_pages(unsigned int order, gfp_t flags) blocking_if_wait
{
    unsigned int bytes = PAGE_SIZE << order;
    void *area;
    if ((flags & GFP_WAIT) != 0) {
        __hw_might_sleep();
    }
    area = __raw_alloc(bytes);
    if (area != 0) {
        memset(area, 0, bytes);
        mm_statistics.pages_allocated = mm_statistics.pages_allocated + (1 << order);
    }
    return area;
}

void free_pages(void *area, unsigned int order)
{
    if (area == 0) {
        return;
    }
    mm_statistics.pages_allocated = mm_statistics.pages_allocated - (1 << order);
    __raw_free(area);
}

/* ------------------------------------------------------------------ */
/* Slab caches (mm/slab.c)                                              */
/* ------------------------------------------------------------------ */

struct kmem_cache {
    char name[24];
    unsigned int object_size;
    unsigned int allocated;
    unsigned int freed;
    gfp_t default_flags;
    struct list_head partial;
    struct spinlock lock;
};

struct kmem_cache *kmem_cache_create(char * nullterm name, unsigned int object_size,
                                     gfp_t default_flags)
{
    struct kmem_cache *cache;
    unsigned int i;
    cache = (struct kmem_cache *)kmalloc(sizeof(struct kmem_cache), GFP_KERNEL);
    if (cache == 0) {
        return 0;
    }
    __ccount_rtti((void *)cache, "struct kmem_cache");
    i = 0;
    while (name[i] != 0 && i < 23) {
        cache->name[i] = name[i];
        i = i + 1;
    }
    cache->name[i] = 0;
    cache->object_size = object_size;
    cache->allocated = 0;
    cache->freed = 0;
    cache->default_flags = default_flags;
    INIT_LIST_HEAD(&cache->partial);
    spin_lock_init(&cache->lock);
    return cache;
}

void *kmem_cache_alloc(struct kmem_cache *cache nonnull, gfp_t flags) blocking_if_wait
{
    void *obj;
    unsigned long irq_flags;
    if ((flags & GFP_WAIT) != 0) {
        __hw_might_sleep();
    }
    irq_flags = spin_lock_irqsave(&cache->lock);
    obj = __raw_alloc(cache->object_size);
    if (obj != 0) {
        memset(obj, 0, cache->object_size);
        cache->allocated = cache->allocated + 1;
        mm_statistics.cache_allocs = mm_statistics.cache_allocs + 1;
    }
    spin_unlock_irqrestore(&cache->lock, irq_flags);
    return obj;
}

void kmem_cache_free(struct kmem_cache *cache nonnull, void *obj)
{
    unsigned long irq_flags;
    if (obj == 0) {
        return;
    }
    irq_flags = spin_lock_irqsave(&cache->lock);
    cache->freed = cache->freed + 1;
    mm_statistics.cache_frees = mm_statistics.cache_frees + 1;
    spin_unlock_irqrestore(&cache->lock, irq_flags);
    __raw_free(obj);
}

void kmem_cache_destroy(struct kmem_cache *cache)
{
    if (cache == 0) {
        return;
    }
    kfree((void *)cache);
}

/* ------------------------------------------------------------------ */
/* Introspection used by procfs and the benchmarks                      */
/* ------------------------------------------------------------------ */

unsigned int mm_outstanding_bytes(void)
{
    return mm_statistics.bytes_outstanding;
}

unsigned int mm_kmalloc_count(void)
{
    return mm_statistics.kmalloc_calls;
}

unsigned int mm_kfree_count(void)
{
    return mm_statistics.kfree_calls;
}

void mm_init(void)
{
    spin_lock_init(&mm_lock);
    mm_statistics.kmalloc_calls = 0;
    mm_statistics.kfree_calls = 0;
    mm_statistics.pages_allocated = 0;
    mm_statistics.cache_allocs = 0;
    mm_statistics.cache_frees = 0;
    mm_statistics.bytes_outstanding = 0;
}
"""
