"""Booting the mini-kernel on the abstract machine.

A :class:`KernelInstance` bundles the interpreter, the installed tool
runtimes and the build metadata; :func:`boot_kernel` is the one-stop
constructor used by the hbench suite, the workloads and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..blockstop import runtime_checks as blockstop_runtime
from ..ccount import CCountRuntime, build_typeinfo
from ..ccount import runtime as ccount_runtime
from ..deputy import DeputyRuntimeStats
from ..deputy import runtime as deputy_runtime
from ..machine.cycles import CostModel, DEFAULT_COST_MODEL, SMP_COST_MODEL
from ..machine.interpreter import Interpreter
from .build import BuildConfig, KernelBuild, build_kernel
from .corpus import BOOT_SEQUENCE


@dataclass
class KernelInstance:
    """A booted (or bootable) kernel on one interpreter."""

    build: KernelBuild
    interp: Interpreter
    deputy_stats: Optional[DeputyRuntimeStats] = None
    ccount: Optional[CCountRuntime] = None
    blockstop_stats: Optional[blockstop_runtime.BlockStopRuntimeStats] = None
    booted: bool = False
    boot_cycles: int = 0

    @property
    def label(self) -> str:
        return self.build.label

    # -- convenience wrappers ------------------------------------------------

    def call(self, name: str, *args: int):
        """Call a kernel function by name with integer arguments."""
        return self.interp.run(name, *args)

    def cycles(self) -> int:
        return self.interp.counter.cycles

    def measure(self, name: str, *args: int) -> tuple[int, object]:
        """Run a function and return (cycles consumed, result)."""
        before = self.interp.counter.cycles
        result = self.interp.run(name, *args)
        return self.interp.counter.cycles - before, result

    def trigger_interrupt(self, irq: int) -> None:
        """Deliver a (virtual) hardware interrupt through do_IRQ."""
        hw = self.interp.hw
        previous = hw.in_interrupt
        hw.in_interrupt = True
        try:
            self.interp.run("do_IRQ", irq)
        finally:
            hw.in_interrupt = previous

    def boot(self, reset_cycles_after: bool = False) -> None:
        """Run the boot sequence (subsystem init functions, in order)."""
        before = self.interp.counter.cycles
        for step in BOOT_SEQUENCE:
            if self.build.program.function(step) is not None:
                self.interp.run(step)
        self.boot_cycles = self.interp.counter.cycles - before
        self.booted = True
        if reset_cycles_after:
            self.interp.counter.reset()


def boot_kernel(config: BuildConfig | None = None,
                build: KernelBuild | None = None,
                smp: bool = False,
                cost_model: CostModel | None = None,
                max_steps: int = 60_000_000,
                install_blockstop_runtime: bool = True,
                boot: bool = True,
                reset_cycles_after_boot: bool = False) -> KernelInstance:
    """Build (or reuse) a kernel image, attach runtimes, and boot it."""
    if build is None:
        build = build_kernel(config)
    model = cost_model or (SMP_COST_MODEL if smp else DEFAULT_COST_MODEL)
    interp = Interpreter(build.program, cost_model=model, max_steps=max_steps)

    instance = KernelInstance(build=build, interp=interp)
    if build.config.deputy:
        instance.deputy_stats = deputy_runtime.install(interp)
    if build.config.ccount:
        typeinfo = (build.ccount_result.typeinfo if build.ccount_result is not None
                    else build_typeinfo(build.program))
        instance.ccount = ccount_runtime.install(interp, typeinfo,
                                                 build.config.ccount_config)
    if install_blockstop_runtime:
        instance.blockstop_stats = blockstop_runtime.install(interp)
    if boot:
        instance.boot(reset_cycles_after=reset_cycles_after_boot)
    return instance
