"""Mini-kernel corpus: the network stack (net/).

Socket buffers (sk_buff), a loopback device, UDP-style datagram sockets and a
small TCP-style stream layer with connect/accept and checksummed segments.
These are the paths behind ``bw_tcp``, ``lat_tcp``, ``lat_udp``,
``lat_connect`` and ``lat_rpc`` in the hbench suite, and — because sk_buffs
are allocated and freed at high rate — a major source of the frees CCount
verifies.
"""

FILENAME = "net/core.c"

SOURCE = r"""
#define SKB_MAX_DATA 1536
#define MAX_SOCKETS 32
#define MAX_BACKLOG 8
#define PROTO_UDP 17
#define PROTO_TCP 6

/* ------------------------------------------------------------------ */
/* Socket buffers                                                       */
/* ------------------------------------------------------------------ */

struct sk_buff {
    struct list_head link;
    unsigned int len;
    unsigned int protocol;
    unsigned int src_port;
    unsigned int dst_port;
    unsigned int seq;
    unsigned int csum;
    char data[SKB_MAX_DATA];
};

static unsigned int skbs_allocated;
static unsigned int skbs_freed;

struct sk_buff *alloc_skb(unsigned int size, gfp_t flags) blocking_if_wait
{
    struct sk_buff *skb;
    if (size > SKB_MAX_DATA) {
        return 0;
    }
    skb = (struct sk_buff *)kmalloc(sizeof(struct sk_buff), flags);
    if (skb == 0) {
        return 0;
    }
    __ccount_rtti((void *)skb, "struct sk_buff");
    skb->len = 0;
    skb->protocol = 0;
    skb->seq = 0;
    skb->csum = 0;
    INIT_LIST_HEAD(&skb->link);
    skbs_allocated = skbs_allocated + 1;
    return skb;
}

void free_skb(struct sk_buff *skb)
{
    if (skb == 0) {
        return;
    }
    skbs_freed = skbs_freed + 1;
    kfree((void *)skb);
}

int skb_put_data(struct sk_buff *skb nonnull, char * count(len) data, unsigned int len)
{
    unsigned int i;
    if (len > SKB_MAX_DATA) {
        return -EINVAL;
    }
    memcpy((void *)skb->data, (void *)data, len);
    i = len;
    skb->len = len;
    skb->csum = checksum_bytes(skb->data, len);
    return 0;
}

int skb_copy_out(struct sk_buff *skb nonnull, char * count(len) out, unsigned int len)
{
    unsigned int i;
    unsigned int todo = skb->len;
    if (todo > len) {
        todo = len;
    }
    memcpy((void *)out, (void *)skb->data, todo);
    i = todo;
    return (int)todo;
}

/* ------------------------------------------------------------------ */
/* Sockets and the loopback device                                      */
/* ------------------------------------------------------------------ */

struct socket {
    int in_use;
    unsigned int protocol;
    unsigned int local_port;
    unsigned int remote_port;
    int connected;
    unsigned int rx_packets;
    unsigned int tx_packets;
    unsigned int backlog_len;
    struct list_head rx_queue;
    struct spinlock lock;
};

static struct socket socket_table[MAX_SOCKETS];
static struct spinlock net_lock;
static unsigned int loopback_packets;

int sock_create(unsigned int protocol)
{
    int i;
    unsigned long flags;
    int fd = -ENOMEM;
    flags = spin_lock_irqsave(&net_lock);
    for (i = 0; i < MAX_SOCKETS; i = i + 1) {
        if (socket_table[i].in_use == 0) {
            socket_table[i].in_use = 1;
            socket_table[i].protocol = protocol;
            socket_table[i].local_port = 0;
            socket_table[i].remote_port = 0;
            socket_table[i].connected = 0;
            socket_table[i].rx_packets = 0;
            socket_table[i].tx_packets = 0;
            socket_table[i].backlog_len = 0;
            INIT_LIST_HEAD(&socket_table[i].rx_queue);
            spin_lock_init(&socket_table[i].lock);
            fd = i;
            break;
        }
    }
    spin_unlock_irqrestore(&net_lock, flags);
    return fd;
}

int sock_bind(int sock, unsigned int port)
{
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    socket_table[sock].local_port = port;
    return 0;
}

struct socket *find_socket_by_port(unsigned int port)
{
    int i;
    for (i = 0; i < MAX_SOCKETS; i = i + 1) {
        if (socket_table[i].in_use != 0 && socket_table[i].local_port == port) {
            return &socket_table[i];
        }
    }
    return 0;
}

/* The loopback "device": deliver a transmitted skb straight to the
   destination socket's receive queue, as if a NIC interrupt had arrived. */
int loopback_xmit(struct sk_buff *skb nonnull)
{
    struct socket *dst;
    unsigned long flags;
    dst = find_socket_by_port(skb->dst_port);
    if (dst == 0) {
        free_skb(skb);
        return -ENOENT;
    }
    flags = spin_lock_irqsave(&dst->lock);
    list_add_tail(&skb->link, &dst->rx_queue);
    dst->backlog_len = dst->backlog_len + 1;
    dst->rx_packets = dst->rx_packets + 1;
    spin_unlock_irqrestore(&dst->lock, flags);
    loopback_packets = loopback_packets + 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* UDP-style datagrams                                                  */
/* ------------------------------------------------------------------ */

ssize_t udp_sendto(int sock, char * count(len) data, unsigned int len,
                   unsigned int dst_port) blocking
{
    struct sk_buff *skb;
    struct socket *me;
    int err;
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    me = &socket_table[sock];
    skb = alloc_skb(len, GFP_KERNEL);
    if (skb == 0) {
        return -ENOMEM;
    }
    skb->protocol = PROTO_UDP;
    skb->src_port = me->local_port;
    skb->dst_port = dst_port;
    err = skb_put_data(skb, data, len);
    if (err != 0) {
        free_skb(skb);
        return (ssize_t)err;
    }
    me->tx_packets = me->tx_packets + 1;
    err = loopback_xmit(skb);
    if (err != 0) {
        return (ssize_t)err;
    }
    return (ssize_t)len;
}

ssize_t udp_recv(int sock, char * count(len) out, unsigned int len) blocking
{
    struct socket *me;
    struct sk_buff *skb;
    struct list_head *entry;
    unsigned long flags;
    int copied;
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    me = &socket_table[sock];
    if (list_empty(&me->rx_queue)) {
        __hw_might_sleep();
        schedule();
        if (list_empty(&me->rx_queue)) {
            return -EAGAIN;
        }
    }
    flags = spin_lock_irqsave(&me->lock);
    entry = me->rx_queue.next;
    list_del(entry);
    me->backlog_len = me->backlog_len - 1;
    spin_unlock_irqrestore(&me->lock, flags);
    skb = (struct sk_buff * trusted)entry;
    copied = skb_copy_out(skb, out, len);
    if (skb->csum != checksum_bytes(skb->data, skb->len)) {
        free_skb(skb);
        return -EINVAL;
    }
    free_skb(skb);
    return (ssize_t)copied;
}

/* ------------------------------------------------------------------ */
/* TCP-style streams (connect / accept / send / recv)                   */
/* ------------------------------------------------------------------ */

int tcp_connect(int sock, unsigned int dst_port) blocking
{
    struct socket *me;
    struct socket *peer;
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    me = &socket_table[sock];
    peer = find_socket_by_port(dst_port);
    if (peer == 0) {
        return -ENOENT;
    }
    /* Three-way handshake, loopback style: SYN, SYN-ACK, ACK. */
    me->remote_port = dst_port;
    peer->remote_port = me->local_port;
    __hw_might_sleep();
    schedule();
    me->connected = 1;
    peer->connected = 1;
    return 0;
}

ssize_t tcp_send(int sock, char * count(len) data, unsigned int len) blocking
{
    struct socket *me;
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    me = &socket_table[sock];
    if (me->connected == 0) {
        return -EINVAL;
    }
    return udp_sendto(sock, data, len, me->remote_port);
}

ssize_t tcp_recv(int sock, char * count(len) out, unsigned int len) blocking
{
    return udp_recv(sock, out, len);
}

int sock_close(int sock)
{
    struct socket *me;
    struct list_head *entry;
    struct sk_buff *skb;
    if (sock < 0 || sock >= MAX_SOCKETS || socket_table[sock].in_use == 0) {
        return -EBADF;
    }
    me = &socket_table[sock];
    __ccount_delay_begin();
    while (list_empty(&me->rx_queue) == 0) {
        entry = me->rx_queue.next;
        list_del(entry);
        skb = (struct sk_buff * trusted)entry;
        free_skb(skb);
    }
    __ccount_delay_end();
    me->in_use = 0;
    me->connected = 0;
    me->backlog_len = 0;
    return 0;
}

unsigned int net_loopback_packets(void)
{
    return loopback_packets;
}

unsigned int net_skbs_in_flight(void)
{
    return skbs_allocated - skbs_freed;
}

void net_init(void)
{
    int i;
    spin_lock_init(&net_lock);
    loopback_packets = 0;
    skbs_allocated = 0;
    skbs_freed = 0;
    for (i = 0; i < MAX_SOCKETS; i = i + 1) {
        socket_table[i].in_use = 0;
    }
}
"""
