"""Mini-kernel corpus: interrupt handling (kernel/irq/, arch/i386/kernel/irq.c).

Interrupt handlers run with interrupts disabled; that fact is what gives
BlockStop its property to enforce.  The handler table is a function-pointer
array (grist for the points-to analysis), ``do_IRQ`` is the dispatcher, and a
timer handler does a little bookkeeping work on every tick.
"""

FILENAME = "kernel/irq.c"

SOURCE = r"""
#define NR_IRQS 16
#define TIMER_IRQ 0
#define NET_IRQ 3
#define DISK_IRQ 5

typedef void (*irq_handler_t)(int irq, void *dev);

struct irq_desc {
    irq_handler_t handler;
    void *dev_data;
    unsigned int count;
    int enabled;
};

static struct irq_desc irq_table[NR_IRQS];
static struct spinlock irq_table_lock;
static unsigned int jiffies;
static unsigned int spurious_interrupts;

/* ------------------------------------------------------------------ */
/* Registration                                                         */
/* ------------------------------------------------------------------ */

int request_irq(int irq, irq_handler_t handler, void *dev)
{
    unsigned long flags;
    if (irq < 0 || irq >= NR_IRQS) {
        return -EINVAL;
    }
    flags = spin_lock_irqsave(&irq_table_lock);
    irq_table[irq].handler = handler;
    irq_table[irq].dev_data = dev;
    irq_table[irq].count = 0;
    irq_table[irq].enabled = 1;
    spin_unlock_irqrestore(&irq_table_lock, flags);
    return 0;
}

void free_irq(int irq)
{
    unsigned long flags;
    if (irq < 0 || irq >= NR_IRQS) {
        return;
    }
    flags = spin_lock_irqsave(&irq_table_lock);
    irq_table[irq].handler = 0;
    irq_table[irq].dev_data = 0;
    irq_table[irq].enabled = 0;
    spin_unlock_irqrestore(&irq_table_lock, flags);
}

/* ------------------------------------------------------------------ */
/* Dispatch                                                             */
/* ------------------------------------------------------------------ */

void do_IRQ(int irq)
{
    irq_handler_t handler;
    if (irq < 0 || irq >= NR_IRQS) {
        spurious_interrupts = spurious_interrupts + 1;
        return;
    }
    /* Hardware disables interrupts before entering the handler. */
    local_irq_disable();
    handler = irq_table[irq].handler;
    if (handler != 0 && irq_table[irq].enabled != 0) {
        irq_table[irq].count = irq_table[irq].count + 1;
        handler(irq, irq_table[irq].dev_data);
    } else {
        spurious_interrupts = spurious_interrupts + 1;
    }
    local_irq_enable();
}

/* ------------------------------------------------------------------ */
/* The timer interrupt                                                  */
/* ------------------------------------------------------------------ */

void timer_interrupt(int irq, void *dev)
{
    struct task_struct *task;
    jiffies = jiffies + 1;
    task = get_current();
    if (task != 0) {
        task->utime = task->utime + 1;
    }
}

unsigned int get_jiffies(void)
{
    return jiffies;
}

unsigned int irq_count(int irq)
{
    if (irq < 0 || irq >= NR_IRQS) {
        return 0;
    }
    return irq_table[irq].count;
}

void irq_init(void)
{
    int i;
    spin_lock_init(&irq_table_lock);
    jiffies = 0;
    spurious_interrupts = 0;
    for (i = 0; i < NR_IRQS; i = i + 1) {
        irq_table[i].handler = 0;
        irq_table[i].dev_data = 0;
        irq_table[i].count = 0;
        irq_table[i].enabled = 0;
    }
    request_irq(TIMER_IRQ, timer_interrupt, 0);
}
"""
