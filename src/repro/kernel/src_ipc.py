"""Mini-kernel corpus: pipes and signals (fs/pipe.c, kernel/signal.c).

The pipe is the workload behind ``lat_pipe`` and ``bw_pipe`` in the hbench
suite: bytes are copied into a ring buffer on write and copied back out on
read, with blocking behaviour when the buffer is full or empty.
"""

FILENAME = "ipc/pipe.c"

SOURCE = r"""
#define PIPE_BUF_SIZE 1024
#define MAX_SIGNALS 32

/* ------------------------------------------------------------------ */
/* Pipes                                                                */
/* ------------------------------------------------------------------ */

struct pipe_inode {
    char buffer[PIPE_BUF_SIZE];
    unsigned int head;
    unsigned int tail;
    unsigned int readers;
    unsigned int writers;
    struct wait_queue rd_wait;
    struct wait_queue wr_wait;
    struct spinlock lock;
};

struct pipe_inode *pipe_create(void)
{
    struct pipe_inode *pipe;
    pipe = (struct pipe_inode *)kmalloc(sizeof(struct pipe_inode), GFP_KERNEL);
    if (pipe == 0) {
        return 0;
    }
    __ccount_rtti((void *)pipe, "struct pipe_inode");
    pipe->head = 0;
    pipe->tail = 0;
    pipe->readers = 1;
    pipe->writers = 1;
    init_waitqueue(&pipe->rd_wait);
    init_waitqueue(&pipe->wr_wait);
    spin_lock_init(&pipe->lock);
    return pipe;
}

void pipe_destroy(struct pipe_inode *pipe)
{
    if (pipe == 0) {
        return;
    }
    kfree((void *)pipe);
}

unsigned int pipe_bytes_available(struct pipe_inode *pipe nonnull)
{
    return pipe->head - pipe->tail;
}

unsigned int pipe_space_left(struct pipe_inode *pipe nonnull)
{
    return PIPE_BUF_SIZE - (pipe->head - pipe->tail);
}

ssize_t pipe_write(struct pipe_inode *pipe nonnull, char * count(len) data,
                   unsigned int len) blocking
{
    unsigned int written = 0;
    unsigned int slot;
    if (pipe->readers == 0) {
        return -EINVAL;
    }
    while (written < len) {
        unsigned int chunk;
        unsigned int space = pipe_space_left(pipe);
        if (space == 0) {
            /* Writer would block until a reader drains the buffer. */
            __hw_might_sleep();
            schedule();
            space = pipe_space_left(pipe);
            if (space == 0) {
                break;
            }
        }
        slot = pipe->head % PIPE_BUF_SIZE;
        chunk = len - written;
        if (chunk > space) {
            chunk = space;
        }
        if (chunk > PIPE_BUF_SIZE - slot) {
            chunk = PIPE_BUF_SIZE - slot;
        }
        memcpy((void *)(pipe->buffer + slot), (void *)(data + written), chunk);
        pipe->head = pipe->head + chunk;
        written = written + chunk;
    }
    pipe->rd_wait.wake_count = pipe->rd_wait.wake_count + 1;
    return (ssize_t)written;
}

ssize_t pipe_read(struct pipe_inode *pipe nonnull, char * count(len) out,
                  unsigned int len) blocking
{
    unsigned int copied = 0;
    unsigned int slot;
    if (pipe->writers == 0 && pipe_bytes_available(pipe) == 0) {
        return 0;
    }
    while (copied < len) {
        unsigned int chunk;
        unsigned int avail = pipe_bytes_available(pipe);
        if (avail == 0) {
            __hw_might_sleep();
            schedule();
            avail = pipe_bytes_available(pipe);
            if (avail == 0) {
                break;
            }
        }
        slot = pipe->tail % PIPE_BUF_SIZE;
        chunk = len - copied;
        if (chunk > avail) {
            chunk = avail;
        }
        if (chunk > PIPE_BUF_SIZE - slot) {
            chunk = PIPE_BUF_SIZE - slot;
        }
        memcpy((void *)(out + copied), (void *)(pipe->buffer + slot), chunk);
        pipe->tail = pipe->tail + chunk;
        copied = copied + chunk;
    }
    pipe->wr_wait.wake_count = pipe->wr_wait.wake_count + 1;
    return (ssize_t)copied;
}

/* ------------------------------------------------------------------ */
/* Signals (a very small subset of kernel/signal.c)                     */
/* ------------------------------------------------------------------ */

struct sigpending {
    unsigned int pending_mask;
    unsigned int delivered;
};

static struct sigpending signal_state;

int send_signal(struct task_struct *task nonnull, int signum)
{
    if (signum < 0 || signum >= MAX_SIGNALS) {
        return -EINVAL;
    }
    signal_state.pending_mask = signal_state.pending_mask | (1 << signum);
    if (task->state == TASK_INTERRUPTIBLE) {
        wake_up_process(task);
    }
    return 0;
}

int deliver_pending_signals(void)
{
    int delivered = 0;
    int signum;
    for (signum = 0; signum < MAX_SIGNALS; signum = signum + 1) {
        if ((signal_state.pending_mask & (1 << signum)) != 0) {
            signal_state.pending_mask = signal_state.pending_mask & ~(1 << signum);
            signal_state.delivered = signal_state.delivered + 1;
            delivered = delivered + 1;
        }
    }
    return delivered;
}

unsigned int signals_delivered(void)
{
    return signal_state.delivered;
}

void ipc_init(void)
{
    signal_state.pending_mask = 0;
    signal_state.delivered = 0;
}
"""
