"""Synthetic kernel-shaped corpus generator.

The embedded corpus is 11 TUs / ~200 functions — big enough to be faithful,
too small for scheduler work to show up in the bench numbers.  This module
emits a parameterized corpus with the same *shape* as the real one (one
shared lib TU defining the spinlock/IRQ primitives, then per-subsystem TUs
full of lock sections, IRQ sections, Deputy counted loops and their
off-by-one twins, call chains and leaf helpers) at whatever scale the bench
needs: ``--scale 10`` is roughly 10× the embedded corpus (~100 TUs / ~2k
functions).

Two properties are deliberate:

* **the condensation is starvation-shaped** — each unit's entry point calls
  the previous unit's entry, so the SCC chain is as deep as the corpus is
  wide, while every unit also carries a pile of independent leaves.  Wave
  scheduling serializes on the chain; the ready-queue scheduler drains the
  leaves meanwhile.  A few units carry deliberately heavy functions so task
  costs are uneven (the straggler case);
* **generation is deterministic** (``random.Random(seed)``) and ingest is
  resumable: :func:`write_corpus` records a content hash per TU in
  ``MANIFEST.json`` and skips files whose on-disk bytes already match, so
  an interrupted scale run picks up where it left off.
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path

from .corpus import CorpusFile

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_SCHEMA = "repro-corpus-manifest/1"
GENERATOR_SCHEMA = "repro-synth-generator/1"

#: TUs emitted per unit of ``--scale`` (scale 10 ≈ 10× the 11-file corpus).
UNITS_PER_SCALE = 10

#: Every Nth unit gets a deliberately heavy function (uneven task costs).
STRAGGLER_STRIDE = 7

#: Every Nth unit gets an intra-unit mutual-recursion pair (non-trivial SCC).
RECURSION_STRIDE = 3

_CORE_SOURCE = r"""
/* Shared primitives for the synthetic corpus: the src_lib subset the
   checkers key on.  Parsed first; every synth unit links against it. */

typedef unsigned int u32;
typedef unsigned int size_t;
typedef long ssize_t;

#define NULL 0
#define EINVAL 22
#define ENOMEM 12
#define SYNTH_BUF 64

struct spinlock {
    int locked;
    int owner_cpu;
    char name[16];
};

void spin_lock_init(struct spinlock *lock nonnull)
{
    lock->locked = 0;
    lock->owner_cpu = -1;
}

void spin_lock(struct spinlock *lock nonnull)
{
    lock->locked = lock->locked + 1;
    lock->owner_cpu = smp_processor_id();
}

void spin_unlock(struct spinlock *lock nonnull)
{
    lock->locked = lock->locked - 1;
    if (lock->locked == 0) {
        lock->owner_cpu = -1;
    }
}

unsigned long spin_lock_irqsave(struct spinlock *lock nonnull)
{
    unsigned long flags = __hw_save_flags();
    __hw_cli();
    spin_lock(lock);
    return flags;
}

void spin_unlock_irqrestore(struct spinlock *lock nonnull, unsigned long flags)
{
    spin_unlock(lock);
    __hw_restore_flags(flags);
}

void local_irq_disable(void)
{
    __hw_cli();
}

void local_irq_enable(void)
{
    __hw_sti();
}

unsigned long local_irq_save(void)
{
    unsigned long flags = __hw_save_flags();
    __hw_cli();
    return flags;
}

void local_irq_restore(unsigned long flags)
{
    __hw_restore_flags(flags);
}

int synth_clamp(int value, int low, int high)
{
    if (value < low) {
        return low;
    }
    if (value > high) {
        return high;
    }
    return value;
}
"""


def _leaf(prefix: str, index: int, rng: random.Random) -> str:
    """A small independent helper: arithmetic, a branch, maybe a loop."""
    a, b = rng.randrange(2, 9), rng.randrange(1, 7)
    shape = rng.randrange(3)
    if shape == 0:
        return (
            f"int {prefix}_leaf{index}(int v)\n"
            "{\n"
            f"    int out = v * {a} + {b};\n"
            f"    if (out > {a * 16}) {{\n"
            f"        out = out - {b * 4};\n"
            "    }\n"
            "    return out;\n"
            "}\n")
    if shape == 1:
        return (
            f"int {prefix}_leaf{index}(int v)\n"
            "{\n"
            "    int i;\n"
            "    int acc = 0;\n"
            f"    for (i = 0; i < {a}; i = i + 1) {{\n"
            f"        acc = acc + v + {b};\n"
            "    }\n"
            "    return acc;\n"
            "}\n")
    return (
        f"int {prefix}_leaf{index}(int v)\n"
        "{\n"
        f"    int out = synth_clamp(v, {b}, {a * 8});\n"
        f"    return out + {a};\n"
        "}\n")


def _heavy(prefix: str, rng: random.Random) -> str:
    """A deliberately expensive-to-analyze function: deep nesting, many
    statements and branches, so per-SCC task costs stay uneven."""
    lines = [f"int {prefix}_heavy(int seed)",
             "{",
             "    int i;",
             "    int j;",
             "    int acc = seed;"]
    for block in range(6):
        step = rng.randrange(1, 5)
        bound = rng.randrange(4, 12)
        lines.append(f"    for (i = 0; i < {bound}; i = i + 1) {{")
        lines.append(f"        for (j = 0; j < {bound - 1}; j = j + 1) {{")
        lines.append(f"            acc = acc + i * {step} + j;")
        lines.append(f"            if (acc > {1000 + block * 100}) {{")
        lines.append(f"                acc = acc - {rng.randrange(50, 200)};")
        lines.append("            } else {")
        lines.append(f"                acc = acc + {rng.randrange(1, 9)};")
        lines.append("            }")
        lines.append("        }")
        lines.append("    }")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _unit_source(unit: int, rng: random.Random, leaf_count: int) -> str:
    """One synthetic TU: statics, Deputy loops, lock/IRQ sections, leaves,
    a work aggregator and the cross-TU entry chain link."""
    prefix = f"s{unit:03d}"
    parts = [f"/* Synthetic subsystem unit {unit}. */\n"]
    parts.append(
        f"static struct spinlock {prefix}_lock;\n"
        f"static int {prefix}_state;\n"
        f"static char {prefix}_store[SYNTH_BUF];\n")

    # Deputy material: the canonical counted loop (discharges), the i <= n
    # off-by-one twin (must keep its check), and a derived-bound variant
    # (discharges relationally).
    parts.append(
        f"int {prefix}_fill(char * count(n) buf, unsigned int n)\n"
        "{\n"
        "    unsigned int i;\n"
        "    for (i = 0; i < n; i = i + 1) {\n"
        f"        buf[i] = {rng.randrange(1, 120)};\n"
        "    }\n"
        "    return 0;\n"
        "}\n")
    parts.append(
        f"int {prefix}_fill_off(char * count(n) buf, unsigned int n)\n"
        "{\n"
        "    unsigned int i;\n"
        "    for (i = 0; i <= n; i = i + 1) {\n"
        f"        buf[i] = {rng.randrange(1, 120)};\n"
        "    }\n"
        "    return 0;\n"
        "}\n")
    parts.append(
        f"int {prefix}_fill_limit(char * count(n) buf, unsigned int n)\n"
        "{\n"
        "    unsigned int i;\n"
        "    unsigned int limit;\n"
        "    if (n == 0) {\n"
        "        return -EINVAL;\n"
        "    }\n"
        "    limit = n - 1;\n"
        "    for (i = 0; i <= limit; i = i + 1) {\n"
        f"        buf[i] = {rng.randrange(1, 120)};\n"
        "    }\n"
        "    return 0;\n"
        "}\n")

    # Lock section with an error path that must still release.
    parts.append(
        f"int {prefix}_locked_update(int value)\n"
        "{\n"
        "    spin_lock(&" + prefix + "_lock);\n"
        "    if (value < 0) {\n"
        f"        spin_unlock(&{prefix}_lock);\n"
        "        return -EINVAL;\n"
        "    }\n"
        f"    {prefix}_state = {prefix}_state + value;\n"
        f"    spin_unlock(&{prefix}_lock);\n"
        "    return 0;\n"
        "}\n")

    # IRQ-disabled section via save/restore.
    parts.append(
        f"int {prefix}_irq_section(int value)\n"
        "{\n"
        "    unsigned long flags;\n"
        f"    flags = spin_lock_irqsave(&{prefix}_lock);\n"
        f"    {prefix}_state = {prefix}_state ^ value;\n"
        f"    spin_unlock_irqrestore(&{prefix}_lock, flags);\n"
        f"    return {prefix}_state;\n"
        "}\n")

    for leaf in range(leaf_count):
        parts.append(_leaf(prefix, leaf, rng))

    if unit % RECURSION_STRIDE == 0:
        depth = rng.randrange(3, 8)
        parts.append(
            f"int {prefix}_odd(int n);\n"
            f"int {prefix}_even(int n)\n"
            "{\n"
            "    if (n <= 0) {\n"
            "        return 1;\n"
            "    }\n"
            f"    return {prefix}_odd(n - 1);\n"
            "}\n"
            f"int {prefix}_odd(int n)\n"
            "{\n"
            "    if (n <= 0) {\n"
            "        return 0;\n"
            "    }\n"
            f"    return {prefix}_even(n - {depth % 2 + 1});\n"
            "}\n")

    if unit % STRAGGLER_STRIDE == 0:
        parts.append(_heavy(prefix, rng))

    # The aggregator ties the unit together; the entry extends the cross-TU
    # chain, so the condensation grows one wave per unit.
    calls = [f"    acc = acc + {prefix}_leaf{leaf}(acc);"
             for leaf in range(0, leaf_count, 2)]
    extra = ""
    if unit % STRAGGLER_STRIDE == 0:
        extra = f"    acc = acc + {prefix}_heavy(acc);\n"
    if unit % RECURSION_STRIDE == 0:
        extra = extra + f"    acc = acc + {prefix}_even(acc & 7);\n"
    parts.append(
        f"int {prefix}_work(int value)\n"
        "{\n"
        "    int acc = value;\n"
        f"    char local[SYNTH_BUF];\n"
        + "\n".join(calls) + "\n"
        + extra +
        f"    {prefix}_fill(local, SYNTH_BUF);\n"
        f"    {prefix}_fill_limit({prefix}_store, SYNTH_BUF);\n"
        f"    acc = acc + {prefix}_locked_update(acc & 15);\n"
        f"    acc = acc + {prefix}_irq_section(acc);\n"
        "    return acc;\n"
        "}\n")
    # The entry is a chain link — its SCC sits alone in its condensation
    # wave — and carries deliberate analysis weight: the chain is the
    # critical path, so its cost is exactly what barrier scheduling
    # serializes on (one wave per unit, everything else idle) while the
    # ready-queue scheduler overlaps it with the leaf backlog.
    weight = []
    for block in range(3):
        bound = rng.randrange(5, 10)
        step = rng.randrange(1, 4)
        weight.extend([
            f"    for (i = 0; i < {bound}; i = i + 1) {{",
            f"        for (j = 0; j < {bound + 2}; j = j + 1) {{",
            f"            acc = acc + i * {step} - j;",
            f"            if (acc > {500 + block * 50}) {{",
            f"                acc = acc - {rng.randrange(20, 90)};",
            "            } else {",
            f"                acc = acc + {rng.randrange(1, 6)};",
            "            }",
            "        }",
            "    }"])
    chain_call = ("" if unit == 0
                  else f"    acc = acc + s{unit - 1:03d}_entry(value & 31);\n")
    parts.append(
        f"int {prefix}_entry(int value)\n"
        "{\n"
        "    int i;\n"
        "    int j;\n"
        "    int acc;\n"
        f"    acc = {prefix}_work(value);\n"
        + chain_call
        + "\n".join(weight) + "\n"
        "    return acc;\n"
        "}\n")
    return "\n".join(parts)


def generate_corpus(scale: int, seed: int = 0) -> tuple[CorpusFile, ...]:
    """Emit the synthetic corpus for ``scale`` (deterministic per seed)."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random(seed)
    files = [CorpusFile(filename="synth/synth_core.c", source=_CORE_SOURCE)]
    for unit in range(scale * UNITS_PER_SCALE):
        leaf_count = rng.randrange(8, 13)
        files.append(CorpusFile(
            filename=f"synth/unit_{unit:03d}.c",
            source=_unit_source(unit, rng, leaf_count)))
    return tuple(files)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_corpus(directory: str | Path, files, *,
                 scale: int | None = None, seed: int | None = None) -> dict:
    """Resumable content-hash-keyed ingest into a ``MANIFEST.json`` tree.

    Files whose on-disk bytes already hash to the generated content are
    left untouched, so re-running after an interrupt only writes the
    remainder.  The manifest keeps the ``repro-corpus-manifest/1`` schema
    (``load_corpus_dir`` reads it unchanged) and adds per-entry ``sha256``
    plus a ``generator`` block recording scale/seed for provenance.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"schema": MANIFEST_SCHEMA, "files": []}
    if scale is not None:
        manifest["generator"] = {"schema": GENERATOR_SCHEMA,
                                 "scale": scale, "seed": seed or 0}
    written = skipped = 0
    for corpus_file in files:
        digest = _sha256(corpus_file.source)
        target = root / corpus_file.filename
        if target.exists() and _sha256(target.read_text()) == digest:
            skipped += 1
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(corpus_file.source)
            written += 1
        manifest["files"].append({"filename": corpus_file.filename,
                                  "path": corpus_file.filename,
                                  "kernel": corpus_file.kernel,
                                  "sha256": digest})
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return {"manifest": str(manifest_path), "total": len(manifest["files"]),
            "written": written, "skipped": skipped}
