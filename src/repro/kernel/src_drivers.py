"""Mini-kernel corpus: device drivers (drivers/).

A console/tty layer, a ramdisk block device and a network device driver.
The tty layer deliberately reproduces the paper's false-positive example:
``read_chan`` is a blocking function that the conservative points-to analysis
believes ``flush_to_ldisc`` (which runs with interrupts disabled) could call
through the line-discipline function-pointer table, even though it never
does; the manual run-time check at the top of ``read_chan`` silences the
report while keeping the kernel sound.
"""

FILENAME = "drivers/char/tty.c"

SOURCE = r"""
#define TTY_BUF_SIZE 256
#define RAMDISK_BLOCKS 64
#define BLOCK_SIZE 512
#define NETDEV_QUEUE 16

/* ------------------------------------------------------------------ */
/* The tty / line discipline layer                                      */
/* ------------------------------------------------------------------ */

struct tty_struct;

struct ldisc_ops {
    ssize_t (*read)(struct tty_struct *tty, char * count(count) buf, unsigned int count, unsigned int pos);
    ssize_t (*write)(struct tty_struct *tty, char * count(count) buf, unsigned int count, unsigned int pos);
    int (*receive_buf)(struct tty_struct *tty, char * count(count) data, unsigned int count, unsigned int flag);
};

struct tty_struct {
    char read_buf[TTY_BUF_SIZE];
    unsigned int read_head;
    unsigned int read_tail;
    unsigned int column;
    struct ldisc_ops *ldisc;
    struct spinlock lock;
    struct wait_queue read_wait;
};

static struct tty_struct console_tty;
static unsigned int tty_interrupts;

/* read_chan: the blocking N_TTY read path.  The first statement is the
   manual BlockStop run-time assertion from the paper: read_chan must never
   run in atomic context, and if it ever does the kernel fails loudly. */
ssize_t read_chan(struct tty_struct *tty, char * count(count) buf, unsigned int count, unsigned int pos)
    blocking
{
    unsigned int copied = 0;
    __blockstop_assert_irqs_enabled();
    if (tty == 0 || buf == 0) {
        return -EINVAL;
    }
    while (copied < count) {
        if (tty->read_head == tty->read_tail) {
            __hw_might_sleep();
            schedule();
            if (tty->read_head == tty->read_tail) {
                break;
            }
        }
        buf[copied] = tty->read_buf[tty->read_tail % TTY_BUF_SIZE];
        tty->read_tail = tty->read_tail + 1;
        copied = copied + 1;
    }
    return (ssize_t)copied;
}

ssize_t write_chan(struct tty_struct *tty, char * count(count) buf, unsigned int count, unsigned int pos)
{
    unsigned int i;
    if (tty == 0 || buf == 0) {
        return -EINVAL;
    }
    for (i = 0; i < count; i = i + 1) {
        tty->column = tty->column + 1;
        if (buf[i] == '\n') {
            tty->column = 0;
        }
    }
    return (ssize_t)count;
}

int n_tty_receive_buf(struct tty_struct *tty, char * count(count) data, unsigned int count, unsigned int flag)
{
    unsigned int i;
    unsigned int slot;
    if (tty == 0 || data == 0) {
        return -EINVAL;
    }
    for (i = 0; i < count; i = i + 1) {
        slot = tty->read_head % TTY_BUF_SIZE;
        tty->read_buf[slot] = data[i];
        tty->read_head = tty->read_head + 1;
    }
    return (int)count;
}

static struct ldisc_ops n_tty_ops = {
    .read = read_chan,
    .write = write_chan,
    .receive_buf = n_tty_receive_buf
};

/* flush_to_ldisc: pushes receive-side data into the line discipline.  It is
   called from the uart interrupt handler, i.e. with interrupts disabled, and
   only ever uses the receive_buf hook -- but a signature-based points-to
   analysis cannot tell it apart from the read hook, which blocks. */
void flush_to_ldisc(struct tty_struct *tty, char * count(count) data, unsigned int count)
{
    unsigned long flags;
    if (tty == 0 || tty->ldisc == 0) {
        return;
    }
    flags = spin_lock_irqsave(&tty->lock);
    if (tty->ldisc->receive_buf != 0) {
        tty->ldisc->receive_buf(tty, data, count, 0);
    }
    spin_unlock_irqrestore(&tty->lock, flags);
}

void uart_interrupt(int irq, void *dev)
{
    char incoming[4];
    incoming[0] = 'k';
    incoming[1] = 'e';
    incoming[2] = 'y';
    incoming[3] = 0;
    tty_interrupts = tty_interrupts + 1;
    flush_to_ldisc(&console_tty, incoming, 3);
}

ssize_t console_read(char * count(count) buf, unsigned int count) blocking
{
    return read_chan(&console_tty, buf, count, 0);
}

ssize_t console_write(char * count(count) buf, unsigned int count)
{
    return write_chan(&console_tty, buf, count, 0);
}

/* ------------------------------------------------------------------ */
/* Ramdisk block device                                                 */
/* ------------------------------------------------------------------ */

struct block_request {
    unsigned int block;
    unsigned int write;
    char * count(512) buffer;
    struct list_head queue_link;
};

struct block_device_ops {
    int (*submit)(struct block_request *req);
};

static char * count(RAMDISK_BLOCKS * BLOCK_SIZE) ramdisk_storage;
static unsigned int ramdisk_requests;

int ramdisk_submit(struct block_request *req)
{
    unsigned int offset;
    unsigned int i;
    if (req == 0 || req->buffer == 0 || req->block >= RAMDISK_BLOCKS) {
        return -EINVAL;
    }
    if (ramdisk_storage == 0) {
        return -ENOMEM;
    }
    offset = req->block * BLOCK_SIZE;
    if (req->write != 0) {
        for (i = 0; i < BLOCK_SIZE; i = i + 1) {
            ramdisk_storage[offset + i] = req->buffer[i];
        }
    } else {
        for (i = 0; i < BLOCK_SIZE; i = i + 1) {
            req->buffer[i] = ramdisk_storage[offset + i];
        }
    }
    ramdisk_requests = ramdisk_requests + 1;
    return 0;
}

static struct block_device_ops ramdisk_ops = {
    .submit = ramdisk_submit
};

int block_rw(unsigned int block, char * count(512) buffer, unsigned int write)
{
    struct block_request req;
    int err;
    req.block = block;
    req.write = write;
    req.buffer = buffer;
    INIT_LIST_HEAD(&req.queue_link);
    if (ramdisk_ops.submit == 0) {
        return -EINVAL;
    }
    err = ramdisk_ops.submit(&req);
    req.buffer = 0;
    return err;
}

/* ------------------------------------------------------------------ */
/* A simple network device feeding the loopback path                    */
/* ------------------------------------------------------------------ */

void netdev_interrupt(int irq, void *dev)
{
    /* Acknowledge the (virtual) NIC; real delivery happens in loopback_xmit. */
    tty_interrupts = tty_interrupts + 0;
}

unsigned int driver_interrupt_count(void)
{
    return tty_interrupts;
}

unsigned int ramdisk_request_count(void)
{
    return ramdisk_requests;
}

void drivers_init(void)
{
    console_tty.read_head = 0;
    console_tty.read_tail = 0;
    console_tty.column = 0;
    console_tty.ldisc = &n_tty_ops;
    spin_lock_init(&console_tty.lock);
    init_waitqueue(&console_tty.read_wait);
    tty_interrupts = 0;
    ramdisk_requests = 0;
    ramdisk_storage = (char *)kmalloc(RAMDISK_BLOCKS * BLOCK_SIZE, GFP_KERNEL);
    request_irq(NET_IRQ, netdev_interrupt, 0);
    request_irq(DISK_IRQ, uart_interrupt, 0);
}
"""
