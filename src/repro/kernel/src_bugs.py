"""Mini-kernel corpus: seeded bugs and false-positive generators (§2.3).

The paper reports that running BlockStop on the test kernel found **two
apparent bugs** plus a number of **false positives** caused by the
conservative, signature-based points-to analysis, all of which were silenced
with **15 manual run-time checks**.  This file seeds the corpus with exactly
that structure:

* two real bugs — a statistics path that allocates with ``GFP_KERNEL`` while
  holding an irq-saving spinlock, and an interrupt handler that waits on a
  completion;
* two *interprocedural* bugs only the summary framework can see — a helper
  that returns with a spinlock still held on its error path (the leak
  propagates to its caller), and a blocking call made while interrupts are
  disabled purely through a callee's IRQ delta (``stats_freeze`` disables,
  the caller blocks, ``stats_thaw`` re-enables); a purely intraprocedural
  scan reports neither;
* a deferred-work table of *blocking* helpers and a notifier chain of
  *non-blocking* callbacks that share a function signature.  The notifier
  chain is walked with interrupts disabled; a signature-based analysis cannot
  tell the two tables apart, so every blocking helper is falsely implicated
  and needs a manual run-time assertion to silence the report;
* two *condition-gated* shapes only the constant-propagation lattice can
  prune — a lock acquire (and leaking early return) inside an
  ``if (DEBUG_AUDIT)`` arm with ``#define DEBUG_AUDIT 0``, and a blocking
  call inside a constant-false debug branch of an atomic region.  Both were
  classic false positives of condition-blind dataflow; each has an
  ``if (TRACE_AUDIT)`` twin (``#define TRACE_AUDIT 1``) that must keep
  reporting, so the pruning is scored in both directions.
"""

FILENAME = "kernel/watchdog.c"

SOURCE = r"""
#define WORK_HANDLERS 14
#define NOTIFIER_SLOTS 4
#define DEBUG_AUDIT 0
#define TRACE_AUDIT 1

typedef int (*work_fn_t)(void *data, int value);

static struct spinlock stats_lock;
static struct completion disk_io_done;
static unsigned int audit_events;
static unsigned int notifier_calls;
static unsigned int deferred_runs;

/* ------------------------------------------------------------------ */
/* Real bug #1: allocation that may sleep inside an irq-saving lock     */
/* ------------------------------------------------------------------ */

int audit_log_event(int code) blocking
{
    char *record;
    /* GFP_KERNEL may sleep; callers must not hold irq-disabling locks. */
    record = (char *)kmalloc(64, GFP_KERNEL);
    if (record == 0) {
        return -ENOMEM;
    }
    record[0] = (char)code;
    audit_events = audit_events + 1;
    kfree((void *)record);
    return 0;
}

void buggy_stats_update(int code)
{
    unsigned long flags;
    flags = spin_lock_irqsave(&stats_lock);
    /* BUG: audit_log_event can sleep, but interrupts are disabled here. */
    audit_log_event(code);
    spin_unlock_irqrestore(&stats_lock, flags);
}

/* ------------------------------------------------------------------ */
/* Real bug #2: an interrupt handler that blocks                        */
/* ------------------------------------------------------------------ */

void disk_timeout_interrupt(int irq, void *dev)
{
    /* BUG: waiting for a completion can sleep; handlers run atomically. */
    wait_for_completion(&disk_io_done);
}

void disk_io_complete(void)
{
    complete(&disk_io_done);
}

void watchdog_register_handlers(void)
{
    request_irq(7, disk_timeout_interrupt, 0);
}

/* ------------------------------------------------------------------ */
/* Interprocedural bug #1: a helper that leaks a lock on its error path */
/* ------------------------------------------------------------------ */

static struct spinlock audit_slot_lock;
static unsigned int audit_slots_used;

int audit_reserve_slot(int count)
{
    spin_lock(&audit_slot_lock);
    if (count > 8) {
        /* BUG: early return leaks audit_slot_lock to the caller. */
        return -EINVAL;
    }
    audit_slots_used = audit_slots_used + count;
    spin_unlock(&audit_slot_lock);
    return 0;
}

int buggy_audit_reserve(int count)
{
    int rc;
    /* The leak propagates: this caller may also return with the lock
       held, without ever naming audit_slot_lock itself. */
    rc = audit_reserve_slot(count);
    if (rc < 0) {
        audit_events = audit_events + 1;
    }
    return rc;
}

/* ------------------------------------------------------------------ */
/* Interprocedural bug #2: blocking under a callee's IRQ disable        */
/* ------------------------------------------------------------------ */

void stats_freeze(void)
{
    /* Intentional disable helper: returns with interrupts off.  Its
       summary carries the +1 IRQ delta to every caller. */
    local_irq_disable();
}

void stats_thaw(void)
{
    local_irq_enable();
}

void buggy_deferred_flush(int code)
{
    stats_freeze();
    /* BUG: audit_log_event can sleep, and interrupts are disabled here --
       but only through stats_freeze's summary; no disable primitive is
       visible in this function. */
    audit_log_event(code);
    stats_thaw();
}

/* ------------------------------------------------------------------ */
/* Condition-gated shapes: dead-branch false positives and live twins   */
/* ------------------------------------------------------------------ */

/* Previously a false positive: the acquire and the leaking early return
   sit under a #define'd constant-false flag, so no feasible path ever
   takes or leaks the lock.  Condition-blind dataflow joined the dead arm
   and reported a returns-with-lock-held leak here (and, through the
   summary, in every caller). */
int audit_try_slot_debug(int count)
{
    if (DEBUG_AUDIT) {
        spin_lock(&audit_slot_lock);
        if (count > 8) {
            return -EINVAL;
        }
        spin_unlock(&audit_slot_lock);
    }
    return 0;
}

/* The if (1) twin: identical shape, live flag -- the leak is real and
   must keep reporting, in this function and in its caller's summary. */
int audit_try_slot_trace(int count)
{
    if (TRACE_AUDIT) {
        spin_lock(&audit_slot_lock);
        if (count > 8) {
            return -EINVAL;
        }
        spin_unlock(&audit_slot_lock);
    }
    return 0;
}

/* Callers: the debug one must inherit nothing; the trace one inherits
   the may-return-held leak through audit_try_slot_trace's summary. */
int audit_probe_debug(int count)
{
    return audit_try_slot_debug(count);
}

int audit_probe_trace(int count)
{
    return audit_try_slot_trace(count);
}

/* Previously a false positive: a blocking call inside a constant-false
   debug branch of an atomic region.  The branch never runs, so there is
   no blocking-in-atomic-context bug to report. */
void stats_sample_fast(void)
{
    unsigned long flags;
    flags = spin_lock_irqsave(&stats_lock);
    if (DEBUG_AUDIT) {
        audit_log_event(1);
    }
    audit_events = audit_events + 1;
    spin_unlock_irqrestore(&stats_lock, flags);
}

/* The if (1) twin: the debug branch is live, so the blocking call under
   the irq-saving lock is a real bug and must keep reporting. */
void stats_sample_slow(void)
{
    unsigned long flags;
    flags = spin_lock_irqsave(&stats_lock);
    if (TRACE_AUDIT) {
        audit_log_event(2);
    }
    audit_events = audit_events + 1;
    spin_unlock_irqrestore(&stats_lock, flags);
}

/* ------------------------------------------------------------------ */
/* Deferred work: blocking helpers run from process context             */
/* ------------------------------------------------------------------ */

int work_sync_inodes(void *data, int value) blocking
{
    char *scratch = (char *)kmalloc(32, GFP_KERNEL);
    if (scratch == 0) { return -ENOMEM; }
    kfree((void *)scratch);
    return 0;
}

int work_flush_log(void *data, int value) blocking
{
    schedule();
    return value;
}

int work_reap_tasks(void *data, int value) blocking
{
    schedule();
    return 0;
}

int work_balance_dirty(void *data, int value) blocking
{
    char *page = (char *)kmalloc(128, GFP_KERNEL);
    if (page == 0) { return -ENOMEM; }
    kfree((void *)page);
    return 0;
}

int work_commit_journal(void *data, int value) blocking
{
    schedule();
    return 1;
}

int work_expire_routes(void *data, int value) blocking
{
    char *entry = (char *)kmalloc(48, GFP_KERNEL);
    if (entry == 0) { return -ENOMEM; }
    kfree((void *)entry);
    return 0;
}

int work_refill_pool(void *data, int value) blocking
{
    char *obj = (char *)kmalloc(96, GFP_KERNEL);
    if (obj == 0) { return -ENOMEM; }
    kfree((void *)obj);
    return 0;
}

int work_writeback_pages(void *data, int value) blocking
{
    schedule();
    return 0;
}

int work_scan_lru(void *data, int value) blocking
{
    schedule();
    return value + 1;
}

int work_age_dentries(void *data, int value) blocking
{
    char *tmp = (char *)kmalloc(16, GFP_KERNEL);
    if (tmp == 0) { return -ENOMEM; }
    kfree((void *)tmp);
    return 0;
}

int work_rekey_sockets(void *data, int value) blocking
{
    schedule();
    return 0;
}

int work_compact_slabs(void *data, int value) blocking
{
    char *probe = (char *)kmalloc(24, GFP_KERNEL);
    if (probe == 0) { return -ENOMEM; }
    kfree((void *)probe);
    return 0;
}

int work_update_quota(void *data, int value) blocking
{
    schedule();
    return 0;
}

int work_sync_superblock(void *data, int value) blocking
{
    schedule();
    return 0;
}

static work_fn_t deferred_work[WORK_HANDLERS] = {
    work_sync_inodes, work_flush_log, work_reap_tasks, work_balance_dirty,
    work_commit_journal, work_expire_routes, work_refill_pool,
    work_writeback_pages, work_scan_lru, work_age_dentries,
    work_rekey_sockets, work_compact_slabs, work_update_quota,
    work_sync_superblock
};

int run_deferred_work(int value) blocking
{
    int i;
    int total = 0;
    deferred_runs = deferred_runs + 1;
    for (i = 0; i < WORK_HANDLERS; i = i + 1) {
        if (deferred_work[i] != 0) {
            total = total + deferred_work[i](0, value);
        }
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* Notifier chain: non-blocking callbacks run in atomic context         */
/* ------------------------------------------------------------------ */

int notify_count_event(void *data, int value)
{
    notifier_calls = notifier_calls + 1;
    return 0;
}

int notify_update_watermark(void *data, int value)
{
    if (value > 0) {
        notifier_calls = notifier_calls + 1;
    }
    return 0;
}

int notify_touch_watchdog(void *data, int value)
{
    notifier_calls = notifier_calls + 1;
    return value;
}

static work_fn_t notifier_chain[NOTIFIER_SLOTS] = {
    notify_count_event, notify_update_watermark, notify_touch_watchdog, 0
};

/* Walk the notifier chain with interrupts disabled.  The actual targets
   never block, but a signature-based points-to analysis also admits every
   deferred_work handler here -- the paper's false-positive scenario. */
int notify_listeners_atomic(int value)
{
    unsigned long flags;
    int i;
    int rc = 0;
    flags = spin_lock_irqsave(&stats_lock);
    for (i = 0; i < NOTIFIER_SLOTS; i = i + 1) {
        if (notifier_chain[i] != 0) {
            rc = rc + notifier_chain[i](0, value);
        }
    }
    spin_unlock_irqrestore(&stats_lock, flags);
    return rc;
}

unsigned int audit_event_count(void)
{
    return audit_events;
}

unsigned int notifier_call_count(void)
{
    return notifier_calls;
}

void watchdog_init(void)
{
    spin_lock_init(&stats_lock);
    spin_lock_init(&audit_slot_lock);
    init_completion(&disk_io_done);
    audit_events = 0;
    audit_slots_used = 0;
    notifier_calls = 0;
    deferred_runs = 0;
}
"""
