"""Mini-kernel corpus: the virtual filesystem and a ram filesystem (fs/).

A small but structurally faithful VFS: inodes, dentries, open files, a
``file_operations`` function-pointer table per file type (regular ramfs files
and procfs-style synthetic files), and path lookup.  The indirection through
``file_operations`` is what exercises BlockStop's points-to analysis, and the
read/write paths are the workloads behind ``bw_file_rd``, ``lat_fs`` and
``lat_fslayer``.
"""

FILENAME = "fs/ramfs.c"

SOURCE = r"""
#define MAX_INODES 64
#define MAX_DENTRIES 64
#define MAX_FILES 32
#define MAX_NAME 28
#define RAMFS_DATA_SIZE 4096

#define S_IFREG 1
#define S_IFDIR 2
#define S_IFPROC 3

struct inode;
struct file;

struct file_operations {
    ssize_t (*read)(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos);
    ssize_t (*write)(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos);
    int (*open)(struct inode *inode, struct file *filp);
    int (*release)(struct inode *inode, struct file *filp);
};

struct inode {
    unsigned int ino;
    unsigned int mode;
    unsigned int size;
    unsigned int nlink;
    char *data;
    struct file_operations *fops;
    struct list_head dentries;
};

struct dentry {
    char name[MAX_NAME];
    struct inode *inode;
    struct dentry *parent;
    struct list_head child_link;
    int in_use;
};

struct file {
    struct inode *inode;
    struct dentry *dentry;
    unsigned int pos;
    unsigned int flags;
    int in_use;
};

static struct inode inode_table[MAX_INODES];
static struct dentry dentry_table[MAX_DENTRIES];
static struct file file_table[MAX_FILES];
static struct spinlock vfs_lock;
static unsigned int next_ino;
static unsigned int vfs_reads;
static unsigned int vfs_writes;

/* ------------------------------------------------------------------ */
/* ramfs file operations                                                */
/* ------------------------------------------------------------------ */

ssize_t ramfs_read(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos)
{
    struct inode *inode;
    unsigned int avail;
    unsigned int i;
    if (filp == 0 || buf == 0) {
        return -EINVAL;
    }
    inode = filp->inode;
    if (inode == 0 || inode->data == 0) {
        return -EINVAL;
    }
    if (pos >= inode->size) {
        return 0;
    }
    avail = inode->size - pos;
    if (count > avail) {
        count = avail;
    }
    /* Bulk data moves use memcpy, as the real kernel does; the loop below
       only patches up the trailing odd bytes so small reads stay exact. */
    memcpy((void *)buf, (void *)(inode->data + pos), count);
    i = count;
    vfs_reads = vfs_reads + 1;
    return (ssize_t)count;
}

ssize_t ramfs_write(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos)
{
    struct inode *inode;
    unsigned int i;
    if (filp == 0 || buf == 0) {
        return -EINVAL;
    }
    inode = filp->inode;
    if (inode == 0) {
        return -EINVAL;
    }
    if (inode->data == 0) {
        inode->data = (char *)kmalloc(RAMFS_DATA_SIZE, GFP_KERNEL);
        if (inode->data == 0) {
            return -ENOMEM;
        }
    }
    if (pos >= RAMFS_DATA_SIZE) {
        return -EINVAL;
    }
    if (pos + count > RAMFS_DATA_SIZE) {
        count = RAMFS_DATA_SIZE - pos;
    }
    memcpy((void *)(inode->data + pos), (void *)buf, count);
    i = count;
    if (pos + count > inode->size) {
        inode->size = pos + count;
    }
    vfs_writes = vfs_writes + 1;
    return (ssize_t)count;
}

int ramfs_open(struct inode *inode, struct file *filp)
{
    return 0;
}

int ramfs_release(struct inode *inode, struct file *filp)
{
    return 0;
}

static struct file_operations ramfs_fops = {
    .read = ramfs_read,
    .write = ramfs_write,
    .open = ramfs_open,
    .release = ramfs_release
};

/* ------------------------------------------------------------------ */
/* procfs-style synthetic files                                         */
/* ------------------------------------------------------------------ */

ssize_t proc_meminfo_read(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos)
{
    unsigned int outstanding = mm_outstanding_bytes();
    unsigned int i;
    char digits[16];
    unsigned int ndigits = 0;
    if (pos > 0) {
        return 0;
    }
    if (outstanding == 0) {
        digits[0] = '0';
        ndigits = 1;
    }
    while (outstanding > 0 && ndigits < 15) {
        digits[ndigits] = (char)('0' + (int)(outstanding % 10));
        outstanding = outstanding / 10;
        ndigits = ndigits + 1;
    }
    if (ndigits > count) {
        ndigits = count;
    }
    for (i = 0; i < ndigits; i = i + 1) {
        buf[i] = digits[ndigits - 1 - i];
    }
    vfs_reads = vfs_reads + 1;
    return (ssize_t)ndigits;
}

ssize_t proc_null_write(struct file *filp, char * count(count) buf, unsigned int count, unsigned int pos)
{
    vfs_writes = vfs_writes + 1;
    return (ssize_t)count;
}

static struct file_operations proc_fops = {
    .read = proc_meminfo_read,
    .write = proc_null_write,
    .open = ramfs_open,
    .release = ramfs_release
};

/* ------------------------------------------------------------------ */
/* Inode and dentry management                                          */
/* ------------------------------------------------------------------ */

struct inode *iget(unsigned int mode)
{
    unsigned int i;
    unsigned long flags;
    struct inode *inode = 0;
    flags = spin_lock_irqsave(&vfs_lock);
    for (i = 0; i < MAX_INODES; i = i + 1) {
        if (inode_table[i].nlink == 0) {
            inode = &inode_table[i];
            break;
        }
    }
    if (inode != 0) {
        next_ino = next_ino + 1;
        inode->ino = next_ino;
        inode->mode = mode;
        inode->size = 0;
        inode->nlink = 1;
        inode->data = 0;
        if (mode == S_IFPROC) {
            inode->fops = &proc_fops;
        } else {
            inode->fops = &ramfs_fops;
        }
        INIT_LIST_HEAD(&inode->dentries);
    }
    spin_unlock_irqrestore(&vfs_lock, flags);
    return inode;
}

void iput(struct inode *inode)
{
    char *victim;
    if (inode == 0) {
        return;
    }
    if (inode->nlink > 0) {
        inode->nlink = inode->nlink - 1;
    }
    if (inode->nlink == 0 && inode->data != 0) {
        /* CCount fix: drop the inode's reference before the free is checked. */
        victim = inode->data;
        inode->data = 0;
        inode->size = 0;
        kfree((void *)victim);
    }
}

struct dentry *dentry_alloc(char * nullterm name, struct inode *inode nonnull)
{
    unsigned int i;
    unsigned int j;
    struct dentry *dentry = 0;
    for (i = 0; i < MAX_DENTRIES; i = i + 1) {
        if (dentry_table[i].in_use == 0) {
            dentry = &dentry_table[i];
            break;
        }
    }
    if (dentry == 0) {
        return 0;
    }
    dentry->in_use = 1;
    dentry->inode = inode;
    dentry->parent = 0;
    j = 0;
    while (name[j] != 0 && j < MAX_NAME - 1) {
        dentry->name[j] = name[j];
        j = j + 1;
    }
    dentry->name[j] = 0;
    list_add_tail(&dentry->child_link, &inode->dentries);
    return dentry;
}

struct dentry *path_lookup(char * nullterm name)
{
    unsigned int i;
    for (i = 0; i < MAX_DENTRIES; i = i + 1) {
        if (dentry_table[i].in_use != 0) {
            if (kstrncmp(dentry_table[i].name, name, MAX_NAME) == 0) {
                return &dentry_table[i];
            }
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* The file layer (open / read / write / close)                         */
/* ------------------------------------------------------------------ */

int vfs_create(char * nullterm name, unsigned int mode)
{
    struct inode *inode;
    struct dentry *dentry;
    inode = iget(mode);
    if (inode == 0) {
        return -ENOMEM;
    }
    dentry = dentry_alloc(name, inode);
    if (dentry == 0) {
        iput(inode);
        return -ENOMEM;
    }
    return 0;
}

int vfs_open(char * nullterm name)
{
    struct dentry *dentry;
    struct file *filp = 0;
    int fd = -1;
    int i;
    int err;
    dentry = path_lookup(name);
    if (dentry == 0) {
        return -ENOENT;
    }
    for (i = 0; i < MAX_FILES; i = i + 1) {
        if (file_table[i].in_use == 0) {
            filp = &file_table[i];
            fd = i;
            break;
        }
    }
    if (filp == 0) {
        return -ENOMEM;
    }
    filp->in_use = 1;
    filp->inode = dentry->inode;
    filp->dentry = dentry;
    filp->pos = 0;
    filp->flags = 0;
    if (filp->inode->fops != 0 && filp->inode->fops->open != 0) {
        err = filp->inode->fops->open(filp->inode, filp);
        if (err != 0) {
            filp->in_use = 0;
            return err;
        }
    }
    return fd;
}

ssize_t vfs_read(int fd, char * count(count) buf, unsigned int count)
{
    struct file *filp;
    ssize_t got;
    if (fd < 0 || fd >= MAX_FILES) {
        return -EBADF;
    }
    filp = &file_table[fd];
    if (filp->in_use == 0 || filp->inode == 0 || filp->inode->fops == 0) {
        return -EBADF;
    }
    if (filp->inode->fops->read == 0) {
        return -EINVAL;
    }
    got = filp->inode->fops->read(filp, buf, count, filp->pos);
    if (got > 0) {
        filp->pos = filp->pos + (unsigned int)got;
    }
    return got;
}

ssize_t vfs_write(int fd, char * count(count) buf, unsigned int count)
{
    struct file *filp;
    ssize_t put;
    if (fd < 0 || fd >= MAX_FILES) {
        return -EBADF;
    }
    filp = &file_table[fd];
    if (filp->in_use == 0 || filp->inode == 0 || filp->inode->fops == 0) {
        return -EBADF;
    }
    if (filp->inode->fops->write == 0) {
        return -EINVAL;
    }
    put = filp->inode->fops->write(filp, buf, count, filp->pos);
    if (put > 0) {
        filp->pos = filp->pos + (unsigned int)put;
    }
    return put;
}

int vfs_seek(int fd, unsigned int pos)
{
    if (fd < 0 || fd >= MAX_FILES) {
        return -EBADF;
    }
    if (file_table[fd].in_use == 0) {
        return -EBADF;
    }
    file_table[fd].pos = pos;
    return 0;
}

int vfs_close(int fd)
{
    struct file *filp;
    if (fd < 0 || fd >= MAX_FILES) {
        return -EBADF;
    }
    filp = &file_table[fd];
    if (filp->in_use == 0) {
        return -EBADF;
    }
    if (filp->inode != 0 && filp->inode->fops != 0 && filp->inode->fops->release != 0) {
        filp->inode->fops->release(filp->inode, filp);
    }
    filp->in_use = 0;
    filp->inode = 0;
    filp->dentry = 0;
    return 0;
}

unsigned int vfs_read_count(void)
{
    return vfs_reads;
}

unsigned int vfs_write_count(void)
{
    return vfs_writes;
}

void vfs_init(void)
{
    unsigned int i;
    spin_lock_init(&vfs_lock);
    next_ino = 0;
    vfs_reads = 0;
    vfs_writes = 0;
    for (i = 0; i < MAX_INODES; i = i + 1) {
        inode_table[i].nlink = 0;
        inode_table[i].data = 0;
        inode_table[i].fops = 0;
    }
    for (i = 0; i < MAX_DENTRIES; i = i + 1) {
        dentry_table[i].in_use = 0;
        dentry_table[i].inode = 0;
        dentry_table[i].parent = 0;
    }
    for (i = 0; i < MAX_FILES; i = i + 1) {
        file_table[i].in_use = 0;
        file_table[i].inode = 0;
        file_table[i].dentry = 0;
    }
    vfs_create("console", S_IFREG);
    vfs_create("meminfo", S_IFPROC);
}
"""
