"""Mini-kernel corpus: the module loader (kernel/module.c).

Loading a module allocates the module descriptor and its code/data area,
copies the "ELF" payload in, runs the init hook through a function pointer and
links the module into the global list; unloading tears it all down.  This is
the workload behind the paper's module-loading overhead numbers for CCount
(8% uniprocessor, 12% SMP).
"""

FILENAME = "kernel/module.c"

SOURCE = r"""
#define MODULE_NAME_LEN 24
#define MAX_MODULE_SIZE 8192

struct module {
    char name[MODULE_NAME_LEN];
    unsigned int core_size;
    char * count(core_size) core_area;
    int live;
    struct list_head list;
    int (*init_fn)(void);
};

static struct list_head module_list;
static struct spinlock module_lock;
static unsigned int modules_loaded;
static unsigned int modules_unloaded;

int default_module_init(void)
{
    return 0;
}

struct module *load_module(char * nullterm name, char * count(size) payload,
                           unsigned int size) blocking
{
    struct module *mod;
    unsigned int i;
    unsigned long flags;
    if (size > MAX_MODULE_SIZE) {
        return 0;
    }
    mod = (struct module *)kmalloc(sizeof(struct module), GFP_KERNEL);
    if (mod == 0) {
        return 0;
    }
    __ccount_rtti((void *)mod, "struct module");
    mod->core_size = size;
    mod->core_area = (char *)kmalloc(size, GFP_KERNEL);
    if (mod->core_area == 0) {
        kfree((void *)mod);
        return 0;
    }
    i = 0;
    while (name[i] != 0 && i < MODULE_NAME_LEN - 1) {
        mod->name[i] = name[i];
        i = i + 1;
    }
    mod->name[i] = 0;
    /* "Relocation": copy the payload into the core area and patch it. */
    copy_bytes(mod->core_area, payload, size);
    for (i = 0; i < size; i = i + 4) {
        mod->core_area[i] = (char)(mod->core_area[i] ^ 0x5a);
    }
    mod->live = 1;
    mod->init_fn = default_module_init;
    INIT_LIST_HEAD(&mod->list);
    flags = spin_lock_irqsave(&module_lock);
    list_add_tail(&mod->list, &module_list);
    modules_loaded = modules_loaded + 1;
    spin_unlock_irqrestore(&module_lock, flags);
    if (mod->init_fn != 0) {
        mod->init_fn();
    }
    return mod;
}

int unload_module(struct module *mod nonnull)
{
    unsigned long flags;
    if (mod->live == 0) {
        return -EINVAL;
    }
    flags = spin_lock_irqsave(&module_lock);
    list_del(&mod->list);
    modules_unloaded = modules_unloaded + 1;
    spin_unlock_irqrestore(&module_lock, flags);
    mod->live = 0;
    if (mod->core_area != 0) {
        /* CCount fix: null the owning pointer before freeing its target. */
        char *core = mod->core_area;
        mod->core_area = 0;
        kfree((void *)core);
    }
    mod->init_fn = 0;
    kfree((void *)mod);
    return 0;
}

unsigned int module_count(void)
{
    return modules_loaded - modules_unloaded;
}

void module_init_subsystem(void)
{
    INIT_LIST_HEAD(&module_list);
    spin_lock_init(&module_lock);
    modules_loaded = 0;
    modules_unloaded = 0;
}
"""
