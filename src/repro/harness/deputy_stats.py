"""Experiments E2/E6: Deputy conversion statistics (§2.1's in-text numbers)."""

from __future__ import annotations

from dataclasses import dataclass

from ..deputy import ConversionReport, DeputyOptions, build_report, instrument_program

#: The paper's reported conversion statistics for the 435 KLoC kernel.
PAPER_DEPUTY_STATS = {
    "lines_converted": 435_000,
    "annotated_fraction": 0.006,   # ~2627 annotated lines, about 0.6%
    "trusted_fraction": 0.008,     # ~3273 trusted lines, less than 0.8%
    "person_weeks": 7,
}


@dataclass
class DeputyStatsResult:
    """Measured conversion census plus the paper's reference values."""

    report: ConversionReport
    paper: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.paper is None:
            self.paper = dict(PAPER_DEPUTY_STATS)

    def shape_holds(self) -> bool:
        """Annotated and trusted code stay a small fraction of the corpus.

        The paper's headline claim is that the annotation burden is tiny
        (≈0.6% annotated, <0.8% trusted).  Our corpus is three orders of
        magnitude smaller, so the bar is "a few percent", not the exact
        fraction.
        """
        return (self.report.annotated_fraction < 0.08
                and self.report.trusted_fraction < 0.08
                and self.report.check_errors == 0)


def run_deputy_stats(options: DeputyOptions | None = None,
                     engine: "AnalysisEngine | None" = None) -> DeputyStatsResult:
    """Convert the kernel corpus with Deputy and compute the census.

    The conversion rewrites the AST in place, so it runs on a mutation-safe
    copy of the engine's cached parse rather than re-parsing the corpus.
    """
    from ..engine import AnalysisEngine
    from ..kernel.build import parse_corpus
    from ..kernel.corpus import KERNEL_FILES

    if engine is None:
        engine = AnalysisEngine()
    # The census is defined over the kernel corpus; an engine configured for
    # a different corpus cannot substitute its parse.
    program = engine.fresh_kernel_program() or parse_corpus(KERNEL_FILES)
    instrumentation = instrument_program(program, options or DeputyOptions())
    report = build_report(program, instrumentation)
    return DeputyStatsResult(report=report)
