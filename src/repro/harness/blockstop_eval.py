"""Experiment E5: BlockStop on the kernel corpus (§2.3's in-text numbers)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blockstop import (
    BlockStopReport,
    Precision,
    RuntimeCheckSet,
    build_report,
    run_blockstop,
)

#: The paper's reference values.
PAPER_BLOCKSTOP = {
    "real_bugs": 2,
    "runtime_checks": 15,
}

#: The functions the paper's two seeded bugs live in (ground truth for
#: scoring against PAPER_BLOCKSTOP["real_bugs"]).
SEEDED_BUG_CALLERS = frozenset({"buggy_stats_update", "disk_timeout_interrupt"})

#: Additional seeded bugs only the interprocedural summary framework finds
#: (the caller never names a disable primitive; the atomic context arrives
#: through the callee's IRQ delta).  Scored separately so the paper's
#: two-bug headline number stays comparable.
INTERPROC_BUG_CALLERS = frozenset({"buggy_deferred_flush"})

#: Condition-gated seeds: the ``if (1)`` twin of a constant-gated debug
#: branch — its blocking call inside the atomic region is live and must
#: keep reporting after edge pruning.
CONST_TWIN_BUG_CALLERS = frozenset({"stats_sample_slow"})

#: Constant-false shapes the condition-aware lattice must prune: a blocking
#: call inside an ``if (0)`` debug arm of an atomic region, and an
#: ``if (0)``-guarded lock acquire whose leak previously reported.  Any
#: blockstop report from these callers is a pruned-FP regression.
CONST_PRUNED_CALLERS = frozenset({"stats_sample_fast", "audit_try_slot_debug",
                                  "audit_probe_debug"})

#: Every caller whose report is a true positive, paper-era, interprocedural,
#: or condition-gated.
ALL_SEEDED_CALLERS = (SEEDED_BUG_CALLERS | INTERPROC_BUG_CALLERS
                      | CONST_TWIN_BUG_CALLERS)


@dataclass
class BlockStopEvalResult:
    """BlockStop run before and after inserting the manual run-time checks."""

    before: BlockStopReport
    after: BlockStopReport
    field_sensitive: BlockStopReport
    runtime_checks: RuntimeCheckSet
    real_bug_callers: set[str] = field(default_factory=set)
    false_positive_callees: set[str] = field(default_factory=set)
    paper: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.paper is None:
            self.paper = dict(PAPER_BLOCKSTOP)

    @property
    def real_bugs_found(self) -> int:
        return len(self.real_bug_callers & SEEDED_BUG_CALLERS)

    @property
    def interproc_bugs_found(self) -> int:
        return len(self.real_bug_callers & INTERPROC_BUG_CALLERS)

    @property
    def const_twin_bugs_found(self) -> int:
        """``if (1)`` twins of pruned shapes that (correctly) still report."""
        return len(self.real_bug_callers & CONST_TWIN_BUG_CALLERS)

    @property
    def pruned_fp_reports(self) -> int:
        """Reports from constant-false shapes — must be zero after pruning."""
        return sum(1 for v in self.before.reported
                   if v.caller in CONST_PRUNED_CALLERS)

    def shape_holds(self) -> bool:
        """The §2.3 claims:

        * both seeded bugs are found (plus the interprocedural seeds the
          summary framework adds, and the live ``if (1)`` twins of the
          condition-gated shapes);
        * the constant-false shapes are pruned — zero reports from them;
        * the conservative points-to analysis also produces false positives;
        * the manual run-time checks silence every false positive while the
          real bugs are still reported;
        * the field-sensitive points-to ablation removes (most of) the false
          positives without the manual checks.
        """
        bugs_found = (self.real_bugs_found == 2
                      and self.interproc_bugs_found == len(INTERPROC_BUG_CALLERS)
                      and self.const_twin_bugs_found == len(CONST_TWIN_BUG_CALLERS))
        pruned = self.pruned_fp_reports == 0
        has_false_positives = len(self.false_positive_callees) > 0
        silenced = (self.after.violations_reported > 0
                    and {v.caller for v in self.after.reported} <= ALL_SEEDED_CALLERS
                    and self.after.violations_silenced > 0)
        improved = (self.field_sensitive.violations_reported
                    <= self.before.violations_reported)
        return bugs_found and pruned and has_false_positives and silenced and improved


def run_blockstop_eval(engine: "AnalysisEngine | None" = None) -> BlockStopEvalResult:
    """Run BlockStop with and without the manual run-time checks.

    All three runs (before/after the manual checks, and the field-sensitive
    ablation) share the engine's parsed corpus; the two type-based runs also
    share its call graph and blocking summary, so the corpus is parsed once
    and the points-to analysis runs once per precision instead of per run.
    """
    from ..engine import AnalysisEngine

    if engine is None:
        engine = AnalysisEngine()
    program = engine.program()
    # The before/after legs are defined as TYPE_BASED runs; if the caller's
    # engine is configured for another precision, derive type-based artifacts
    # alongside it (sharing its parse through the common cache) rather than
    # silently mislabeling the reports.
    if engine.precision is Precision.TYPE_BASED:
        base_engine = engine
    else:
        base_engine = AnalysisEngine(files=engine.files, defines=engine.defines,
                                     precision=Precision.TYPE_BASED,
                                     cache=engine.cache)
    shared = base_engine.artifacts()

    before_result = run_blockstop(program, Precision.TYPE_BASED,
                                  graph=shared.graph, blocking=shared.blocking,
                                  irq_handlers=shared.irq_handlers,
                                  consts=shared.consts)
    before = build_report(before_result)

    real_bug_callers = {v.caller for v in before_result.reported
                        if v.caller in ALL_SEEDED_CALLERS}
    # Every blocking callee implicated from a non-seeded caller is a false
    # positive of the conservative points-to analysis; the remedy is a manual
    # run-time assertion at the top of that callee.
    false_positive_callees = {v.callee for v in before_result.reported
                              if v.caller not in ALL_SEEDED_CALLERS}
    checks = RuntimeCheckSet(set(false_positive_callees))

    after_result = run_blockstop(program, Precision.TYPE_BASED,
                                 runtime_checks=checks,
                                 graph=shared.graph, blocking=shared.blocking,
                                 irq_handlers=shared.irq_handlers,
                                 consts=shared.consts)
    after = build_report(after_result)

    field_engine = AnalysisEngine(files=engine.files, defines=engine.defines,
                                  precision=Precision.FIELD_SENSITIVE,
                                  cache=engine.cache)
    field_shared = field_engine.artifacts()
    field_result = run_blockstop(program, Precision.FIELD_SENSITIVE,
                                 graph=field_shared.graph,
                                 blocking=field_shared.blocking,
                                 irq_handlers=field_shared.irq_handlers,
                                 consts=field_shared.consts)
    field_report = build_report(field_result)

    return BlockStopEvalResult(
        before=before, after=after, field_sensitive=field_report,
        runtime_checks=checks,
        real_bug_callers=real_bug_callers,
        false_positive_callees=false_positive_callees)
