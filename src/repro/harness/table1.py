"""Experiment E1: Table 1 — relative performance of the deputized kernel."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deputy import DeputyOptions
from ..hbench import PAPER_TABLE1, SuiteResult, run_suite
from ..kernel.build import BuildConfig


@dataclass
class Table1Result:
    """Measured vs. paper-reported Table 1."""

    suite: SuiteResult
    paper: dict[str, float] = field(default_factory=lambda: dict(PAPER_TABLE1))

    def shape_holds(self) -> bool:
        """The qualitative claims of Table 1, checked against our numbers.

        * bandwidth tests lose little throughput (small overheads);
        * latency tests pay more than bandwidth tests on average;
        * no benchmark slows down by more than ~2.2x.
        """
        bw = [row.relative for row in self.suite.bandwidth_rows()]
        lat = [row.relative for row in self.suite.latency_rows()]
        if not bw or not lat:
            return False
        bw_ok = all(value >= 0.70 for value in bw)
        lat_ok = all(value <= 2.2 for value in lat)
        bw_mean_overhead = sum(1.0 / value for value in bw) / len(bw) - 1.0
        lat_mean_overhead = sum(lat) / len(lat) - 1.0
        return bw_ok and lat_ok and lat_mean_overhead >= bw_mean_overhead

    def rows(self) -> list[tuple[str, float, float]]:
        return [(row.name, row.relative, self.paper.get(row.name, float("nan")))
                for row in self.suite.rows]

    def format_table(self) -> str:
        return self.suite.format_table()


def run_table1(optimize: bool = True, shared_kernels: bool = True,
               engine: "AnalysisEngine | None" = None) -> Table1Result:
    """Regenerate Table 1 (optionally with the check optimizer disabled).

    When an :class:`~repro.engine.AnalysisEngine` is supplied (or for the
    default configuration, created on the fly), both kernel builds start from
    the engine's cached parse of the corpus instead of re-parsing it.
    """
    from ..engine import AnalysisEngine

    if engine is None:
        engine = AnalysisEngine()
    options = DeputyOptions(optimize=optimize)
    suite = run_suite(
        instrumented_config=BuildConfig(deputy=True, deputy_options=options),
        label="deputy" if optimize else "deputy (no check optimizer)",
        shared_kernels=shared_kernels,
        program_factory=engine.kernel_program_factory())
    return Table1Result(suite=suite)
