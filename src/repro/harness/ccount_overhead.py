"""Experiments E4/A2: CCount fork and module-loading overheads (§2.2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.boot import boot_kernel
from ..kernel.build import BuildConfig, build_kernel
from ..kernel.workloads import workload_fork, workload_module_load

#: The paper's reported overheads.
PAPER_CCOUNT_OVERHEADS = {
    ("fork", "up"): 0.19,
    ("fork", "smp"): 0.63,
    ("module", "up"): 0.08,
    ("module", "smp"): 0.12,
}


@dataclass
class OverheadRow:
    """One workload/configuration overhead measurement."""

    workload: str
    configuration: str           # "up" or "smp"
    baseline_cycles: int
    ccount_cycles: int
    paper_overhead: float | None = None

    @property
    def overhead(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return self.ccount_cycles / self.baseline_cycles - 1.0


@dataclass
class CCountOverheadResult:
    """The four (workload × UP/SMP) overheads."""

    rows: list[OverheadRow] = field(default_factory=list)

    def row(self, workload: str, configuration: str) -> OverheadRow:
        for row in self.rows:
            if row.workload == workload and row.configuration == configuration:
                return row
        raise KeyError((workload, configuration))

    def shape_holds(self) -> bool:
        """The qualitative §2.2 claims:

        * CCount costs measurably more on fork than on module loading;
        * the SMP configuration (locked RC updates) is more expensive than
          the uniprocessor one for both workloads;
        * no overhead explodes past ~2x.
        """
        try:
            fork_up = self.row("fork", "up").overhead
            fork_smp = self.row("fork", "smp").overhead
            module_up = self.row("module", "up").overhead
            module_smp = self.row("module", "smp").overhead
        except KeyError:
            return False
        ordered = fork_smp > fork_up and module_smp >= module_up
        fork_dominates = fork_up > module_up
        bounded = all(0.0 <= value <= 1.2 for value in
                      (fork_up, fork_smp, module_up, module_smp))
        return ordered and fork_dominates and bounded

    def format_table(self) -> str:
        lines = [f"{'workload':<10}{'config':<8}{'overhead':>10}{'paper':>10}"]
        for row in self.rows:
            paper = f"{row.paper_overhead:.0%}" if row.paper_overhead is not None else "-"
            lines.append(f"{row.workload:<10}{row.configuration:<8}"
                         f"{row.overhead:>10.1%}{paper:>10}")
        return "\n".join(lines)


def _measure(workload: str, smp: bool, ccount: bool,
             iterations: int, engine: "AnalysisEngine | None" = None) -> int:
    config = BuildConfig(ccount=ccount)
    base_program = (engine.fresh_kernel_program(config)
                    if engine is not None else None)
    build = build_kernel(config, base_program=base_program)
    kernel = boot_kernel(build=build, smp=smp, reset_cycles_after_boot=True)
    if workload == "fork":
        return workload_fork(kernel, iterations).cycles
    return workload_module_load(kernel, iterations).cycles


def run_ccount_overheads(fork_iterations: int = 12,
                         module_iterations: int = 8,
                         engine: "AnalysisEngine | None" = None) -> CCountOverheadResult:
    """Measure fork and module-loading overheads for UP and SMP kernels.

    Each of the eight kernel builds starts from the engine's cached parse
    (created on the fly if the caller does not supply one).
    """
    from ..engine import AnalysisEngine

    if engine is None:
        engine = AnalysisEngine()
    result = CCountOverheadResult()
    for workload, iterations in (("fork", fork_iterations),
                                 ("module", module_iterations)):
        for configuration, smp in (("up", False), ("smp", True)):
            baseline = _measure(workload, smp, ccount=False,
                                iterations=iterations, engine=engine)
            ccount = _measure(workload, smp, ccount=True,
                              iterations=iterations, engine=engine)
            result.rows.append(OverheadRow(
                workload=workload, configuration=configuration,
                baseline_cycles=baseline, ccount_cycles=ccount,
                paper_overhead=PAPER_CCOUNT_OVERHEADS.get((workload, configuration))))
    return result


def run_locked_cost_sweep(costs: tuple[int, ...] = (0, 8, 16, 22, 32),
                          iterations: int = 10) -> list[tuple[int, float]]:
    """Ablation A2: fork overhead as a function of the locked-operation cost."""
    from ..machine.cycles import CostModel

    sweep: list[tuple[int, float]] = []
    for extra in costs:
        model = CostModel(smp=True, rc_locked_extra=extra)
        baseline_kernel = boot_kernel(BuildConfig(), cost_model=model,
                                      reset_cycles_after_boot=True)
        ccount_kernel = boot_kernel(BuildConfig(ccount=True), cost_model=model,
                                    reset_cycles_after_boot=True)
        baseline = workload_fork(baseline_kernel, iterations).cycles
        ccount = workload_fork(ccount_kernel, iterations).cycles
        sweep.append((extra, ccount / baseline - 1.0 if baseline else 0.0))
    return sweep
