"""Top-level experiment driver: run everything and render a summary.

``python -m repro.harness.report`` regenerates every experiment in
EXPERIMENTS.md and prints the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .blockstop_eval import BlockStopEvalResult, run_blockstop_eval
from .ccount_overhead import CCountOverheadResult, run_ccount_overheads
from .ccount_stats import CCountStatsResult, run_ccount_stats
from .deputy_stats import DeputyStatsResult, run_deputy_stats
from .table1 import Table1Result, run_table1


@dataclass
class FullReport:
    """Results of every experiment."""

    table1: Optional[Table1Result] = None
    deputy_stats: Optional[DeputyStatsResult] = None
    ccount_stats: Optional[CCountStatsResult] = None
    ccount_overheads: Optional[CCountOverheadResult] = None
    blockstop: Optional[BlockStopEvalResult] = None

    def render(self) -> str:
        sections: list[str] = []
        if self.table1 is not None:
            sections.append("== E1: Table 1 (hbench relative performance) ==")
            sections.append(self.table1.format_table())
            sections.append(f"shape holds: {self.table1.shape_holds()}")
        if self.deputy_stats is not None:
            sections.append("== E2/E6: Deputy conversion ==")
            sections.append(str(self.deputy_stats.report))
            sections.append(f"shape holds: {self.deputy_stats.shape_holds()}")
        if self.ccount_stats is not None:
            sections.append("== E3: CCount free verification ==")
            sections.append(str(self.ccount_stats.conversion))
            sections.append(str(self.ccount_stats.boot_report))
            sections.append(str(self.ccount_stats.light_use_report))
            sections.append(f"shape holds: {self.ccount_stats.shape_holds()}")
        if self.ccount_overheads is not None:
            sections.append("== E4: CCount overheads ==")
            sections.append(self.ccount_overheads.format_table())
            sections.append(f"shape holds: {self.ccount_overheads.shape_holds()}")
        if self.blockstop is not None:
            sections.append("== E5: BlockStop ==")
            sections.append(str(self.blockstop.before))
            sections.append(f"real bugs found: {self.blockstop.real_bugs_found}")
            sections.append(f"run-time checks inserted: {len(self.blockstop.runtime_checks)}")
            sections.append(f"violations after checks: {self.blockstop.after.violations_reported}")
            sections.append(f"shape holds: {self.blockstop.shape_holds()}")
        return "\n\n".join(sections)


def run_all(include_table1: bool = True,
            engine: "AnalysisEngine | None" = None) -> FullReport:
    """Run every experiment (Table 1 is the slowest; it can be skipped).

    One analysis engine is shared across the experiments, so the corpus is
    parsed once and instrumenting builds copy that parse instead of redoing
    it.
    """
    from ..engine import AnalysisEngine

    if engine is None:
        engine = AnalysisEngine()
    report = FullReport()
    if include_table1:
        report.table1 = run_table1(engine=engine)
    report.deputy_stats = run_deputy_stats(engine=engine)
    report.ccount_stats = run_ccount_stats(engine=engine)
    report.ccount_overheads = run_ccount_overheads(engine=engine)
    report.blockstop = run_blockstop_eval(engine=engine)
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_all().render())


if __name__ == "__main__":  # pragma: no cover
    main()
