"""Experiment E3: CCount free verification (§2.2's in-text numbers)."""

from __future__ import annotations

from dataclasses import dataclass

from ..ccount import (
    CCountConfig,
    CCountConversionReport,
    CCountRunReport,
    build_conversion_report,
    build_run_report,
)
from ..kernel.boot import boot_kernel
from ..kernel.build import BuildConfig
from ..kernel.workloads import workload_boot_to_login, workload_light_use

#: The paper's reference values.
PAPER_CCOUNT_STATS = {
    "type_layouts": 32,
    "rtti_sites": 27,
    "memcpy_memset_changes": 50,
    "null_out_fixes": 27,
    "delayed_free_scopes": 26,
    "boot_frees_verified": 107_000,
    "boot_good_fraction": 1.00,
    "light_use_good_fraction": 0.985,
    "person_weeks": 6,
}


@dataclass
class CCountStatsResult:
    """Conversion census plus boot/light-use free verification."""

    conversion: CCountConversionReport
    boot_report: CCountRunReport
    light_use_report: CCountRunReport
    paper: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.paper is None:
            self.paper = dict(PAPER_CCOUNT_STATS)

    def shape_holds(self) -> bool:
        """The §2.2 claims, scaled to the mini-kernel.

        All boot-time frees verify, and light use keeps the good-free
        fraction at or above the paper's 98.5%.
        """
        return (self.boot_report.total_frees > 0
                and self.boot_report.good_fraction >= 0.99
                and self.light_use_report.good_fraction >= 0.985)


def run_ccount_stats(config: CCountConfig | None = None,
                     engine: "AnalysisEngine | None" = None) -> CCountStatsResult:
    """Run boot-to-login and light-use under the CCount runtime.

    The instrumented build starts from the engine's cached parse instead of
    re-parsing the corpus.
    """
    from ..engine import AnalysisEngine
    from ..kernel.build import build_kernel

    if engine is None:
        engine = AnalysisEngine()
    build_config = BuildConfig(ccount=True,
                               ccount_config=config or CCountConfig())
    build = build_kernel(build_config,
                         base_program=engine.fresh_kernel_program(build_config))
    kernel = boot_kernel(build=build, boot=False)
    assert kernel.ccount is not None
    workload_boot_to_login(kernel)
    conversion = build_conversion_report(kernel.build.program, kernel.build.ccount_result)
    boot_report = CCountRunReport(stats=_copy_stats(kernel.ccount.stats),
                                  workload="boot to login prompt")
    workload_light_use(kernel)
    light_report = build_run_report(kernel.ccount, workload="light use (idle + scp kernel)")
    return CCountStatsResult(conversion=conversion, boot_report=boot_report,
                             light_use_report=light_report)


def _copy_stats(stats):
    from copy import deepcopy
    return deepcopy(stats)
