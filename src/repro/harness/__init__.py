"""Experiment harness: regenerate every table, figure and in-text number."""

from .blockstop_eval import (
    ALL_SEEDED_CALLERS,
    CONST_PRUNED_CALLERS,
    CONST_TWIN_BUG_CALLERS,
    INTERPROC_BUG_CALLERS,
    BlockStopEvalResult,
    PAPER_BLOCKSTOP,
    SEEDED_BUG_CALLERS,
    run_blockstop_eval,
)
from .ccount_overhead import (
    CCountOverheadResult,
    OverheadRow,
    PAPER_CCOUNT_OVERHEADS,
    run_ccount_overheads,
    run_locked_cost_sweep,
)
from .ccount_stats import CCountStatsResult, PAPER_CCOUNT_STATS, run_ccount_stats
from .deputy_stats import DeputyStatsResult, PAPER_DEPUTY_STATS, run_deputy_stats
from .report import FullReport, run_all
from .table1 import Table1Result, run_table1

__all__ = [
    "ALL_SEEDED_CALLERS", "BlockStopEvalResult", "CONST_PRUNED_CALLERS",
    "CONST_TWIN_BUG_CALLERS", "INTERPROC_BUG_CALLERS",
    "PAPER_BLOCKSTOP", "SEEDED_BUG_CALLERS",
    "run_blockstop_eval",
    "CCountOverheadResult", "OverheadRow", "PAPER_CCOUNT_OVERHEADS",
    "run_ccount_overheads", "run_locked_cost_sweep",
    "CCountStatsResult", "PAPER_CCOUNT_STATS", "run_ccount_stats",
    "DeputyStatsResult", "PAPER_DEPUTY_STATS", "run_deputy_stats",
    "FullReport", "run_all",
    "Table1Result", "run_table1",
]
