"""Token definitions for the MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .errors import SourceLocation


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()
    KEYWORD = auto()
    INT_LIT = auto()
    CHAR_LIT = auto()
    STRING_LIT = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words of the MiniC language proper.
KEYWORDS: frozenset[str] = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "_Bool",
    "struct", "union", "enum", "typedef",
    "static", "extern", "const", "volatile", "inline", "register", "auto",
    "if", "else", "while", "for", "do", "switch", "case", "default",
    "break", "continue", "return", "goto", "sizeof", "asm",
})

#: Deputy / CCount / BlockStop annotation keywords.  These are *contextual*
#: keywords: the lexer emits them as identifiers and the parser recognizes
#: them in declarator positions, which is exactly how the real Deputy extends
#: C without breaking existing programs (erasure semantics).
ANNOTATION_KEYWORDS: frozenset[str] = frozenset({
    "count", "bound", "nullterm", "nonnull", "opt", "sentinel",
    "trusted", "when",
    "blocking", "noblock", "blocking_if_wait",
    "acquires", "releases", "locks_irq", "stacksize", "errcodes",
})

#: Multi-character punctuators, longest first so the lexer can match greedily.
PUNCTUATORS: tuple[str, ...] = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    value: int | str | None
    location: SourceLocation

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_ident(self, *names: str) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return not names or self.text in names

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
