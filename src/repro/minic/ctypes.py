"""The MiniC type representation and layout rules.

MiniC models the i386 kernel ABI the paper targets (Linux 2.6.15.5 on a
Pentium M): ``char`` is 1 byte, ``short`` 2, ``int`` and ``long`` 4,
``long long`` 8, pointers 4, and structs are laid out with natural alignment.
Keeping the data layout explicit matters for two of the three tools:

* CCount maintains one 8-bit reference count per 16-byte chunk of memory, so
  object sizes and field offsets must be real byte offsets.
* Deputy bounds checks are expressed in element counts, so element sizes must
  be known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..annotations.attrs import AnnotationSet
from .errors import TypeError_

POINTER_SIZE = 4
POINTER_ALIGN = 4


class CType:
    """Base class of all MiniC types."""

    annotations: AnnotationSet

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        raise NotImplementedError

    def is_integer(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_arithmetic(self) -> bool:
        return self.is_integer()

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()

    def is_void(self) -> bool:
        return isinstance(self, CVoid)

    def is_aggregate(self) -> bool:
        return isinstance(self, (CStruct, CArray))

    def is_function(self) -> bool:
        return isinstance(self, CFunc)

    def strip(self) -> "CType":
        """Resolve typedefs down to the underlying type."""
        return self


@dataclass(frozen=True)
class CVoid(CType):
    """The ``void`` type (size 1 so ``void *`` arithmetic behaves like gcc)."""

    @property
    def size(self) -> int:
        return 1

    @property
    def align(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"


#: Integer kind names mapped to (size, alignment).
INT_KINDS: dict[str, tuple[int, int]] = {
    "char": (1, 1),
    "short": (2, 2),
    "int": (4, 4),
    "long": (4, 4),
    "longlong": (8, 4),
    "bool": (1, 1),
}


@dataclass(frozen=True)
class CInt(CType):
    """An integer type (``char`` through ``long long``, signed or not)."""

    kind: str = "int"
    signed: bool = True

    def __post_init__(self) -> None:
        if self.kind not in INT_KINDS:
            raise TypeError_(f"unknown integer kind {self.kind!r}")

    @property
    def size(self) -> int:
        return INT_KINDS[self.kind][0]

    @property
    def align(self) -> int:
        return INT_KINDS[self.kind][1]

    def is_integer(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (8 * self.size - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << (8 * self.size)) - 1
        return (1 << (8 * self.size - 1)) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo the type's range (C integer semantics)."""
        bits = 8 * self.size
        value &= (1 << bits) - 1
        if self.signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    def __str__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        name = {"longlong": "long long", "bool": "_Bool"}.get(self.kind, self.kind)
        return prefix + name


@dataclass(frozen=True)
class CFloat(CType):
    """A floating point type; rarely used in kernel code but supported."""

    double: bool = True

    @property
    def size(self) -> int:
        return 8 if self.double else 4

    @property
    def align(self) -> int:
        return 4

    def is_arithmetic(self) -> bool:
        return True

    def __str__(self) -> str:
        return "double" if self.double else "float"


@dataclass
class CPointer(CType):
    """A pointer type, carrying Deputy annotations on the pointer itself."""

    target: CType
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_ALIGN

    def is_pointer(self) -> bool:
        return True

    def is_function_pointer(self) -> bool:
        return isinstance(self.target.strip(), CFunc)

    def __str__(self) -> str:
        annos = f" {self.annotations}" if self.annotations else ""
        return f"{self.target} *{annos}"


@dataclass
class CArray(CType):
    """An array type with a compile-time constant length (or incomplete)."""

    element: CType
    length: Optional[int] = None

    @property
    def size(self) -> int:
        if self.length is None:
            raise TypeError_("sizeof applied to incomplete array type")
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    def __str__(self) -> str:
        length = "" if self.length is None else str(self.length)
        return f"{self.element}[{length}]"


@dataclass
class CField:
    """A named member of a struct or union."""

    name: str
    type: CType
    offset: int = 0
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def __str__(self) -> str:
        return f"{self.type} {self.name} @ {self.offset}"


@dataclass
class CStruct(CType):
    """A struct or union type.

    Structs may be *incomplete* (declared but not defined); completion fills
    in the field list and computes the layout.
    """

    tag: str
    is_union: bool = False
    fields: list[CField] = field(default_factory=list)
    complete: bool = False
    annotations: AnnotationSet = field(default_factory=AnnotationSet)
    _size: int = 0
    _align: int = 1

    def define(self, fields: list[CField]) -> None:
        """Complete the struct with ``fields`` and compute its layout."""
        if self.complete:
            raise TypeError_(f"redefinition of {self.kind_name} {self.tag}")
        self.fields = fields
        self._layout()
        self.complete = True

    @property
    def kind_name(self) -> str:
        return "union" if self.is_union else "struct"

    def _layout(self) -> None:
        offset = 0
        align = 1
        for member in self.fields:
            member_align = member.type.align
            member_size = member.type.size
            align = max(align, member_align)
            if self.is_union:
                member.offset = 0
                offset = max(offset, member_size)
            else:
                offset = _round_up(offset, member_align)
                member.offset = offset
                offset += member_size
        self._size = _round_up(max(offset, 1), align)
        self._align = align

    @property
    def size(self) -> int:
        if not self.complete:
            raise TypeError_(f"sizeof applied to incomplete {self.kind_name} {self.tag}")
        return self._size

    @property
    def align(self) -> int:
        if not self.complete:
            raise TypeError_(f"alignment of incomplete {self.kind_name} {self.tag}")
        return self._align

    def field_named(self, name: str) -> CField:
        for member in self.fields:
            if member.name == name:
                return member
        raise TypeError_(f"{self.kind_name} {self.tag} has no member {name!r}")

    def has_field(self, name: str) -> bool:
        return any(member.name == name for member in self.fields)

    def pointer_field_offsets(self) -> Iterator[int]:
        """Yield byte offsets of every pointer-typed cell inside the struct.

        CCount's type-aware memcpy/memset needs to know where the pointers
        live inside an object so that it can adjust reference counts.
        """
        for member in self.fields:
            yield from _pointer_offsets(member.type, member.offset)

    def __str__(self) -> str:
        return f"{self.kind_name} {self.tag}"


def _pointer_offsets(ctype: CType, base: int) -> Iterator[int]:
    stripped = ctype.strip()
    if isinstance(stripped, CPointer):
        yield base
    elif isinstance(stripped, CStruct) and stripped.complete:
        for member in stripped.fields:
            yield from _pointer_offsets(member.type, base + member.offset)
    elif isinstance(stripped, CArray) and stripped.length is not None:
        element = stripped.element
        for index in range(stripped.length):
            yield from _pointer_offsets(element, base + index * element.size)


@dataclass
class CEnum(CType):
    """An enum type.  Enumerators are plain ints at run time."""

    tag: str
    members: dict[str, int] = field(default_factory=dict)
    complete: bool = False

    @property
    def size(self) -> int:
        return 4

    @property
    def align(self) -> int:
        return 4

    def is_integer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"enum {self.tag}"


@dataclass
class CParam:
    """A formal parameter of a function type."""

    name: str
    type: CType
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class CFunc(CType):
    """A function type."""

    return_type: CType
    params: list[CParam] = field(default_factory=list)
    varargs: bool = False
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    @property
    def size(self) -> int:
        return 1

    @property
    def align(self) -> int:
        return 1

    def param_named(self, name: str) -> CParam | None:
        for param in self.params:
            if param.name == name:
                return param
        return None

    def signature(self) -> str:
        """A type-based signature string used by the points-to analysis."""
        parts = [type_signature(self.return_type)]
        parts.extend(type_signature(p.type) for p in self.params)
        if self.varargs:
            parts.append("...")
        return "(" + ",".join(parts) + ")"

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params = params + ", ..." if params else "..."
        return f"{self.return_type} (*)({params})"


@dataclass
class CNamed(CType):
    """A typedef name; ``strip`` resolves to the underlying type."""

    name: str
    underlying: CType

    @property
    def size(self) -> int:
        return self.underlying.size

    @property
    def align(self) -> int:
        return self.underlying.align

    def is_integer(self) -> bool:
        return self.underlying.is_integer()

    def is_pointer(self) -> bool:
        return self.underlying.is_pointer()

    def is_arithmetic(self) -> bool:
        return self.underlying.is_arithmetic()

    def strip(self) -> CType:
        return self.underlying.strip()

    def __str__(self) -> str:
        return self.name


def _round_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


def type_signature(ctype: CType) -> str:
    """A coarse, name-insensitive signature used for type-based points-to."""
    stripped = ctype.strip()
    if isinstance(stripped, CVoid):
        return "void"
    if isinstance(stripped, (CInt, CEnum)):
        return f"int{stripped.size}"
    if isinstance(stripped, CFloat):
        return "float"
    if isinstance(stripped, CPointer):
        inner = stripped.target.strip()
        if isinstance(inner, CFunc):
            return "fnptr" + inner.signature()
        return "ptr"
    if isinstance(stripped, CArray):
        return "ptr"
    if isinstance(stripped, CStruct):
        return f"{stripped.kind_name}:{stripped.tag}"
    if isinstance(stripped, CFunc):
        return "fn" + stripped.signature()
    return str(stripped)


def types_compatible(left: CType, right: CType) -> bool:
    """Structural compatibility used by Deputy's cast rules."""
    a, b = left.strip(), right.strip()
    if isinstance(a, CVoid) or isinstance(b, CVoid):
        return isinstance(a, CVoid) and isinstance(b, CVoid)
    if isinstance(a, (CInt, CEnum)) and isinstance(b, (CInt, CEnum)):
        return a.size == b.size
    if isinstance(a, CFloat) and isinstance(b, CFloat):
        return a.size == b.size
    if isinstance(a, CPointer) and isinstance(b, CPointer):
        at, bt = a.target.strip(), b.target.strip()
        if isinstance(at, CVoid) or isinstance(bt, CVoid):
            return True
        return types_compatible(a.target, b.target)
    if isinstance(a, CArray) and isinstance(b, CArray):
        return types_compatible(a.element, b.element)
    if isinstance(a, CStruct) and isinstance(b, CStruct):
        return a is b or (a.tag == b.tag and a.is_union == b.is_union)
    if isinstance(a, CFunc) and isinstance(b, CFunc):
        return a.signature() == b.signature()
    return False


# Commonly used type singletons.
VOID = CVoid()
CHAR = CInt("char", signed=True)
UCHAR = CInt("char", signed=False)
SHORT = CInt("short", signed=True)
USHORT = CInt("short", signed=False)
INT = CInt("int", signed=True)
UINT = CInt("int", signed=False)
LONG = CInt("long", signed=True)
ULONG = CInt("long", signed=False)
LONGLONG = CInt("longlong", signed=True)
ULONGLONG = CInt("longlong", signed=False)
BOOL = CInt("bool", signed=False)


def pointer_to(target: CType, annotations: AnnotationSet | None = None) -> CPointer:
    """Construct a pointer type to ``target``."""
    return CPointer(target, annotations or AnnotationSet())


def char_pointer() -> CPointer:
    return pointer_to(CHAR)


def void_pointer() -> CPointer:
    return pointer_to(VOID)


def is_char_type(ctype: CType) -> bool:
    stripped = ctype.strip()
    return isinstance(stripped, CInt) and stripped.kind == "char"


def common_arithmetic_type(left: CType, right: CType) -> CType:
    """The usual arithmetic conversions, simplified for MiniC."""
    a, b = left.strip(), right.strip()
    if isinstance(a, CFloat) or isinstance(b, CFloat):
        return CFloat(double=True)
    if not (isinstance(a, (CInt, CEnum)) and isinstance(b, (CInt, CEnum))):
        raise TypeError_(f"cannot combine {left} and {right} arithmetically")
    size = max(a.size, b.size, 4)
    signed_a = a.signed if isinstance(a, CInt) else True
    signed_b = b.signed if isinstance(b, CInt) else True
    signed = signed_a and signed_b
    kind = {4: "int", 8: "longlong"}[size]
    return CInt(kind, signed=signed)
