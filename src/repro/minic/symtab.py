"""Symbol tables and the shared type registry.

Kernel code is split across many files that share headers.  MiniC has no
real ``#include`` of type definitions, so the build system instead shares a
single :class:`TypeRegistry` across every file of a program: struct/union
tags, typedef names and enum constants defined by one file are visible to the
files parsed after it, exactly as if they had come from a common header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ctypes import CEnum, CStruct, CType
from .errors import SemanticError, SourceLocation


@dataclass
class TypeRegistry:
    """Program-wide registry of tags, typedefs and enum constants."""

    structs: dict[str, CStruct] = field(default_factory=dict)
    enums: dict[str, CEnum] = field(default_factory=dict)
    typedefs: dict[str, CType] = field(default_factory=dict)
    enum_constants: dict[str, int] = field(default_factory=dict)
    _anon_counter: int = 0

    def struct_tag(self, tag: str, is_union: bool = False) -> CStruct:
        """Look up or create the struct/union type for ``tag``."""
        key = ("union " if is_union else "struct ") + tag
        existing = self.structs.get(key)
        if existing is None:
            existing = CStruct(tag=tag, is_union=is_union)
            self.structs[key] = existing
        return existing

    def enum_tag(self, tag: str) -> CEnum:
        existing = self.enums.get(tag)
        if existing is None:
            existing = CEnum(tag=tag)
            self.enums[tag] = existing
        return existing

    def anonymous_tag(self, prefix: str) -> str:
        self._anon_counter += 1
        return f"__anon_{prefix}_{self._anon_counter}"

    def define_typedef(self, name: str, ctype: CType) -> None:
        self.typedefs[name] = ctype

    def is_typedef(self, name: str) -> bool:
        return name in self.typedefs

    def typedef(self, name: str) -> CType:
        return self.typedefs[name]

    def define_enum_constant(self, name: str, value: int) -> None:
        self.enum_constants[name] = value

    def is_enum_constant(self, name: str) -> bool:
        return name in self.enum_constants

    def enum_constant(self, name: str) -> int:
        return self.enum_constants[name]


@dataclass
class RecordingTypeRegistry(TypeRegistry):
    """A :class:`TypeRegistry` that records what a parse *observed*.

    The speculative parallel parse runs each TU against a private copy of
    the seed registry.  Every registry access the parser makes goes through
    the methods below, so overriding them captures the TU's full read set
    (typedef and enum-constant lookups, struct/enum tag references) and its
    write set (typedef/enum-constant definitions, anonymous-tag
    allocations).  The replay pass validates the reads against the
    canonical registry and applies the writes as the TU's effect delta.

    Reads of names this TU itself defined first are excluded — those
    observe the TU's own state, which is interleaving-independent.
    """

    typedef_reads: set[str] = field(default_factory=set)
    typedef_writes: set[str] = field(default_factory=set)
    enum_constant_reads: set[str] = field(default_factory=set)
    enum_constant_writes: set[str] = field(default_factory=set)
    struct_refs: set[str] = field(default_factory=set)
    enum_refs: set[str] = field(default_factory=set)
    anon_tags: int = 0

    def struct_tag(self, tag: str, is_union: bool = False) -> CStruct:
        self.struct_refs.add(("union " if is_union else "struct ") + tag)
        return super().struct_tag(tag, is_union)

    def enum_tag(self, tag: str) -> CEnum:
        self.enum_refs.add(tag)
        return super().enum_tag(tag)

    def anonymous_tag(self, prefix: str) -> str:
        self.anon_tags += 1
        return super().anonymous_tag(prefix)

    def define_typedef(self, name: str, ctype: CType) -> None:
        self.typedef_writes.add(name)
        super().define_typedef(name, ctype)

    def is_typedef(self, name: str) -> bool:
        if name not in self.typedef_writes:
            self.typedef_reads.add(name)
        return super().is_typedef(name)

    def typedef(self, name: str) -> CType:
        if name not in self.typedef_writes:
            self.typedef_reads.add(name)
        return super().typedef(name)

    def define_enum_constant(self, name: str, value: int) -> None:
        self.enum_constant_writes.add(name)
        super().define_enum_constant(name, value)

    def is_enum_constant(self, name: str) -> bool:
        if name not in self.enum_constant_writes:
            self.enum_constant_reads.add(name)
        return super().is_enum_constant(name)

    def enum_constant(self, name: str) -> int:
        if name not in self.enum_constant_writes:
            self.enum_constant_reads.add(name)
        return super().enum_constant(name)


@dataclass
class Symbol:
    """A named program entity bound in some scope."""

    name: str
    ctype: CType
    kind: str = "var"              # "var", "param", "func"
    storage: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


class Scope:
    """A lexical scope mapping names to symbols."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "") -> None:
        self.parent = parent
        self.name = name
        self.symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol, allow_redefine: bool = False) -> Symbol:
        if symbol.name in self.symbols and not allow_redefine:
            raise SemanticError(
                f"redefinition of {symbol.name!r} in scope {self.name or '<anon>'}",
                symbol.location,
            )
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)

    def child(self, name: str = "") -> "Scope":
        return Scope(self, name)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None
