"""Symbol tables and the shared type registry.

Kernel code is split across many files that share headers.  MiniC has no
real ``#include`` of type definitions, so the build system instead shares a
single :class:`TypeRegistry` across every file of a program: struct/union
tags, typedef names and enum constants defined by one file are visible to the
files parsed after it, exactly as if they had come from a common header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ctypes import CEnum, CStruct, CType
from .errors import SemanticError, SourceLocation


@dataclass
class TypeRegistry:
    """Program-wide registry of tags, typedefs and enum constants."""

    structs: dict[str, CStruct] = field(default_factory=dict)
    enums: dict[str, CEnum] = field(default_factory=dict)
    typedefs: dict[str, CType] = field(default_factory=dict)
    enum_constants: dict[str, int] = field(default_factory=dict)
    _anon_counter: int = 0

    def struct_tag(self, tag: str, is_union: bool = False) -> CStruct:
        """Look up or create the struct/union type for ``tag``."""
        key = ("union " if is_union else "struct ") + tag
        existing = self.structs.get(key)
        if existing is None:
            existing = CStruct(tag=tag, is_union=is_union)
            self.structs[key] = existing
        return existing

    def enum_tag(self, tag: str) -> CEnum:
        existing = self.enums.get(tag)
        if existing is None:
            existing = CEnum(tag=tag)
            self.enums[tag] = existing
        return existing

    def anonymous_tag(self, prefix: str) -> str:
        self._anon_counter += 1
        return f"__anon_{prefix}_{self._anon_counter}"

    def define_typedef(self, name: str, ctype: CType) -> None:
        self.typedefs[name] = ctype

    def is_typedef(self, name: str) -> bool:
        return name in self.typedefs

    def typedef(self, name: str) -> CType:
        return self.typedefs[name]

    def define_enum_constant(self, name: str, value: int) -> None:
        self.enum_constants[name] = value

    def is_enum_constant(self, name: str) -> bool:
        return name in self.enum_constants

    def enum_constant(self, name: str) -> int:
        return self.enum_constants[name]


@dataclass
class Symbol:
    """A named program entity bound in some scope."""

    name: str
    ctype: CType
    kind: str = "var"              # "var", "param", "func"
    storage: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


class Scope:
    """A lexical scope mapping names to symbols."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "") -> None:
        self.parent = parent
        self.name = name
        self.symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol, allow_redefine: bool = False) -> Symbol:
        if symbol.name in self.symbols and not allow_redefine:
            raise SemanticError(
                f"redefinition of {symbol.name!r} in scope {self.name or '<anon>'}",
                symbol.location,
            )
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)

    def child(self, name: str = "") -> "Scope":
        return Scope(self, name)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None
