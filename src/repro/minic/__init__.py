"""MiniC: the kernel-flavoured C frontend substrate.

This package provides everything the analysis tools need from a C frontend:
a preprocessor, lexer, parser, type representation with i386 layout rules,
symbol tables, AST visitors and a pretty printer whose output round-trips
through the parser.
"""

from . import ast_nodes as ast
from .ctypes import (
    CArray,
    CEnum,
    CField,
    CFloat,
    CFunc,
    CInt,
    CNamed,
    CParam,
    CPointer,
    CStruct,
    CType,
    CVoid,
    types_compatible,
)
from .errors import (
    LexError,
    MiniCError,
    ParseError,
    SemanticError,
    SourceLocation,
    TypeError_,
)
from .lexer import Lexer, tokenize
from .parser import Parser, evaluate_constant, parse_expression, parse_source
from .pretty import PrettyPrinter, render_expression, render_statement, render_unit
from .source import Preprocessor, SourceFile, preprocess, strip_comments
from .symtab import Scope, Symbol, TypeRegistry
from .visitor import Transformer, Visitor, collect, count_nodes, iter_child_nodes, walk

__all__ = [
    "ast",
    "CArray", "CEnum", "CField", "CFloat", "CFunc", "CInt", "CNamed",
    "CParam", "CPointer", "CStruct", "CType", "CVoid", "types_compatible",
    "LexError", "MiniCError", "ParseError", "SemanticError", "SourceLocation",
    "TypeError_",
    "Lexer", "tokenize",
    "Parser", "evaluate_constant", "parse_expression", "parse_source",
    "PrettyPrinter", "render_expression", "render_statement", "render_unit",
    "Preprocessor", "SourceFile", "preprocess", "strip_comments",
    "Scope", "Symbol", "TypeRegistry",
    "Transformer", "Visitor", "collect", "count_nodes", "iter_child_nodes", "walk",
]
