"""Abstract syntax tree node definitions for MiniC.

The AST is deliberately close to C's surface syntax: the instrumenters
(Deputy, CCount, BlockStop) are source-to-source transformations, so the tree
must round-trip through the pretty printer and re-parse cleanly ("erasure
semantics" — an annotated program stripped of annotations is still a valid
program with identical behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..annotations.attrs import AnnotationSet
from .ctypes import CType
from .errors import SourceLocation


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base class for expressions.

    ``ctype`` is filled in by the type checker (:mod:`repro.deputy.typesystem`)
    and is ``None`` for freshly parsed trees.
    """

    ctype: Optional[CType] = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Prefix unary operators: ``- ~ ! & * ++ --``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Postfix(Expr):
    """Postfix ``++`` and ``--``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    """Binary operators (arithmetic, comparison, logical, bitwise)."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    """Assignment, plain (``=``) or compound (``+=`` etc.)."""

    op: str = "="
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise`` operator."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A function call (direct or through a function pointer)."""

    func: Expr = None  # type: ignore[assignment]
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscripting ``base[index]``."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    """Member access ``obj.field`` or ``ptr->field``."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    """A cast ``(type) expr``; ``trusted`` marks Deputy trusted casts."""

    to_type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]
    trusted: bool = False


@dataclass
class SizeofType(Expr):
    of_type: CType = None  # type: ignore[assignment]


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Comma(Expr):
    exprs: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    """A compound statement; ``trusted`` marks a Deputy TRUSTED block."""

    stmts: list[Stmt] = field(default_factory=list)
    trusted: bool = False


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Union["Declaration", Expr]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class SwitchCase(Node):
    """One ``case value:`` or ``default:`` arm inside a switch."""

    value: Optional[Expr] = None  # None means default
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Label(Stmt):
    name: str = ""
    stmt: Optional[Stmt] = None


@dataclass
class Asm(Stmt):
    """Inline assembly; treated as opaque/trusted by all analyses."""

    text: str = ""


@dataclass
class DeclStmt(Stmt):
    """A local declaration appearing in statement position."""

    decl: "Declaration" = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Declarations and top-level constructs
# ---------------------------------------------------------------------------

@dataclass
class Initializer(Node):
    """Either a scalar initializer expression or a brace-enclosed list."""

    expr: Optional[Expr] = None
    elements: Optional[list["Initializer"]] = None
    field_names: Optional[list[Optional[str]]] = None  # designators, if any

    @property
    def is_list(self) -> bool:
        return self.elements is not None


@dataclass
class Declaration(Node):
    """A single declared name (variable, parameter or prototype)."""

    name: str = ""
    type: CType = None  # type: ignore[assignment]
    storage: str = ""               # "", "static", "extern", "typedef"
    init: Optional[Initializer] = None
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    @property
    def is_typedef(self) -> bool:
        return self.storage == "typedef"


@dataclass
class FuncDef(Node):
    """A function definition."""

    name: str = ""
    type: CType = None  # type: ignore[assignment]  # a CFunc
    body: Block = None  # type: ignore[assignment]
    storage: str = ""
    annotations: AnnotationSet = field(default_factory=AnnotationSet)


@dataclass
class StructDecl(Node):
    """A struct/union/enum definition appearing at top level."""

    ctype: CType = None  # type: ignore[assignment]


@dataclass
class TranslationUnit(Node):
    """One parsed source file."""

    filename: str = "<unknown>"
    decls: list[Node] = field(default_factory=list)

    def functions(self) -> list[FuncDef]:
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def globals(self) -> list[Declaration]:
        return [d for d in self.decls
                if isinstance(d, Declaration) and not d.is_typedef
                and not d.type.strip().is_function()]

    def function_named(self, name: str) -> Optional[FuncDef]:
        for func in self.functions():
            if func.name == name:
                return func
        return None


# ---------------------------------------------------------------------------
# Helpers used throughout the toolchain
# ---------------------------------------------------------------------------

def is_lvalue(expr: Expr) -> bool:
    """Whether ``expr`` designates a memory location."""
    if isinstance(expr, (Ident, Index, Member)):
        return True
    if isinstance(expr, Unary) and expr.op == "*":
        return True
    return False


def make_call(name: str, args: list[Expr],
              location: SourceLocation | None = None) -> Call:
    """Construct a call to a named function (used by the instrumenters)."""
    loc = location or SourceLocation()
    return Call(func=Ident(name=name, location=loc), args=args, location=loc)


def int_lit(value: int, location: SourceLocation | None = None) -> IntLit:
    return IntLit(value=value, location=location or SourceLocation())
