"""Pretty printer: render MiniC ASTs back to source text.

The instrumenters are source-to-source tools, so the printed output of any
(possibly transformed) AST must re-parse to an equivalent tree.  The printer
can optionally *erase* annotations, which demonstrates the paper's erasure
semantics: an annotated file printed with ``erase_annotations=True`` is plain
MiniC that a stock build would accept.
"""

from __future__ import annotations

from ..annotations.attrs import AnnotationSet
from . import ast_nodes as ast
from .ctypes import (
    CArray,
    CEnum,
    CFloat,
    CFunc,
    CInt,
    CNamed,
    CPointer,
    CStruct,
    CType,
    CVoid,
)

_INDENT = "    "


class PrettyPrinter:
    """Render AST nodes as MiniC source text."""

    def __init__(self, erase_annotations: bool = False) -> None:
        self.erase_annotations = erase_annotations

    # -- public entry points ----------------------------------------------

    def print_unit(self, unit: ast.TranslationUnit) -> str:
        parts = [self.print_top_level(decl) for decl in unit.decls]
        return "\n".join(parts) + "\n"

    def print_top_level(self, node: ast.Node) -> str:
        if isinstance(node, ast.FuncDef):
            return self.print_funcdef(node)
        if isinstance(node, ast.Declaration):
            return self.print_declaration(node) + ";"
        if isinstance(node, ast.StructDecl):
            return self.print_type_definition(node.ctype) + ";"
        raise TypeError(f"cannot print top-level node {type(node).__name__}")

    def print_funcdef(self, func: ast.FuncDef) -> str:
        storage = f"{func.storage} " if func.storage else ""
        annos = self._annotations(func.annotations, leading_space=True)
        header = storage + self._declare(func.type, func.name, skip_func_annos=True)
        return f"{header}{annos}\n{self.print_stmt(func.body, 0)}"

    def print_declaration(self, decl: ast.Declaration) -> str:
        storage = f"{decl.storage} " if decl.storage else ""
        # A prototype's annotations live both on the declaration and on its
        # function type; print the deduplicated union once, or the rendering
        # would not round-trip (each re-parse would double the annotations).
        stripped = decl.type.strip()
        if isinstance(stripped, CFunc):
            merged = AnnotationSet()
            seen: set[str] = set()
            for source in (decl.annotations, stripped.annotations):
                for annotation in source:
                    # Dedupe by rendered form, not kind: two acquires(...)
                    # facts with different arguments must both survive.
                    rendered = str(annotation)
                    if rendered not in seen:
                        seen.add(rendered)
                        merged.add(annotation)
            annos = self._annotations(merged, leading_space=True)
            text = (storage
                    + self._declare(decl.type, decl.name, skip_func_annos=True)
                    + annos)
        else:
            annos = self._annotations(decl.annotations, leading_space=True)
            text = storage + self._declare(decl.type, decl.name) + annos
        if decl.init is not None:
            text += " = " + self.print_initializer(decl.init)
        return text

    def print_initializer(self, init: ast.Initializer) -> str:
        if init.is_list:
            parts = []
            for name, element in zip(init.field_names or [], init.elements or []):
                rendered = self.print_initializer(element)
                if name:
                    rendered = f".{name} = {rendered}"
                parts.append(rendered)
            return "{ " + ", ".join(parts) + " }"
        return self.print_expr(init.expr)

    def print_type_definition(self, ctype: CType) -> str:
        stripped = ctype.strip()
        if isinstance(stripped, CStruct):
            lines = [f"{stripped.kind_name} {stripped.tag} {{"]
            for member in stripped.fields:
                annos = self._annotations(member.annotations, leading_space=True)
                lines.append(_INDENT + self._declare(member.type, member.name)
                             + annos + ";")
            lines.append("}")
            return "\n".join(lines)
        if isinstance(stripped, CEnum):
            members = ",\n".join(f"{_INDENT}{name} = {value}"
                                 for name, value in stripped.members.items())
            return f"enum {stripped.tag} {{\n{members}\n}}"
        return self.type_name(ctype)

    # -- statements --------------------------------------------------------

    def print_stmt(self, stmt: ast.Stmt, depth: int) -> str:
        pad = _INDENT * depth
        if isinstance(stmt, ast.Block):
            prefix = "" if self.erase_annotations or not stmt.trusted else "trusted "
            inner = "\n".join(self.print_stmt(s, depth + 1) for s in stmt.stmts)
            if inner:
                return f"{pad}{prefix}{{\n{inner}\n{pad}}}"
            return f"{pad}{prefix}{{\n{pad}}}"
        if isinstance(stmt, ast.ExprStmt):
            return f"{pad}{self.print_expr(stmt.expr)};"
        if isinstance(stmt, ast.EmptyStmt):
            return f"{pad};"
        if isinstance(stmt, ast.DeclStmt):
            return f"{pad}{self.print_declaration(stmt.decl)};"
        if isinstance(stmt, ast.If):
            text = f"{pad}if ({self.print_expr(stmt.cond)})\n"
            text += self.print_stmt(stmt.then, depth + 1)
            if stmt.otherwise is not None:
                text += f"\n{pad}else\n" + self.print_stmt(stmt.otherwise, depth + 1)
            return text
        if isinstance(stmt, ast.While):
            return (f"{pad}while ({self.print_expr(stmt.cond)})\n"
                    + self.print_stmt(stmt.body, depth + 1))
        if isinstance(stmt, ast.DoWhile):
            return (f"{pad}do\n" + self.print_stmt(stmt.body, depth + 1)
                    + f"\n{pad}while ({self.print_expr(stmt.cond)});")
        if isinstance(stmt, ast.For):
            init = ""
            if isinstance(stmt.init, ast.Declaration):
                init = self.print_declaration(stmt.init)
            elif isinstance(stmt.init, ast.Expr):
                init = self.print_expr(stmt.init)
            cond = self.print_expr(stmt.cond) if stmt.cond else ""
            step = self.print_expr(stmt.step) if stmt.step else ""
            return (f"{pad}for ({init}; {cond}; {step})\n"
                    + self.print_stmt(stmt.body, depth + 1))
        if isinstance(stmt, ast.Switch):
            lines = [f"{pad}switch ({self.print_expr(stmt.cond)}) {{"]
            for case in stmt.cases:
                if case.value is None:
                    lines.append(f"{pad}default:")
                else:
                    lines.append(f"{pad}case {self.print_expr(case.value)}:")
                lines.extend(self.print_stmt(s, depth + 1) for s in case.stmts)
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(stmt, ast.Break):
            return f"{pad}break;"
        if isinstance(stmt, ast.Continue):
            return f"{pad}continue;"
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return f"{pad}return;"
            return f"{pad}return {self.print_expr(stmt.value)};"
        if isinstance(stmt, ast.Goto):
            return f"{pad}goto {stmt.label};"
        if isinstance(stmt, ast.Label):
            inner = self.print_stmt(stmt.stmt, depth) if stmt.stmt else f"{pad};"
            return f"{pad}{stmt.name}:\n{inner}"
        if isinstance(stmt, ast.Asm):
            return f'{pad}asm("{stmt.text}");'
        raise TypeError(f"cannot print statement {type(stmt).__name__}")

    # -- expressions ---------------------------------------------------------

    def print_expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.CharLit):
            ch = chr(expr.value)
            escaped = {"\n": "\\n", "\t": "\\t", "\0": "\\0", "'": "\\'",
                       "\\": "\\\\"}.get(ch, ch)
            return f"'{escaped}'"
        if isinstance(expr, ast.StrLit):
            escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0"))
            return f'"{escaped}"'
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.Unary):
            return f"{expr.op}({self.print_expr(expr.operand)})"
        if isinstance(expr, ast.Postfix):
            return f"({self.print_expr(expr.operand)}){expr.op}"
        if isinstance(expr, ast.Binary):
            return f"({self.print_expr(expr.left)} {expr.op} {self.print_expr(expr.right)})"
        if isinstance(expr, ast.Assign):
            return f"{self.print_expr(expr.target)} {expr.op} {self.print_expr(expr.value)}"
        if isinstance(expr, ast.Conditional):
            return (f"({self.print_expr(expr.cond)} ? {self.print_expr(expr.then)}"
                    f" : {self.print_expr(expr.otherwise)})")
        if isinstance(expr, ast.Call):
            args = ", ".join(self.print_expr(a) for a in expr.args)
            return f"{self.print_expr(expr.func)}({args})"
        if isinstance(expr, ast.Index):
            return f"{self.print_expr(expr.base)}[{self.print_expr(expr.index)}]"
        if isinstance(expr, ast.Member):
            sep = "->" if expr.arrow else "."
            return f"{self.print_expr(expr.base)}{sep}{expr.name}"
        if isinstance(expr, ast.Cast):
            trusted = "" if self.erase_annotations or not expr.trusted else " trusted"
            return f"(({self.type_name(expr.to_type)}{trusted})({self.print_expr(expr.operand)}))"
        if isinstance(expr, ast.SizeofType):
            return f"sizeof({self.type_name(expr.of_type)})"
        if isinstance(expr, ast.SizeofExpr):
            return f"sizeof({self.print_expr(expr.operand)})"
        if isinstance(expr, ast.Comma):
            return "(" + ", ".join(self.print_expr(e) for e in expr.exprs) + ")"
        raise TypeError(f"cannot print expression {type(expr).__name__}")

    # -- types ----------------------------------------------------------------

    def type_name(self, ctype: CType) -> str:
        return self._declare(ctype, "")

    def _declare(self, ctype: CType, name: str, skip_func_annos: bool = False) -> str:
        """Render a declaration of ``name`` with type ``ctype`` (C inside-out rule)."""
        if isinstance(ctype, CNamed):
            return f"{ctype.name} {name}".rstrip()
        if isinstance(ctype, (CVoid, CInt, CFloat, CEnum)):
            return f"{ctype} {name}".rstrip()
        if isinstance(ctype, CStruct):
            return f"{ctype.kind_name} {ctype.tag} {name}".rstrip()
        if isinstance(ctype, CPointer):
            annos = self._annotations(ctype.annotations, trailing_space=True)
            inner = f"*{annos}{name}"
            target = ctype.target
            if isinstance(target, (CFunc, CArray)):
                return self._declare(target, f"({inner})")
            return self._declare(target, inner)
        if isinstance(ctype, CArray):
            length = "" if ctype.length is None else str(ctype.length)
            return self._declare(ctype.element, f"{name}[{length}]")
        if isinstance(ctype, CFunc):
            params = ", ".join(
                self._declare(p.type, p.name)
                + self._annotations(p.annotations, leading_space=True)
                for p in ctype.params)
            if ctype.varargs:
                params = f"{params}, ..." if params else "..."
            if not params:
                params = "void"
            annos = ""
            if not skip_func_annos:
                annos = self._annotations(ctype.annotations, leading_space=True)
            return self._declare(ctype.return_type, f"{name}({params})") + annos
        raise TypeError(f"cannot render type {type(ctype).__name__}")

    def _annotations(self, annotations: AnnotationSet,
                     leading_space: bool = False,
                     trailing_space: bool = False) -> str:
        if self.erase_annotations or not annotations:
            return ""
        rendered = " ".join(str(a) for a in annotations)
        if leading_space:
            rendered = " " + rendered
        if trailing_space:
            rendered = rendered + " "
        return rendered


def render_unit(unit: ast.TranslationUnit, erase_annotations: bool = False) -> str:
    """Render a whole translation unit back to MiniC source."""
    return PrettyPrinter(erase_annotations).print_unit(unit)


def render_expression(expr: ast.Expr) -> str:
    """Render a single expression (used for diagnostics and annotations)."""
    return PrettyPrinter().print_expr(expr)


def render_statement(stmt: ast.Stmt) -> str:
    """Render a single statement at indentation depth zero."""
    return PrettyPrinter().print_stmt(stmt, 0)
