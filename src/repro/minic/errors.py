"""Error types for the MiniC frontend.

Every frontend error carries a :class:`SourceLocation` so that tools built on
top of the frontend (Deputy, CCount, BlockStop) can report file/line positions
exactly like a C compiler would.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MiniC source file."""

    filename: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MiniCError(Exception):
    """Base class for all MiniC frontend errors."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class LexError(MiniCError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(MiniCError):
    """Raised when the parser encounters a syntax error."""


class TypeError_(MiniCError):
    """Raised when type construction or layout fails.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TypeError`.
    """


class SemanticError(MiniCError):
    """Raised for semantic errors found while building symbol tables."""
