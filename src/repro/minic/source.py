"""Source file handling for the MiniC frontend.

A :class:`SourceFile` wraps raw MiniC text together with a filename and
provides line-oriented helpers used by the conversion reports (the paper
counts annotated and trusted *lines*, so line bookkeeping matters).

A tiny preprocessor is included.  Kernel C leans heavily on the C
preprocessor; MiniC only needs the small subset the corpus uses:

* ``// ...`` and ``/* ... */`` comments are stripped,
* ``#define NAME value`` object-like macros (no function-like macros),
* ``#include`` is ignored (the corpus is linked by the build system instead),
* ``#ifdef/#ifndef/#else/#endif`` conditional blocks keyed on defined names.

The preprocessor preserves line numbers: removed text is replaced by blank
lines or whitespace so diagnostics still point at the original source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .errors import LexError, SourceLocation

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)(?:\s+(.*))?$")
_UNDEF_RE = re.compile(r"^\s*#\s*undef\s+(\w+)\s*$")
_IFDEF_RE = re.compile(r"^\s*#\s*ifdef\s+(\w+)\s*$")
_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)\s*$")
_ELSE_RE = re.compile(r"^\s*#\s*else\s*$")
_ENDIF_RE = re.compile(r"^\s*#\s*endif\s*$")
_INCLUDE_RE = re.compile(r"^\s*#\s*include\b.*$")
_WORD_RE = re.compile(r"\b\w+\b")


@dataclass
class SourceFile:
    """A named MiniC source file."""

    filename: str
    text: str
    lines: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.text.splitlines()

    @property
    def line_count(self) -> int:
        return len(self.lines)

    def line(self, lineno: int) -> str:
        """Return 1-based line ``lineno`` (empty string if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def location(self, line: int, column: int = 1) -> SourceLocation:
        return SourceLocation(self.filename, line, column)


def strip_comments(text: str, filename: str = "<unknown>") -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure."""
    out: list[str] = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        ch = text[i]
        if ch == '"' or ch == "'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                if text[i] == "\n":
                    line += 1
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start_line = line
            i += 2
            closed = False
            while i < n:
                if text[i] == "*" and i + 1 < n and text[i + 1] == "/":
                    i += 2
                    closed = True
                    break
                if text[i] == "\n":
                    out.append("\n")
                    line += 1
                i += 1
            if not closed:
                raise LexError(
                    "unterminated block comment",
                    SourceLocation(filename, start_line, 1),
                )
            continue
        if ch == "\n":
            line += 1
        out.append(ch)
        i += 1
    return "".join(out)


class Preprocessor:
    """A minimal, line-number-preserving preprocessor for MiniC.

    Only object-like macros and ``#ifdef`` conditionals are supported; that is
    all the mini-kernel corpus needs, and keeping it small keeps the frontend
    auditable (this is, after all, a paper about soundness).
    """

    def __init__(self, defines: dict[str, str] | None = None) -> None:
        self.defines: dict[str, str] = dict(defines or {})

    def define(self, name: str, value: str = "1") -> None:
        self.defines[name] = value

    def undefine(self, name: str) -> None:
        self.defines.pop(name, None)

    def scan_directives(self, text: str, filename: str = "<unknown>") -> None:
        """Replay only the preprocessor directives of ``text``.

        Mutates ``self.defines`` exactly as :meth:`process` would — same
        loop, same conditional stack — but skips macro expansion of
        ordinary lines.  The parallel parse front-end uses this to predict
        each TU's pre-parse macro table without paying for expansion:
        ``#ifdef`` only consults defined-ness and ``#define``/``#undef``
        never expand their payload, so the directive-only replay is exact.
        """
        self.process(text, filename, expand=False)

    def process(self, text: str, filename: str = "<unknown>", *,
                expand: bool = True) -> str:
        """Expand macros and resolve conditionals in ``text``."""
        text = strip_comments(text, filename)
        out_lines: list[str] = []
        # Stack of booleans: is the current conditional region active?
        active_stack: list[bool] = []
        taken_stack: list[bool] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            loc = SourceLocation(filename, lineno, 1)
            active = all(active_stack) if active_stack else True
            m = _IFDEF_RE.match(raw)
            if m:
                cond = m.group(1) in self.defines
                active_stack.append(cond)
                taken_stack.append(cond)
                out_lines.append("")
                continue
            m = _IFNDEF_RE.match(raw)
            if m:
                cond = m.group(1) not in self.defines
                active_stack.append(cond)
                taken_stack.append(cond)
                out_lines.append("")
                continue
            if _ELSE_RE.match(raw):
                if not active_stack:
                    raise LexError("#else without #ifdef", loc)
                active_stack[-1] = not taken_stack[-1]
                out_lines.append("")
                continue
            if _ENDIF_RE.match(raw):
                if not active_stack:
                    raise LexError("#endif without #ifdef", loc)
                active_stack.pop()
                taken_stack.pop()
                out_lines.append("")
                continue
            if not active:
                out_lines.append("")
                continue
            m = _DEFINE_RE.match(raw)
            if m:
                name, value = m.group(1), (m.group(2) or "1").strip()
                self.defines[name] = value
                out_lines.append("")
                continue
            m = _UNDEF_RE.match(raw)
            if m:
                self.defines.pop(m.group(1), None)
                out_lines.append("")
                continue
            if _INCLUDE_RE.match(raw):
                out_lines.append("")
                continue
            if raw.lstrip().startswith("#"):
                raise LexError(f"unsupported preprocessor directive: {raw.strip()}", loc)
            out_lines.append(self._expand(raw) if expand else "")
        if active_stack:
            raise LexError("unterminated #ifdef", SourceLocation(filename, len(out_lines), 1))
        return "\n".join(out_lines) + "\n"

    def _expand(self, line: str) -> str:
        """Expand object-like macros on one line (single pass, then repeat)."""
        if not self.defines:
            return line
        for _ in range(8):
            def repl(m: re.Match[str]) -> str:
                word = m.group(0)
                return self.defines.get(word, word)

            new = _WORD_RE.sub(repl, line)
            if new == line:
                return new
            line = new
        return line


class _RecordingDefines(dict):
    """Macro table that records which names a TU's expansion *observed*.

    A name counts as read when ``#ifdef`` tests its defined-ness or when
    :meth:`Preprocessor._expand` consults it during word substitution —
    every identifier in the TU is such a read, because expansion depends on
    each word's absence from the table just as much as on its presence.
    Names the TU itself (re)defined first are excluded: those reads observe
    the TU's own state, which is the same under any interleaving.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    def __contains__(self, name: object) -> bool:
        if name not in self.writes:
            self.reads.add(name)  # type: ignore[arg-type]
        return super().__contains__(name)

    def get(self, name, default=None):
        if name not in self.writes:
            self.reads.add(name)
        return super().get(name, default)

    def __setitem__(self, name, value) -> None:
        self.writes.add(name)
        super().__setitem__(name, value)

    def pop(self, name, *args):
        self.writes.add(name)
        return super().pop(name, *args)

    def __bool__(self) -> bool:
        # _expand early-outs on an empty table; that early-out would hide
        # the fact that expansion read (the absence of) every word on the
        # line.  Forcing truthiness keeps the read set complete.
        return True


class RecordingPreprocessor(Preprocessor):
    """A :class:`Preprocessor` whose macro reads/writes are captured.

    Used by the speculative parallel parse workers: the recorded read set
    is validated against the canonical macro table during the replay pass,
    and the recorded writes are the TU's macro effect delta.
    """

    def __init__(self, defines: dict[str, str] | None = None) -> None:
        super().__init__(defines)
        self.defines = _RecordingDefines(self.defines)

    @property
    def macro_reads(self) -> set[str]:
        return self.defines.reads

    @property
    def macro_writes(self) -> set[str]:
        return self.defines.writes


def preprocess(text: str, filename: str = "<unknown>",
               defines: dict[str, str] | None = None) -> str:
    """Convenience wrapper: preprocess ``text`` with optional ``defines``."""
    return Preprocessor(defines).process(text, filename)
