"""Recursive-descent parser for MiniC.

The grammar is a kernel-flavoured subset of C89/C99 plus Deputy-style
annotations.  Annotations are *contextual keywords*: they are ordinary
identifiers to the lexer and are only given meaning in declarator positions,
which is what lets annotated code be compiled by a stock toolchain once the
annotations are erased (the paper's "erasure semantics").

Supported constructs (everything the mini-kernel corpus needs):

* declarations with storage classes, qualifiers, typedefs;
* struct/union/enum definitions, anonymous and tagged, nested;
* pointer, array and function declarators, including function pointers
  (``int (*op)(struct file *, char *count(n), int n)``);
* initializers: scalar, brace lists, ``.field =`` designators;
* the full statement set: ``if/else while do-for switch goto label`` and
  ``asm("...")``;
* the full expression grammar with C precedence, casts, ``sizeof``,
  compound assignment and the comma operator;
* annotations after ``*`` (``int * count(n) buf``), after a declarator
  (``void schedule(void) blocking;``) and ``trusted { ... }`` blocks.
"""

from __future__ import annotations

from typing import Optional

from ..annotations.attrs import (
    KEYWORD_TO_KIND,
    NULLARY_KINDS,
    Annotation,
    AnnotationKind,
    AnnotationSet,
)
from . import ast_nodes as ast
from .ctypes import (
    CArray,
    CEnum,
    CFloat,
    CFunc,
    CInt,
    CNamed,
    CParam,
    CPointer,
    CStruct,
    CType,
    CVoid,
    CField,
)
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .source import preprocess
from .symtab import TypeRegistry
from .tokens import Token, TokenKind

_TYPE_SPECIFIER_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "_Bool", "struct", "union", "enum",
})
_STORAGE_KEYWORDS = frozenset({"static", "extern", "typedef", "register", "auto"})
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile", "inline"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class Parser:
    """Parse one MiniC source file into a :class:`TranslationUnit`."""

    def __init__(self, tokens: list[Token], filename: str = "<unknown>",
                 registry: TypeRegistry | None = None) -> None:
        self.tokens = tokens
        self.filename = filename
        self.pos = 0
        self.registry = registry if registry is not None else TypeRegistry()

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def _check_punct(self, *texts: str) -> bool:
        return self._peek().is_punct(*texts)

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_punct(self, *texts: str) -> Optional[Token]:
        if self._check_punct(*texts):
            return self._advance()
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._check_keyword(*names):
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        if not self._check_punct(text):
            raise ParseError(f"expected {text!r}, found {self._peek().text!r}",
                             self._peek().location)
        return self._advance()

    def _expect_keyword(self, name: str) -> Token:
        if not self._check_keyword(name):
            raise ParseError(f"expected {name!r}, found {self._peek().text!r}",
                             self._peek().location)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.location)
        return self._advance()

    def _loc(self) -> SourceLocation:
        return self._peek().location

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    # -- entry point -------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(filename=self.filename, location=self._loc())
        while not self._at_eof():
            if self._accept_punct(";"):
                continue
            unit.decls.extend(self._parse_external_declaration())
        return unit

    # -- declarations ------------------------------------------------------

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            return token.text in (_TYPE_SPECIFIER_KEYWORDS | _STORAGE_KEYWORDS
                                  | _QUALIFIER_KEYWORDS)
        if token.kind is TokenKind.IDENT:
            return self.registry.is_typedef(token.text)
        return False

    def _parse_external_declaration(self) -> list[ast.Node]:
        loc = self._loc()
        storage, base_type = self._parse_declaration_specifiers()
        # A bare "struct foo { ... };" definition.
        if self._accept_punct(";"):
            return [ast.StructDecl(ctype=base_type, location=loc)]

        results: list[ast.Node] = []
        first = True
        while True:
            name, ctype, annotations = self._parse_declarator(base_type)
            if first and isinstance(ctype, CFunc) and self._check_punct("{"):
                ctype.annotations.extend(annotations)
                body = self._parse_block()
                func = ast.FuncDef(name=name, type=ctype, body=body,
                                   storage=storage, annotations=ctype.annotations,
                                   location=loc)
                return [func]
            first = False
            init = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decl = ast.Declaration(name=name, type=ctype, storage=storage,
                                   init=init, annotations=annotations, location=loc)
            if storage == "typedef":
                self.registry.define_typedef(name, CNamed(name=name, underlying=ctype))
            if isinstance(ctype, CFunc):
                ctype.annotations.extend(annotations)
            results.append(decl)
            if self._accept_punct(","):
                continue
            self._expect_punct(";")
            break
        return results

    def _parse_declaration_specifiers(self) -> tuple[str, CType]:
        """Parse storage class, qualifiers and the type specifier."""
        storage = ""
        saw_unsigned = False
        saw_signed = False
        int_words: list[str] = []
        base_type: Optional[CType] = None
        loc = self._loc()

        while True:
            token = self._peek()
            if token.is_keyword(*_STORAGE_KEYWORDS):
                self._advance()
                if token.text in ("typedef", "static", "extern"):
                    storage = token.text
                continue
            if token.is_keyword(*_QUALIFIER_KEYWORDS):
                self._advance()
                continue
            if token.is_keyword("unsigned"):
                self._advance()
                saw_unsigned = True
                continue
            if token.is_keyword("signed"):
                self._advance()
                saw_signed = True
                continue
            if token.is_keyword("void"):
                self._advance()
                base_type = CVoid()
                continue
            if token.is_keyword("float"):
                self._advance()
                base_type = CFloat(double=False)
                continue
            if token.is_keyword("double"):
                self._advance()
                base_type = CFloat(double=True)
                continue
            if token.is_keyword("_Bool"):
                self._advance()
                base_type = CInt("bool", signed=False)
                continue
            if token.is_keyword("char", "short", "int", "long"):
                self._advance()
                int_words.append(token.text)
                continue
            if token.is_keyword("struct", "union"):
                base_type = self._parse_struct_or_union()
                continue
            if token.is_keyword("enum"):
                base_type = self._parse_enum()
                continue
            if (token.kind is TokenKind.IDENT and self.registry.is_typedef(token.text)
                    and base_type is None and not int_words
                    and not saw_signed and not saw_unsigned):
                self._advance()
                base_type = self.registry.typedef(token.text)
                continue
            break

        if base_type is None:
            if int_words or saw_signed or saw_unsigned:
                base_type = _integer_type(int_words, saw_unsigned)
            else:
                raise ParseError(f"expected type specifier, found {self._peek().text!r}", loc)
        elif int_words:
            raise ParseError("conflicting type specifiers", loc)
        return storage, base_type

    def _parse_struct_or_union(self) -> CStruct:
        keyword = self._advance()
        is_union = keyword.text == "union"
        if self._peek().kind is TokenKind.IDENT:
            tag = self._advance().text
        else:
            tag = self.registry.anonymous_tag("union" if is_union else "struct")
        struct = self.registry.struct_tag(tag, is_union)
        if self._accept_punct("{"):
            fields: list[CField] = []
            while not self._check_punct("}"):
                fields.extend(self._parse_struct_fields())
            self._expect_punct("}")
            struct.define(fields)
        return struct

    def _parse_struct_fields(self) -> list[CField]:
        _storage, base_type = self._parse_declaration_specifiers()
        fields: list[CField] = []
        if self._accept_punct(";"):
            # Anonymous nested struct/union: inline its members.
            inner = base_type.strip()
            if isinstance(inner, CStruct) and inner.complete:
                return [CField(name=f.name, type=f.type, annotations=f.annotations)
                        for f in inner.fields]
            return fields
        while True:
            name, ctype, annotations = self._parse_declarator(base_type)
            fields.append(CField(name=name, type=ctype, annotations=annotations))
            if self._accept_punct(","):
                continue
            self._expect_punct(";")
            break
        return fields

    def _parse_enum(self) -> CEnum:
        self._expect_keyword("enum")
        if self._peek().kind is TokenKind.IDENT:
            tag = self._advance().text
        else:
            tag = self.registry.anonymous_tag("enum")
        enum = self.registry.enum_tag(tag)
        if self._accept_punct("{"):
            value = 0
            while not self._check_punct("}"):
                name = self._expect_ident().text
                if self._accept_punct("="):
                    value = self._parse_constant_expression()
                enum.members[name] = value
                self.registry.define_enum_constant(name, value)
                value += 1
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            enum.complete = True
        return enum

    # -- declarators ---------------------------------------------------------

    def _parse_declarator(self, base_type: CType,
                          abstract: bool = False) -> tuple[str, CType, AnnotationSet]:
        """Parse a (possibly abstract) declarator applied to ``base_type``.

        Returns ``(name, full_type, trailing_annotations)``; the name is empty
        for abstract declarators.
        """
        ctype = self._parse_pointer_suffix(base_type)
        name, ctype = self._parse_direct_declarator(ctype, abstract)
        trailing = self._parse_annotations(trailing=True)
        return name, ctype, trailing

    def _parse_pointer_suffix(self, base_type: CType) -> CType:
        ctype = base_type
        while self._check_punct("*"):
            self._advance()
            annotations = AnnotationSet()
            while self._accept_keyword("const", "volatile"):
                pass
            annotations.extend(self._parse_annotations())
            ctype = CPointer(target=ctype, annotations=annotations)
        return ctype

    def _parse_direct_declarator(self, ctype: CType,
                                 abstract: bool) -> tuple[str, CType]:
        name = ""
        inner_tokens_start = None
        if self._check_punct("("):
            # Could be a parenthesised declarator "(*name)" or, for abstract
            # declarators, a parameter list.  Disambiguate by the next token.
            nxt = self._peek(1)
            is_paren_declarator = nxt.is_punct("*") or (
                nxt.kind is TokenKind.IDENT and not self.registry.is_typedef(nxt.text)
                and nxt.text not in KEYWORD_TO_KIND)
            if is_paren_declarator:
                self._advance()
                inner_tokens_start = self.pos
                depth = 1
                while depth:
                    token = self._advance()
                    if token.is_punct("("):
                        depth += 1
                    elif token.is_punct(")"):
                        depth -= 1
                    elif token.kind is TokenKind.EOF:
                        raise ParseError("unterminated declarator", token.location)
        elif self._peek().kind is TokenKind.IDENT and not abstract:
            name = self._advance().text

        # Array and function suffixes apply to the declarator seen so far.
        while True:
            if self._check_punct("["):
                self._advance()
                length: Optional[int] = None
                if not self._check_punct("]"):
                    length = self._parse_constant_expression()
                self._expect_punct("]")
                ctype = _append_suffix(ctype, ("array", length))
            elif self._check_punct("("):
                params, varargs = self._parse_parameter_list()
                ctype = _append_suffix(ctype, ("func", (params, varargs)))
            else:
                break

        ctype = _resolve_suffixes(ctype)

        if inner_tokens_start is not None:
            # Re-parse the inner declarator with the suffixed type as its base.
            saved_pos = self.pos
            self.pos = inner_tokens_start
            name, ctype, _ = self._parse_declarator(ctype)
            # Skip to the ")" that closed the inner declarator.
            self._expect_punct(")")
            self.pos = saved_pos
        return name, ctype

    def _parse_parameter_list(self) -> tuple[list[CParam], bool]:
        self._expect_punct("(")
        params: list[CParam] = []
        varargs = False
        if self._accept_punct(")"):
            return params, varargs
        if self._check_keyword("void") and self._peek(1).is_punct(")"):
            self._advance()
            self._advance()
            return params, varargs
        while True:
            if self._accept_punct("..."):
                varargs = True
                break
            _storage, base = self._parse_declaration_specifiers()
            name, ctype, annotations = self._parse_declarator(base, abstract=False)
            ctype = _decay_parameter_type(ctype)
            params.append(CParam(name=name, type=ctype, annotations=annotations))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return params, varargs

    def _parse_type_name(self) -> CType:
        _storage, base = self._parse_declaration_specifiers()
        _name, ctype, _annotations = self._parse_declarator(base, abstract=True)
        return ctype

    def _parse_annotations(self, trailing: bool = False) -> AnnotationSet:
        """Parse a run of annotations.

        In pointer position (``trailing=False``) a nullary annotation keyword
        is only treated as an annotation when followed by more declarator
        material, because ``int * nullterm;`` legitimately declares a variable
        named ``nullterm``.  In trailing position (after the declarator name)
        there is no such ambiguity, so keywords are always annotations.
        """
        annotations = AnnotationSet()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.IDENT or token.text not in KEYWORD_TO_KIND:
                return annotations
            kind = KEYWORD_TO_KIND[token.text]
            follower = self._peek(1)
            if kind in NULLARY_KINDS:
                # Only treat as an annotation when another declarator element
                # follows; otherwise it is an ordinary identifier.
                if not trailing and follower.is_punct(";", ",", ")", "=", "[", "("):
                    return annotations
                self._advance()
                annotations.add(Annotation(kind=kind))
                continue
            if not follower.is_punct("("):
                return annotations
            self._advance()
            self._expect_punct("(")
            args: list[ast.Expr] = []
            if not self._check_punct(")"):
                while True:
                    args.append(self._parse_assignment_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
            annotations.add(Annotation(kind=kind, args=tuple(args)))

    # -- initializers ---------------------------------------------------------

    def _parse_initializer(self) -> ast.Initializer:
        loc = self._loc()
        if self._accept_punct("{"):
            elements: list[ast.Initializer] = []
            field_names: list[Optional[str]] = []
            while not self._check_punct("}"):
                designator: Optional[str] = None
                if self._check_punct(".") and self._peek(1).kind is TokenKind.IDENT:
                    self._advance()
                    designator = self._advance().text
                    self._expect_punct("=")
                elements.append(self._parse_initializer())
                field_names.append(designator)
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return ast.Initializer(elements=elements, field_names=field_names, location=loc)
        return ast.Initializer(expr=self._parse_assignment_expression(), location=loc)

    # -- statements -----------------------------------------------------------

    def _parse_block(self, trusted: bool = False) -> ast.Block:
        loc = self._loc()
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._check_punct("}"):
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(stmts=stmts, trusted=trusted, location=loc)

    def _parse_statement(self) -> ast.Stmt:
        loc = self._loc()
        token = self._peek()

        if token.is_ident("trusted") and self._peek(1).is_punct("{"):
            self._advance()
            return self._parse_block(trusted=True)
        if self._check_punct("{"):
            return self._parse_block()
        if self._accept_punct(";"):
            return ast.EmptyStmt(location=loc)
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(location=loc)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(location=loc)
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, location=loc)
        if token.is_keyword("goto"):
            self._advance()
            label = self._expect_ident().text
            self._expect_punct(";")
            return ast.Goto(label=label, location=loc)
        if token.is_keyword("asm"):
            self._advance()
            self._expect_punct("(")
            text_token = self._advance()
            text = str(text_token.value or "")
            while not self._check_punct(")"):
                self._advance()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.Asm(text=text, location=loc)
        if token.kind is TokenKind.IDENT and self._peek(1).is_punct(":"):
            name = self._advance().text
            self._advance()
            stmt = None
            if not self._check_punct("}"):
                stmt = self._parse_statement()
            return ast.Label(name=name, stmt=stmt, location=loc)
        if self._starts_declaration():
            decls = self._parse_local_declaration()
            if len(decls) == 1:
                return decls[0]
            return ast.Block(stmts=list(decls), location=loc)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, location=loc)

    def _parse_local_declaration(self) -> list[ast.DeclStmt]:
        loc = self._loc()
        storage, base_type = self._parse_declaration_specifiers()
        decls: list[ast.DeclStmt] = []
        if self._accept_punct(";"):
            return decls
        while True:
            name, ctype, annotations = self._parse_declarator(base_type)
            init = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decl = ast.Declaration(name=name, type=ctype, storage=storage,
                                   init=init, annotations=annotations, location=loc)
            if storage == "typedef":
                self.registry.define_typedef(name, CNamed(name=name, underlying=ctype))
            decls.append(ast.DeclStmt(decl=decl, location=loc))
            if self._accept_punct(","):
                continue
            self._expect_punct(";")
            break
        return decls

    def _parse_if(self) -> ast.If:
        loc = self._loc()
        self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, location=loc)

    def _parse_while(self) -> ast.While:
        loc = self._loc()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond=cond, body=body, location=loc)

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self._loc()
        self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body=body, cond=cond, location=loc)

    def _parse_for(self) -> ast.For:
        loc = self._loc()
        self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Node] = None
        if not self._check_punct(";"):
            if self._starts_declaration():
                decls = self._parse_local_declaration()
                init = decls[0].decl if len(decls) == 1 else ast.Block(
                    stmts=list(decls), location=loc)
            else:
                init = self._parse_expression()
                self._expect_punct(";")
        else:
            self._advance()
        cond = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, location=loc)

    def _parse_switch(self) -> ast.Switch:
        loc = self._loc()
        self._expect_keyword("switch")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        while not self._check_punct("}"):
            if self._check_keyword("case"):
                case_loc = self._loc()
                self._advance()
                value = self._parse_conditional_expression()
                self._expect_punct(":")
                current = ast.SwitchCase(value=value, location=case_loc)
                cases.append(current)
                continue
            if self._check_keyword("default"):
                case_loc = self._loc()
                self._advance()
                self._expect_punct(":")
                current = ast.SwitchCase(value=None, location=case_loc)
                cases.append(current)
                continue
            if current is None:
                raise ParseError("statement before first case label", self._loc())
            current.stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Switch(cond=cond, cases=cases, location=loc)

    # -- expressions ------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        loc = self._loc()
        expr = self._parse_assignment_expression()
        if not self._check_punct(","):
            return expr
        exprs = [expr]
        while self._accept_punct(","):
            exprs.append(self._parse_assignment_expression())
        return ast.Comma(exprs=exprs, location=loc)

    def _parse_assignment_expression(self) -> ast.Expr:
        loc = self._loc()
        left = self._parse_conditional_expression()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            right = self._parse_assignment_expression()
            return ast.Assign(op=token.text, target=left, value=right, location=loc)
        return left

    def _parse_conditional_expression(self) -> ast.Expr:
        loc = self._loc()
        cond = self._parse_binary_expression(0)
        if self._accept_punct("?"):
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_conditional_expression()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise, location=loc)
        return cond

    _BINARY_LEVELS: tuple[tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary_expression(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_cast_expression()
        loc = self._loc()
        left = self._parse_binary_expression(level + 1)
        ops = self._BINARY_LEVELS[level]
        while True:
            token = self._peek()
            if token.kind is TokenKind.PUNCT and token.text in ops:
                # "&" at the innermost levels can also begin a unary
                # address-of, but in binary position it is always binary here.
                self._advance()
                right = self._parse_binary_expression(level + 1)
                left = ast.Binary(op=token.text, left=left, right=right, location=loc)
            else:
                return left

    def _looks_like_type_name(self) -> bool:
        """After a '(' decide whether a type name (cast/sizeof) follows."""
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            return token.text in _TYPE_SPECIFIER_KEYWORDS | _QUALIFIER_KEYWORDS
        if token.kind is TokenKind.IDENT:
            return self.registry.is_typedef(token.text)
        return False

    def _parse_cast_expression(self) -> ast.Expr:
        loc = self._loc()
        if self._check_punct("("):
            saved = self.pos
            self._advance()
            if self._looks_like_type_name():
                _storage, base = self._parse_declaration_specifiers()
                _name, to_type, trailing = self._parse_declarator(base, abstract=True)
                # "(struct foo * trusted) e" marks a Deputy trusted cast; the
                # keyword lands either in the pointer annotations or in the
                # trailing declarator annotations depending on spacing.
                trusted = trailing.has(AnnotationKind.TRUSTED)
                stripped = to_type.strip()
                if isinstance(stripped, CPointer) and stripped.annotations.has(
                        AnnotationKind.TRUSTED):
                    trusted = True
                if self._peek().is_ident("trusted"):
                    self._advance()
                    trusted = True
                self._expect_punct(")")
                operand = self._parse_cast_expression()
                return ast.Cast(to_type=to_type, operand=operand, trusted=trusted,
                                location=loc)
            self.pos = saved
        return self._parse_unary_expression()

    def _parse_unary_expression(self) -> ast.Expr:
        loc = self._loc()
        token = self._peek()
        if token.is_punct("++", "--"):
            self._advance()
            operand = self._parse_unary_expression()
            return ast.Unary(op=token.text, operand=operand, location=loc)
        if token.is_punct("+"):
            self._advance()
            return self._parse_cast_expression()
        if token.is_punct("-", "~", "!", "&", "*"):
            self._advance()
            operand = self._parse_cast_expression()
            return ast.Unary(op=token.text, operand=operand, location=loc)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and self._looks_like_type_name_at(1):
                self._advance()
                of_type = self._parse_type_name()
                self._expect_punct(")")
                return ast.SizeofType(of_type=of_type, location=loc)
            operand = self._parse_unary_expression()
            return ast.SizeofExpr(operand=operand, location=loc)
        return self._parse_postfix_expression()

    def _looks_like_type_name_at(self, offset: int) -> bool:
        token = self._peek(offset)
        if token.kind is TokenKind.KEYWORD:
            return token.text in _TYPE_SPECIFIER_KEYWORDS | _QUALIFIER_KEYWORDS
        if token.kind is TokenKind.IDENT:
            return self.registry.is_typedef(token.text)
        return False

    def _parse_postfix_expression(self) -> ast.Expr:
        expr = self._parse_primary_expression()
        while True:
            loc = self._loc()
            if self._accept_punct("["):
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr, index=index, location=loc)
            elif self._accept_punct("("):
                args: list[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expression())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(func=expr, args=args, location=loc)
            elif self._accept_punct("."):
                name = self._expect_ident().text
                expr = ast.Member(base=expr, name=name, arrow=False, location=loc)
            elif self._accept_punct("->"):
                name = self._expect_ident().text
                expr = ast.Member(base=expr, name=name, arrow=True, location=loc)
            elif self._check_punct("++", "--"):
                op = self._advance().text
                expr = ast.Postfix(op=op, operand=expr, location=loc)
            else:
                return expr

    def _parse_primary_expression(self) -> ast.Expr:
        loc = self._loc()
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(value=int(token.value), location=loc)  # type: ignore[arg-type]
        if token.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.CharLit(value=int(token.value), location=loc)  # type: ignore[arg-type]
        if token.kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StrLit(value=str(token.value), location=loc)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self.registry.is_enum_constant(token.text):
                return ast.IntLit(value=self.registry.enum_constant(token.text),
                                  location=loc)
            return ast.Ident(name=token.text, location=loc)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression", loc)

    # -- constant expressions ----------------------------------------------------

    def _parse_constant_expression(self) -> int:
        expr = self._parse_conditional_expression()
        return evaluate_constant(expr, self.registry)


# ---------------------------------------------------------------------------
# Declarator suffix plumbing
# ---------------------------------------------------------------------------
#
# Array/function suffixes bind tighter than pointers but are written after
# the name; we collect them in order and then fold them onto the base type.

_SUFFIX_ATTR = "_minic_suffixes"


def _append_suffix(ctype: CType, suffix: tuple) -> CType:
    suffixes = list(getattr(ctype, _SUFFIX_ATTR, []))
    suffixes.append(suffix)
    wrapper = _SuffixedType(ctype, suffixes)
    return wrapper


class _SuffixedType(CType):
    """Temporary wrapper holding declarator suffixes before resolution."""

    def __init__(self, base: CType, suffixes: list[tuple]) -> None:
        self.base = base
        self.suffixes = suffixes

    @property
    def size(self) -> int:  # pragma: no cover - never used before resolution
        raise NotImplementedError


def _resolve_suffixes(ctype: CType) -> CType:
    if not isinstance(ctype, _SuffixedType):
        return ctype
    result = ctype.base
    for kind, payload in reversed(ctype.suffixes):
        if kind == "array":
            result = CArray(element=result, length=payload)
        else:
            params, varargs = payload
            result = CFunc(return_type=result, params=params, varargs=varargs)
    return result


def _decay_parameter_type(ctype: CType) -> CType:
    """Array and function parameters decay to pointers, as in C."""
    stripped = ctype.strip()
    if isinstance(stripped, CArray):
        return CPointer(target=stripped.element)
    if isinstance(stripped, CFunc):
        return CPointer(target=stripped)
    return ctype


def _integer_type(words: list[str], unsigned: bool) -> CInt:
    counted = sorted(words)
    if words.count("long") >= 2:
        kind = "longlong"
    elif "char" in counted:
        kind = "char"
    elif "short" in counted:
        kind = "short"
    elif "long" in counted:
        kind = "long"
    else:
        kind = "int"
    return CInt(kind, signed=not unsigned)


# ---------------------------------------------------------------------------
# Constant expression evaluation (array sizes, enum values, case labels)
# ---------------------------------------------------------------------------

def evaluate_constant(expr: ast.Expr, registry: TypeRegistry | None = None) -> int:
    """Evaluate a compile-time constant integer expression."""
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    if isinstance(expr, ast.Ident):
        if registry is not None and registry.is_enum_constant(expr.name):
            return registry.enum_constant(expr.name)
        raise ParseError(f"{expr.name!r} is not a compile-time constant", expr.location)
    if isinstance(expr, ast.SizeofType):
        return expr.of_type.size
    if isinstance(expr, ast.Unary):
        value = evaluate_constant(expr.operand, registry)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
        raise ParseError(f"operator {expr.op!r} not allowed in constant expression",
                         expr.location)
    if isinstance(expr, ast.Binary):
        left = evaluate_constant(expr.left, registry)
        right = evaluate_constant(expr.right, registry)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left // right if right else 0,
            "%": lambda: left % right if right else 0,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "<": lambda: int(left < right),
            ">": lambda: int(left > right),
            "<=": lambda: int(left <= right),
            ">=": lambda: int(left >= right),
            "&&": lambda: int(bool(left) and bool(right)),
            "||": lambda: int(bool(left) or bool(right)),
        }
        if expr.op in ops:
            return ops[expr.op]()
    if isinstance(expr, ast.Conditional):
        cond = evaluate_constant(expr.cond, registry)
        branch = expr.then if cond else expr.otherwise
        return evaluate_constant(branch, registry)
    raise ParseError("expression is not a compile-time constant", expr.location)


# ---------------------------------------------------------------------------
# Public convenience entry points
# ---------------------------------------------------------------------------

def parse_source(text: str, filename: str = "<unknown>",
                 registry: TypeRegistry | None = None,
                 defines: dict[str, str] | None = None) -> ast.TranslationUnit:
    """Preprocess, tokenize and parse ``text`` into a translation unit."""
    processed = preprocess(text, filename, defines)
    tokens = tokenize(processed, filename)
    parser = Parser(tokens, filename, registry)
    return parser.parse_translation_unit()


def parse_expression(text: str,
                     registry: TypeRegistry | None = None) -> ast.Expr:
    """Parse a single expression (used by tests and annotation tooling)."""
    tokens = tokenize(text, "<expr>")
    parser = Parser(tokens, "<expr>", registry)
    expr = parser._parse_expression()
    if not parser._at_eof():
        raise ParseError("trailing tokens after expression", parser._loc())
    return expr
