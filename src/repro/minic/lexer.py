"""Hand-written lexer for MiniC.

The lexer is deliberately simple: it works on already-preprocessed text (see
:mod:`repro.minic.source`) and produces a flat list of :class:`Token` objects
terminated by an EOF token.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


class Lexer:
    """Convert MiniC source text into a token stream."""

    def __init__(self, text: str, filename: str = "<unknown>") -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token list, including the trailing EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals --------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        consumed = self.text[self.pos:self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def _skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n\f\v":
            self._advance()

    def _next_token(self) -> Token:
        self._skip_whitespace()
        loc = self._location()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", None, loc)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(loc)
        if ch.isdigit():
            return self._lex_number(loc)
        if ch == "'":
            return self._lex_char(loc)
        if ch == '"':
            return self._lex_string(loc)
        for punct in PUNCTUATORS:
            if self.text.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, None, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_identifier(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.text[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, text, loc)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self.pos
        text = self.text
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self.pos < len(text) and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            digits = text[start:self.pos]
            value = int(digits, 16)
        elif self._peek() == "0" and self._peek(1).isdigit():
            self._advance()
            while self.pos < len(text) and self._peek().isdigit():
                self._advance()
            digits = text[start:self.pos]
            value = int(digits, 8)
        else:
            while self.pos < len(text) and self._peek().isdigit():
                self._advance()
            digits = text[start:self.pos]
            value = int(digits, 10)
        # Integer suffixes (u, l, ul, ull, ...) are accepted and ignored:
        # MiniC models a single 32-bit int plus 64-bit long long.  The
        # explicit emptiness guard matters: at end of input _peek() returns
        # "" and `"" in "uUlL"` is True, which would loop forever.
        while self._peek() != "" and self._peek() in "uUlL":
            self._advance()
        return Token(TokenKind.INT_LIT, text[start:self.pos], value, loc)

    def _lex_escape(self, loc: SourceLocation) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() != "" and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise LexError("invalid hex escape", loc)
            return chr(int(digits, 16))
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        raise LexError(f"unknown escape sequence \\{ch}", loc)

    def _lex_char(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._lex_escape(loc)
        else:
            value = self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token(TokenKind.CHAR_LIT, value, ord(value), loc)

    def _lex_string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text) or self._peek() == "\n":
                raise LexError("unterminated string literal", loc)
            if self._peek() == '"':
                self._advance()
                break
            if self._peek() == "\\":
                chars.append(self._lex_escape(loc))
            else:
                chars.append(self._advance())
        value = "".join(chars)
        return Token(TokenKind.STRING_LIT, value, value, loc)


def tokenize(text: str, filename: str = "<unknown>") -> list[Token]:
    """Tokenize ``text`` (already preprocessed) into a token list."""
    return Lexer(text, filename).tokenize()
