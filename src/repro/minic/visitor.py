"""Generic AST traversal and rewriting utilities.

Two base classes are provided:

* :class:`Visitor` — read-only traversal with ``visit_<NodeClass>`` hooks.
* :class:`Transformer` — rebuild-style traversal used by the instrumenters;
  returning a new node replaces the old one, returning the input leaves the
  tree unchanged.

Both walk child nodes automatically, so a concrete visitor only overrides the
hooks it cares about.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Iterator

from . import ast_nodes as ast


def iter_child_nodes(node: ast.Node) -> Iterator[ast.Node]:
    """Yield the direct AST-node children of ``node``."""
    if not is_dataclass(node):
        return
    for spec in fields(node):
        value = getattr(node, spec.name)
        if isinstance(value, ast.Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    yield item


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield ``node`` and all its descendants in pre-order."""
    yield node
    for child in iter_child_nodes(node):
        yield from walk(child)


class Visitor:
    """Read-only traversal with per-node-class hooks."""

    def visit(self, node: ast.Node) -> Any:
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> None:
        for child in iter_child_nodes(node):
            self.visit(child)


class Transformer:
    """Rebuild-style traversal: hooks return replacement nodes."""

    def visit(self, node: ast.Node) -> ast.Node:
        self._transform_children(node)
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            replacement = method(node)
            return node if replacement is None else replacement
        return node

    def _transform_children(self, node: ast.Node) -> None:
        if not is_dataclass(node):
            return
        for spec in fields(node):
            value = getattr(node, spec.name)
            if isinstance(value, ast.Node):
                setattr(node, spec.name, self.visit(value))
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if isinstance(item, ast.Node):
                        replacement = self.visit(item)
                        if isinstance(replacement, list):
                            new_items.extend(replacement)
                        else:
                            new_items.append(replacement)
                    else:
                        new_items.append(item)
                setattr(node, spec.name, new_items)


def initializer_expressions(init: ast.Initializer) -> list[ast.Expr]:
    """Every scalar expression inside an initializer (flattening brace lists).

    Lifted out of the BlockStop checker: control-flow construction
    (:mod:`repro.dataflow.cfg`) needs the expressions a declaration actually
    evaluates, which the generic ``iter_child_nodes`` does not isolate.
    """
    if init.is_list:
        collected: list[ast.Expr] = []
        for element in init.elements or []:
            collected.extend(initializer_expressions(element))
        return collected
    return [init.expr] if init.expr is not None else []


def collect(node: ast.Node, node_type: type) -> list[ast.Node]:
    """Collect all descendants of ``node`` that are instances of ``node_type``."""
    return [n for n in walk(node) if isinstance(n, node_type)]


def count_nodes(node: ast.Node) -> int:
    """Total number of nodes in the subtree rooted at ``node``."""
    return sum(1 for _ in walk(node))
