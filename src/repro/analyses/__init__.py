"""The paper's proposed future analyses (§3.1): locks, stack depth, error codes."""

from .errcheck import (
    ErrcheckReport,
    UncheckedCall,
    analyse_error_checks,
    find_error_returning_functions,
)
from .lockcheck import (
    LockAcquisition,
    LockFacts,
    LockLeak,
    LockReport,
    analyse_locks,
    collect_acquisitions,
    collect_lock_facts,
    derive_report,
)
from .stackcheck import KERNEL_STACK_BYTES, StackReport, analyse_stack, frame_size

__all__ = [
    "ErrcheckReport", "UncheckedCall", "analyse_error_checks",
    "find_error_returning_functions",
    "LockAcquisition", "LockFacts", "LockLeak", "LockReport", "analyse_locks",
    "collect_acquisitions", "collect_lock_facts", "derive_report",
    "KERNEL_STACK_BYTES", "StackReport", "analyse_stack", "frame_size",
]
