"""The paper's proposed future analyses (§3.1): locks, stack depth, error codes."""

from .errcheck import ErrcheckReport, UncheckedCall, analyse_error_checks
from .lockcheck import LockAcquisition, LockReport, analyse_locks
from .stackcheck import KERNEL_STACK_BYTES, StackReport, analyse_stack, frame_size

__all__ = [
    "ErrcheckReport", "UncheckedCall", "analyse_error_checks",
    "LockAcquisition", "LockReport", "analyse_locks",
    "KERNEL_STACK_BYTES", "StackReport", "analyse_stack", "frame_size",
]
