"""Future analysis (§3.1): hybrid lock-safety checking.

Two properties are checked statically over the call-free, intraprocedural
lock behaviour of each function, then summarised program-wide:

* **Lock ordering** — if one function acquires lock A and then lock B while a
  different code path acquires B and then A, the pair is reported as a
  potential deadlock (inconsistent lock order).
* **IRQ discipline** — a spinlock that is taken from interrupt context must
  only be taken with interrupts disabled (``spin_lock_irqsave``) in process
  context; taking it with plain ``spin_lock`` is reported.

The per-function scan is flow-sensitive: it runs on the shared CFG +
fixpoint solver (:mod:`repro.dataflow`).  The abstract state is the
*must-hold* multiset of locks — a tuple of ``(lock, count)`` pairs in
first-acquisition order — and the join at merge points is intersection with
minimum counts, so a lock taken on only one arm of an ``if``/``else`` is not
"held" in the sibling arm or after the merge.  Counts make nested
re-acquisition of the same lock balance correctly (each release undoes one
acquire) and surface a double-acquire diagnostic (self-deadlock on a
non-recursive spinlock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow import build_cfg, reachable_blocks, solve_forward
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import SourceLocation
from ..minic.visitor import walk

ACQUIRE_CALLS = {"spin_lock": False, "spin_lock_irqsave": True, "spin_lock_irq": True}
RELEASE_CALLS = {"spin_unlock", "spin_unlock_irqrestore", "spin_unlock_irq"}

#: Abstract state: locks definitely held, with nesting counts, in
#: first-acquisition order.  Immutable so the solver can compare states.
LockState = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition site."""

    function: str
    lock: str
    irqsave: bool
    held_before: tuple[str, ...]
    location: SourceLocation = field(default_factory=SourceLocation)
    reacquired: bool = False    # the same lock was already held at this site


@dataclass
class LockReport:
    """Result of the lock-safety analysis."""

    acquisitions: list[LockAcquisition] = field(default_factory=list)
    order_pairs: set[tuple[str, str]] = field(default_factory=set)
    order_violations: list[tuple[str, str]] = field(default_factory=list)
    irq_violations: list[LockAcquisition] = field(default_factory=list)
    irq_context_locks: set[str] = field(default_factory=set)
    double_acquires: list[LockAcquisition] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return not self.order_violations and not self.double_acquires


def _lock_name(expr: ast.Expr) -> str:
    """A stable name for the lock argument expression."""
    from ..minic.pretty import render_expression
    return render_expression(expr)


def _join(a: LockState, b: LockState) -> LockState:
    """Must-hold join: locks held on *both* paths, at their minimum depth."""
    counts = dict(b)
    return tuple((lock, min(count, counts[lock]))
                 for lock, count in a if lock in counts)


def _apply_element(state: LockState, expr: ast.Expr | None, function: str,
                   sink: list[LockAcquisition] | None = None) -> LockState:
    """Step the lock state over every call inside ``expr`` (in walk order)."""
    if expr is None:
        return state
    for node in walk(expr):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
            continue
        callee = node.func.name
        if callee in ACQUIRE_CALLS and node.args:
            lock = _lock_name(node.args[0])
            held = dict(state)
            if sink is not None:
                sink.append(LockAcquisition(
                    function=function, lock=lock,
                    irqsave=ACQUIRE_CALLS[callee],
                    held_before=tuple(name for name, _ in state),
                    location=node.location,
                    reacquired=lock in held))
            if lock in held:
                state = tuple((name, count + 1 if name == lock else count)
                              for name, count in state)
            else:
                state = state + ((lock, 1),)
        elif callee in RELEASE_CALLS and node.args:
            lock = _lock_name(node.args[0])
            state = tuple((name, count - 1 if name == lock else count)
                          for name, count in state
                          if name != lock or count > 1)
    return state


def collect_acquisitions(program: Program,
                         functions: list[str] | None = None) -> list[LockAcquisition]:
    """Collect every lock acquisition, with the locks held at that point.

    Purely per-function work: ``functions`` restricts the scan so the engine
    can shard it by translation unit and concatenate the shard results.
    ``held_before`` is flow-sensitive must-hold information: a lock acquired
    on only one path to the site is not included.
    """
    acquisitions: list[LockAcquisition] = []
    for name, func in program.functions_subset(functions):
        if not any(isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                   and node.func.name in ACQUIRE_CALLS
                   for node in walk(func.body)):
            continue    # no acquisitions to record: skip the CFG + solve cost
        cfg = build_cfg(func)

        def transfer(block, state, _name=name):
            for element in block.elements:
                state = _apply_element(state, element.expr, _name)
            return state

        in_states = solve_forward(cfg, transfer, _join, entry_state=())
        for block, state in reachable_blocks(cfg, in_states):
            for element in block.elements:
                state = _apply_element(state, element.expr, name,
                                       sink=acquisitions)
    return acquisitions


def _acquisition_sort_key(acquisition: LockAcquisition) -> tuple:
    return (acquisition.function, acquisition.location.filename,
            acquisition.location.line, acquisition.location.column,
            acquisition.lock)


def derive_report(acquisitions: list[LockAcquisition],
                  irq_functions: set[str] | None = None) -> LockReport:
    """Derive the program-wide lock report from collected acquisitions.

    Findings lists come out sorted by (function, location) so that shard
    merge order never changes the rendered report.
    """
    report = LockReport()
    irq_functions = irq_functions or set()
    report.acquisitions = list(acquisitions)
    for acquisition in report.acquisitions:
        for earlier in acquisition.held_before:
            if earlier != acquisition.lock:
                report.order_pairs.add((earlier, acquisition.lock))
        if acquisition.function in irq_functions:
            report.irq_context_locks.add(acquisition.lock)
        if acquisition.reacquired:
            report.double_acquires.append(acquisition)
    # Inconsistent ordering: both (A, B) and (B, A) observed.
    for first, second in sorted(report.order_pairs):
        if (second, first) in report.order_pairs and (second, first) > (first, second):
            report.order_violations.append((first, second))
    # IRQ discipline: locks used in interrupt context must always be taken
    # with interrupts disabled in process context.
    for acquisition in report.acquisitions:
        if (acquisition.lock in report.irq_context_locks
                and not acquisition.irqsave
                and acquisition.function not in irq_functions):
            report.irq_violations.append(acquisition)
    report.order_violations.sort()
    report.irq_violations.sort(key=_acquisition_sort_key)
    report.double_acquires.sort(key=_acquisition_sort_key)
    return report


def analyse_locks(program: Program,
                  irq_functions: set[str] | None = None) -> LockReport:
    """Run the lock-safety analysis over every function of ``program``."""
    return derive_report(collect_acquisitions(program), irq_functions)
