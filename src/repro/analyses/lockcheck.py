"""Future analysis (§3.1): hybrid lock-safety checking.

Two properties are checked statically over the call-free, intraprocedural
lock behaviour of each function, then summarised program-wide:

* **Lock ordering** — if one function acquires lock A and then lock B while a
  different code path acquires B and then A, the pair is reported as a
  potential deadlock (inconsistent lock order).
* **IRQ discipline** — a spinlock that is taken from interrupt context must
  only be taken with interrupts disabled (``spin_lock_irqsave``) in process
  context; taking it with plain ``spin_lock`` is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk

ACQUIRE_CALLS = {"spin_lock": False, "spin_lock_irqsave": True, "spin_lock_irq": True}
RELEASE_CALLS = {"spin_unlock", "spin_unlock_irqrestore", "spin_unlock_irq"}


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition site."""

    function: str
    lock: str
    irqsave: bool
    held_before: tuple[str, ...]


@dataclass
class LockReport:
    """Result of the lock-safety analysis."""

    acquisitions: list[LockAcquisition] = field(default_factory=list)
    order_pairs: set[tuple[str, str]] = field(default_factory=set)
    order_violations: list[tuple[str, str]] = field(default_factory=list)
    irq_violations: list[LockAcquisition] = field(default_factory=list)
    irq_context_locks: set[str] = field(default_factory=set)

    @property
    def deadlock_free(self) -> bool:
        return not self.order_violations


def _lock_name(expr: ast.Expr) -> str:
    """A stable name for the lock argument expression."""
    from ..minic.pretty import render_expression
    return render_expression(expr)


def collect_acquisitions(program: Program,
                         functions: list[str] | None = None) -> list[LockAcquisition]:
    """Collect every lock acquisition, with the locks held at that point.

    Purely per-function work: ``functions`` restricts the scan so the engine
    can shard it by translation unit and concatenate the shard results.
    """
    acquisitions: list[LockAcquisition] = []
    for name, func in program.functions_subset(functions):
        held: list[str] = []
        for node in walk(func.body):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
                continue
            callee = node.func.name
            if callee in ACQUIRE_CALLS and node.args:
                lock = _lock_name(node.args[0])
                acquisitions.append(LockAcquisition(
                    function=name, lock=lock,
                    irqsave=ACQUIRE_CALLS[callee],
                    held_before=tuple(held)))
                held.append(lock)
            elif callee in RELEASE_CALLS and node.args:
                lock = _lock_name(node.args[0])
                if lock in held:
                    held.remove(lock)
    return acquisitions


def derive_report(acquisitions: list[LockAcquisition],
                  irq_functions: set[str] | None = None) -> LockReport:
    """Derive the program-wide lock report from collected acquisitions."""
    report = LockReport()
    irq_functions = irq_functions or set()
    report.acquisitions = list(acquisitions)
    for acquisition in report.acquisitions:
        for earlier in acquisition.held_before:
            if earlier != acquisition.lock:
                report.order_pairs.add((earlier, acquisition.lock))
        if acquisition.function in irq_functions:
            report.irq_context_locks.add(acquisition.lock)
    # Inconsistent ordering: both (A, B) and (B, A) observed.
    for first, second in sorted(report.order_pairs):
        if (second, first) in report.order_pairs and (second, first) > (first, second):
            report.order_violations.append((first, second))
    # IRQ discipline: locks used in interrupt context must always be taken
    # with interrupts disabled in process context.
    for acquisition in report.acquisitions:
        if (acquisition.lock in report.irq_context_locks
                and not acquisition.irqsave
                and acquisition.function not in irq_functions):
            report.irq_violations.append(acquisition)
    return report


def analyse_locks(program: Program,
                  irq_functions: set[str] | None = None) -> LockReport:
    """Run the lock-safety analysis over every function of ``program``."""
    return derive_report(collect_acquisitions(program), irq_functions)
