"""Future analysis (§3.1): hybrid lock-safety checking, now interprocedural.

Two properties are checked statically over each function's lock behaviour,
then summarised program-wide:

* **Lock ordering** — if one function acquires lock A and then lock B while a
  different code path acquires B and then A, the pair is reported as a
  potential deadlock (inconsistent lock order).
* **IRQ discipline** — a spinlock that is taken from interrupt context must
  only be taken with interrupts disabled (``spin_lock_irqsave``) in process
  context; taking it with plain ``spin_lock`` is reported.

The per-function scan is flow-sensitive: it runs on the shared CFG +
fixpoint solver (:mod:`repro.dataflow`).  The abstract state pairs the
*must-hold* multiset of locks — ``(lock, count)`` pairs whose join at merge
points is intersection with minimum counts — with a *may-hold* set (join =
union) that tracks locks possibly held on some path.  The solve is
condition-aware (:mod:`repro.dataflow.consts`): branch edges whose
condition folds to a constant false are infeasible, so an acquisition in an
``if (0)``-guarded arm never reaches the merge, the exit state, or any
caller's summary.

Since the interprocedural summary framework
(:mod:`repro.dataflow.interproc`) the scan also applies each callee's
:class:`~repro.dataflow.summaries.FunctionSummary` at its call site, which
adds two whole-program findings the paper's sound-analysis story needs:

* ``returns-with-lock-held`` — a lock may-held at some return but not
  must-held at every return: an early-return path leaked it.  The leak
  propagates: a caller of the leaking helper inherits the may-held lock and
  is reported too (deliberate lock wrappers, which hold on *every* path,
  are their callers' contract and are not reported).
* interprocedural ``double-acquire`` — a call made while holding lock L to
  a callee whose summary says it may (transitively) acquire L again:
  self-deadlock on a non-recursive spinlock, invisible to any purely
  intraprocedural scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow import build_cfg, reachable_blocks, solve_forward
from ..dataflow.consts import refined_edges
from ..dataflow.context import AnalysisContext
from ..dataflow.domains import FunctionFacts, facts_of
from ..dataflow.summaries import (
    LOCK_ACQUIRE_CALLS,
    LOCK_RELEASE_CALLS,
    FunctionSummary,
    lock_name_of,
)
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.errors import SourceLocation
from ..minic.visitor import walk

#: Legacy names (pre-summary-framework); the tables live in the shared
#: summary domain now so the interprocedural sweep and this checker agree.
ACQUIRE_CALLS = LOCK_ACQUIRE_CALLS
RELEASE_CALLS = LOCK_RELEASE_CALLS

#: Abstract state: (must-hold multiset in first-acquisition order,
#: may-hold lock-name frozenset).  Immutable so the solver compares states.
LockState = tuple[tuple[tuple[str, int], ...], frozenset]

_ENTRY_STATE: LockState = ((), frozenset())


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition site."""

    function: str
    lock: str
    irqsave: bool
    held_before: tuple[str, ...]
    location: SourceLocation = field(default_factory=SourceLocation)
    reacquired: bool = False    # the same lock was already held at this site
    via_callee: str = ""        # summary-applied: the callee that acquires


@dataclass(frozen=True)
class LockLeak:
    """A function that may return with a lock still held."""

    function: str
    lock: str
    location: SourceLocation = field(default_factory=SourceLocation)
    via_callee: str = ""        # inherited from this callee's leak, if any


@dataclass
class LockFacts:
    """Everything one scan pass collected (shard payload granularity)."""

    acquisitions: list[LockAcquisition] = field(default_factory=list)
    interproc_acquires: list[LockAcquisition] = field(default_factory=list)
    leaks: list[LockLeak] = field(default_factory=list)


@dataclass
class LockReport:
    """Result of the lock-safety analysis."""

    acquisitions: list[LockAcquisition] = field(default_factory=list)
    order_pairs: set[tuple[str, str]] = field(default_factory=set)
    order_violations: list[tuple[str, str]] = field(default_factory=list)
    irq_violations: list[LockAcquisition] = field(default_factory=list)
    irq_context_locks: set[str] = field(default_factory=set)
    double_acquires: list[LockAcquisition] = field(default_factory=list)
    leaked_returns: list[LockLeak] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return not self.order_violations and not self.double_acquires


def _lock_name(expr: ast.Expr) -> str:
    """A stable name for the lock argument expression."""
    return lock_name_of(expr)


def _join(a: LockState, b: LockState) -> LockState:
    """Must-hold intersection at minimum depth; may-hold union."""
    must_a, may_a = a
    must_b, may_b = b
    counts = dict(must_b)
    must = tuple((lock, min(count, counts[lock]))
                 for lock, count in must_a if lock in counts)
    return (must, may_a | may_b)


class _FunctionScan:
    """One function's flow-sensitive lock scan (solve + recording pass)."""

    def __init__(self, function: str,
                 summaries: dict[str, FunctionSummary] | None) -> None:
        self.function = function
        self.summaries = summaries or {}
        self.facts: LockFacts | None = None    # set during the recording pass
        #: Where each may-held lock first appeared (acquisition or call site).
        self.may_origin: dict[str, tuple[SourceLocation, str]] = {}

    def apply_element(self, state: LockState,
                      expr: ast.Expr | None) -> LockState:
        """Step the state over every call inside ``expr`` (in walk order)."""
        if expr is None:
            return state
        for node in walk(expr):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
                continue
            state = self._apply_call(state, node)
        return state

    def _apply_call(self, state: LockState, node: ast.Call) -> LockState:
        must, may = state
        callee = node.func.name
        if callee in ACQUIRE_CALLS and node.args:
            lock = _lock_name(node.args[0])
            held = dict(must)
            if self.facts is not None:
                self.facts.acquisitions.append(LockAcquisition(
                    function=self.function, lock=lock,
                    irqsave=ACQUIRE_CALLS[callee],
                    held_before=tuple(name for name, _ in must),
                    location=node.location,
                    reacquired=lock in held))
                self.may_origin.setdefault(lock, (node.location, ""))
            if lock in held:
                must = tuple((name, count + 1 if name == lock else count)
                             for name, count in must)
            else:
                must = must + ((lock, 1),)
            return (must, may | {lock})
        if callee in RELEASE_CALLS and node.args:
            lock = _lock_name(node.args[0])
            must = tuple((name, count - 1 if name == lock else count)
                         for name, count in must
                         if name != lock or count > 1)
            return (must, may - {lock})
        summary = self.summaries.get(callee)
        if summary is None or summary.trivial_lock_effect:
            return state
        held = dict(must)
        if self.facts is not None:
            # Interprocedural double-acquire: the callee may (transitively)
            # take a lock this caller already holds.
            for lock in summary.acquires:
                if held.get(lock, 0) > 0:
                    self.facts.interproc_acquires.append(LockAcquisition(
                        function=self.function, lock=lock,
                        irqsave=False,
                        held_before=tuple(name for name, _ in must),
                        location=node.location,
                        reacquired=True, via_callee=callee))
        for lock, count in summary.locks_released:
            must = tuple((name, c - count if name == lock else c)
                         for name, c in must
                         if name != lock or c > count)
            may = may - {lock}
        for lock, count in summary.locks_held:
            if lock in dict(must):
                must = tuple((name, c + count if name == lock else c)
                             for name, c in must)
            else:
                must = must + ((lock, count),)
            may = may | {lock}
            if self.facts is not None:
                self.may_origin.setdefault(lock, (node.location, callee))
        for lock in summary.may_return_held:
            may = may | {lock}
            if self.facts is not None:
                self.may_origin.setdefault(lock, (node.location, callee))
        return (must, may)


def check_locks(ctx: AnalysisContext) -> LockFacts:
    """Collect acquisitions, interprocedural re-acquisitions, and leaks.

    This is the primary entry point, consuming the engine's shared
    :class:`repro.dataflow.AnalysisContext`.  Purely per-function work:
    ``ctx.functions`` restricts the scan so the engine can shard it by
    translation unit and concatenate the shard results.  ``held_before`` is
    flow-sensitive must-hold information: a lock acquired on only one path
    to the site is not included.  With ``ctx.summaries`` supplied, callee
    lock deltas are applied at call sites; without them the scan degrades to
    the purely intraprocedural behaviour.  ``ctx.facts`` maps function
    names to solved condition facts (the engine's keyed artifact); missing
    entries are solved on demand, and the resulting infeasible-edge set
    prunes the solve — an acquisition inside an ``if (0)`` arm never
    reaches the exit state, so it is neither recorded nor reported leaked.
    """
    summaries = ctx.summaries or {}
    consts_cache = ctx.facts if ctx.facts is not None else {}
    facts = LockFacts()
    for name, func in ctx.program.functions_subset(ctx.functions):
        if not _scan_relevant(func, summaries):
            continue    # nothing can move the lock state: skip CFG + solve
        scan = _FunctionScan(name, summaries)
        cfg = build_cfg(func)
        func_consts = facts_of(func, cache=consts_cache, cfg=cfg)

        def transfer(block, state, _scan=scan):
            for element in block.elements:
                state = _scan.apply_element(state, element.expr)
            return state

        in_states = solve_forward(cfg, transfer, _join,
                                  entry_state=_ENTRY_STATE,
                                  edge_refine=refined_edges(func_consts))
        scan.facts = facts
        for block, state in reachable_blocks(cfg, in_states):
            for element in block.elements:
                state = scan.apply_element(state, element.expr)
        exit_state = in_states[cfg.exit]
        if exit_state is not None:
            must_exit, may_exit = exit_state
            held_on_all = {lock for lock, count in must_exit if count > 0}
            for lock in sorted(may_exit - held_on_all):
                location, via = scan.may_origin.get(
                    lock, (func.location, ""))
                facts.leaks.append(LockLeak(
                    function=name, lock=lock, location=location,
                    via_callee=via))
    return facts


def collect_lock_facts(program: Program,
                       functions: list[str] | None = None,
                       summaries: dict[str, FunctionSummary] | None = None,
                       consts: dict[str, FunctionFacts | None] | None = None,
                       ) -> LockFacts:
    """Convenience wrapper for scripts and tests: loose artifacts in, one
    :class:`AnalysisContext` out, delegated to :func:`check_locks`."""
    return check_locks(AnalysisContext(program=program, functions=functions,
                                       summaries=summaries, facts=consts))


def _scan_relevant(func: ast.FuncDef,
                   summaries: dict[str, FunctionSummary]) -> bool:
    """Whether any call in ``func`` can move the lock state."""
    for node in walk(func.body):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
            continue
        name = node.func.name
        if name in ACQUIRE_CALLS:
            return True
        summary = summaries.get(name)
        if summary is not None and not summary.trivial_lock_effect:
            return True
    return False


def collect_acquisitions(program: Program,
                         functions: list[str] | None = None,
                         summaries: dict[str, FunctionSummary] | None = None,
                         ) -> list[LockAcquisition]:
    """Backwards-compatible view of :func:`collect_lock_facts`."""
    return collect_lock_facts(program, functions, summaries).acquisitions


def _acquisition_sort_key(acquisition: LockAcquisition) -> tuple:
    return (acquisition.function, acquisition.location.filename,
            acquisition.location.line, acquisition.location.column,
            acquisition.lock)


def _leak_sort_key(leak: LockLeak) -> tuple:
    return (leak.function, leak.location.filename, leak.location.line,
            leak.location.column, leak.lock)


def derive_report(acquisitions: list[LockAcquisition],
                  irq_functions: set[str] | None = None,
                  interproc_acquires: list[LockAcquisition] | None = None,
                  leaks: list[LockLeak] | None = None) -> LockReport:
    """Derive the program-wide lock report from collected facts.

    Findings lists come out sorted by (function, location) so that shard
    merge order never changes the rendered report.  Summary-applied
    re-acquisitions join the intraprocedural ones in ``double_acquires``;
    they deliberately do *not* feed ``order_pairs`` (callee acquisition
    order is not observed, only membership).
    """
    report = LockReport()
    irq_functions = irq_functions or set()
    report.acquisitions = list(acquisitions)
    for acquisition in report.acquisitions:
        for earlier in acquisition.held_before:
            if earlier != acquisition.lock:
                report.order_pairs.add((earlier, acquisition.lock))
        if acquisition.function in irq_functions:
            report.irq_context_locks.add(acquisition.lock)
        if acquisition.reacquired:
            report.double_acquires.append(acquisition)
    report.double_acquires.extend(interproc_acquires or [])
    report.leaked_returns = sorted(leaks or [], key=_leak_sort_key)
    # Inconsistent ordering: both (A, B) and (B, A) observed.
    for first, second in sorted(report.order_pairs):
        if (second, first) in report.order_pairs and (second, first) > (first, second):
            report.order_violations.append((first, second))
    # IRQ discipline: locks used in interrupt context must always be taken
    # with interrupts disabled in process context.
    for acquisition in report.acquisitions:
        if (acquisition.lock in report.irq_context_locks
                and not acquisition.irqsave
                and acquisition.function not in irq_functions):
            report.irq_violations.append(acquisition)
    report.order_violations.sort()
    report.irq_violations.sort(key=_acquisition_sort_key)
    report.double_acquires.sort(key=_acquisition_sort_key)
    return report


def analyse_locks(program: Program,
                  irq_functions: set[str] | None = None,
                  summaries: dict[str, FunctionSummary] | None = None,
                  consts: dict[str, FunctionFacts | None] | None = None,
                  ) -> LockReport:
    """Run the lock-safety analysis over every function of ``program``.

    When ``summaries`` is not supplied, the interprocedural summaries are
    computed here (points-to-resolved call graph, SCC-ordered sweep) so the
    standalone entry point reports exactly what the engine does.
    """
    if summaries is None:
        summaries = _build_summaries(program)
    facts = collect_lock_facts(program, summaries=summaries, consts=consts)
    return derive_report(facts.acquisitions, irq_functions,
                         interproc_acquires=facts.interproc_acquires,
                         leaks=facts.leaks)


def _build_summaries(program: Program) -> dict[str, FunctionSummary]:
    from ..blockstop.callgraph import build_direct_callgraph
    from ..blockstop.pointsto import FunctionPointerAnalysis, Precision
    from ..dataflow.interproc import solve_summaries

    graph, indirect_calls = build_direct_callgraph(program)
    pointsto = FunctionPointerAnalysis(program, Precision.TYPE_BASED)
    pointsto.collect()
    pointsto.resolve(graph, indirect_calls)
    return solve_summaries(program, graph)
