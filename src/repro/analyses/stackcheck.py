"""Future analysis (§3.1): stack-depth bounding.

Given the (BlockStop) call graph and a per-function stack-frame estimate, the
longest call chain must fit in the kernel's 4 or 8 kB stack.  Recursive
cycles cannot be bounded statically and are reported as needing a run-time
check, exactly as the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind
from ..blockstop.callgraph import CallGraph
from ..machine.interpreter import ctype_size
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk

#: Fixed per-call overhead (saved registers, return address), in bytes.
FRAME_OVERHEAD = 32
KERNEL_STACK_BYTES = 8 * 1024


@dataclass
class StackReport:
    """Result of the stack-depth analysis."""

    frame_sizes: dict[str, int] = field(default_factory=dict)
    max_depth: dict[str, int] = field(default_factory=dict)
    deepest_chain: list[str] = field(default_factory=list)
    recursive_functions: set[str] = field(default_factory=set)
    stack_limit: int = KERNEL_STACK_BYTES

    @property
    def worst_case(self) -> int:
        return max(self.max_depth.values(), default=0)

    @property
    def fits(self) -> bool:
        return self.worst_case <= self.stack_limit

    @property
    def runtime_checks_needed(self) -> set[str]:
        """Recursive functions need run-time stack checks."""
        return set(self.recursive_functions)


def frame_size(program: Program, func: ast.FuncDef) -> int:
    """Estimate one function's stack frame: locals + parameters + overhead.

    A ``stacksize(n)`` annotation overrides the estimate, mirroring the
    paper's "stack space annotations on each function".
    """
    annotation = program.function_annotations(func.name).get(AnnotationKind.STACKSIZE)
    if annotation is not None and annotation.args:
        arg = annotation.args[0]
        if isinstance(arg, ast.IntLit):
            return arg.value
    total = FRAME_OVERHEAD
    ftype = func.type.strip()
    for param in getattr(ftype, "params", []):
        total += max(ctype_size(param.type), 4)
    for node in walk(func.body):
        if isinstance(node, ast.Declaration) and not node.is_typedef:
            try:
                total += max(ctype_size(node.type), 4)
            except Exception:
                total += 4
    return total


def analyse_stack(program: Program, graph: CallGraph,
                  stack_limit: int = KERNEL_STACK_BYTES) -> StackReport:
    """Compute worst-case stack depth for every function."""
    report = StackReport(stack_limit=stack_limit)
    for name, func in program.functions.items():
        report.frame_sizes[name] = frame_size(program, func)

    # Depth-first longest-path with cycle detection.
    def depth_of(name: str, visiting: tuple[str, ...]) -> int:
        if name in visiting:
            report.recursive_functions.add(name)
            return 0
        cached = report.max_depth.get(name)
        if cached is not None:
            return cached
        own = report.frame_sizes.get(name, FRAME_OVERHEAD)
        deepest = 0
        for callee in sorted(graph.callees(name)):
            if callee not in report.frame_sizes:
                continue
            deepest = max(deepest, depth_of(callee, visiting + (name,)))
        total = own + deepest
        report.max_depth[name] = total
        return total

    for name in sorted(report.frame_sizes):
        depth_of(name, ())

    # Reconstruct the deepest chain for the report.
    if report.max_depth:
        current = max(report.max_depth, key=lambda n: report.max_depth[n])
        chain = [current]
        while True:
            callees = [c for c in graph.callees(current) if c in report.max_depth]
            if not callees:
                break
            # Sorted so ties break alphabetically, not by hash-seed order:
            # the rendered chain must be identical across runs.
            next_callee = max(sorted(callees), key=lambda n: report.max_depth[n])
            if report.max_depth[next_callee] >= report.max_depth[current]:
                break
            chain.append(next_callee)
            current = next_callee
        report.deepest_chain = chain
    return report
