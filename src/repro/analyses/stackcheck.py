"""Future analysis (§3.1): stack-depth bounding.

Given the (BlockStop) call graph and a per-function stack-frame estimate, the
longest call chain must fit in the kernel's 4 or 8 kB stack.  Recursive
cycles cannot be bounded statically and are reported as needing a run-time
check, exactly as the paper proposes.

Since the interprocedural summary framework this analysis no longer keeps a
private depth-first cycle detector: recursion is read off the shared SCC
condensation (:func:`repro.dataflow.interproc.condense_callgraph` — any
function in a non-trivial component or with a self loop), and the worst-case
depth is the ``stack_depth`` the bottom-up summary sweep already computed
(frame size + deepest bounded callee chain, callees-first over the
condensation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blockstop.callgraph import CallGraph
from ..dataflow.interproc import Condensation, condense_callgraph, solve_summaries
from ..dataflow.summaries import (
    FRAME_OVERHEAD,
    FunctionSummary,
    function_frame_size,
)
from ..machine.program import Program
from ..minic import ast_nodes as ast

KERNEL_STACK_BYTES = 8 * 1024


@dataclass
class StackReport:
    """Result of the stack-depth analysis."""

    frame_sizes: dict[str, int] = field(default_factory=dict)
    max_depth: dict[str, int] = field(default_factory=dict)
    deepest_chain: list[str] = field(default_factory=list)
    recursive_functions: set[str] = field(default_factory=set)
    stack_limit: int = KERNEL_STACK_BYTES

    @property
    def worst_case(self) -> int:
        return max(self.max_depth.values(), default=0)

    @property
    def fits(self) -> bool:
        return self.worst_case <= self.stack_limit

    @property
    def runtime_checks_needed(self) -> set[str]:
        """Recursive functions need run-time stack checks."""
        return set(self.recursive_functions)


def frame_size(program: Program, func: ast.FuncDef) -> int:
    """Estimate one function's stack frame: locals + parameters + overhead.

    A ``stacksize(n)`` annotation overrides the estimate, mirroring the
    paper's "stack space annotations on each function".  (The estimator
    itself lives in the shared summary domain; this is the historical
    entry point.)
    """
    return function_frame_size(program, func)


def analyse_stack(program: Program, graph: CallGraph,
                  stack_limit: int = KERNEL_STACK_BYTES,
                  summaries: dict[str, FunctionSummary] | None = None,
                  condensation: Condensation | None = None) -> StackReport:
    """Compute worst-case stack depth for every function.

    ``summaries``/``condensation`` may be supplied pre-built (the engine
    shares them with every other analysis); the standalone entry point
    derives them from the given call graph.
    """
    if condensation is None:
        condensation = condense_callgraph(graph)
    if summaries is None:
        summaries = solve_summaries(program, graph, condensation)

    report = StackReport(stack_limit=stack_limit)
    report.recursive_functions = {
        name for name in condensation.recursive_functions()
        if name in program.functions}
    for name in program.functions:
        summary = summaries.get(name)
        if summary is not None and summary.defined:
            report.frame_sizes[name] = summary.frame_size
            report.max_depth[name] = summary.stack_depth
        else:   # pragma: no cover - every defined function has a summary
            report.frame_sizes[name] = FRAME_OVERHEAD
            report.max_depth[name] = FRAME_OVERHEAD

    # Reconstruct the deepest chain for the report.
    if report.max_depth:
        current = max(sorted(report.max_depth),
                      key=lambda n: report.max_depth[n])
        chain = [current]
        while True:
            scc = set(condensation.members(current))
            callees = [c for c in graph.callees(current)
                       if c in report.max_depth and c not in scc]
            if not callees:
                break
            # Sorted so ties break alphabetically, not by hash-seed order:
            # the rendered chain must be identical across runs.
            next_callee = max(sorted(callees), key=lambda n: report.max_depth[n])
            if report.max_depth[next_callee] >= report.max_depth[current]:
                break
            chain.append(next_callee)
            current = next_callee
        report.deepest_chain = chain
    return report
