"""Future analysis (§3.1): error-code checking at call sites.

Functions whose negative return values are error codes (either annotated with
``errcodes(...)`` or detected by the "negative constant returns are errors"
heuristic the paper suggests) must have their results checked by callers.
A call whose result is discarded, stored and never compared afterwards, or
used in a position that cannot constitute a check, is reported.

Every use of a call's result is classified explicitly:

* ``condition`` — the result (possibly through ``!``/``-``/casts) controls a
  branch or appears in a comparison: checked.
* ``propagated`` — returned to the caller, which inherits the obligation.
* ``argument`` — passed to another function, which assumes the obligation.
* ``assigned`` — stored in a variable; a flow-sensitive pass (on the shared
  CFG + fixpoint solver, :mod:`repro.dataflow`) then requires a comparison
  *reachable from* the assignment.  A comparison of the same variable that
  executes before the call does not count, and neither does one that is
  killed by an intervening re-assignment.
* anything else is an unrecognized position and is reported as unchecked —
  nothing falls through to "checked" silently.

The scan is condition-aware (:mod:`repro.dataflow.consts`): a call inside a
constant-false arm never runs, so it creates no obligation at all, and the
assigned-then-compared solve skips infeasible edges.  Checks themselves may
be expressed through folded constants — ``switch (ret) { case -EINVAL: }``
and ``if (ret == <folded #define constant>)`` both credit the obligation
(the comparison crediting is structural; the error-*return* detection folds
``return 0 - EINVAL;``-style expressions through the constants evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind
from ..dataflow import COND, DECL, build_cfg, reachable_blocks, solve_forward
from ..dataflow.consts import refined_edges
from ..dataflow.context import AnalysisContext
from ..dataflow.domains import FunctionFacts, facts_of
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import iter_child_nodes, walk

_COMPARISONS = frozenset({"<", "<=", "==", "!=", ">", ">="})
_LOGICAL = frozenset({"&&", "||"})
#: Unary operators that preserve "is this error code zero?" information:
#: the kernel idioms ``if (!ret)`` and ``if (-ret)``.
_CHECK_UNARIES = frozenset({"!", "-"})

#: Abstract state of the assigned-then-compared pass: the set of
#: ``(variable, call_index)`` obligations still pending a comparison.
PendingState = frozenset


@dataclass(frozen=True)
class UncheckedCall:
    """A call whose error return value is never examined."""

    caller: str
    callee: str
    location: object
    reason: str


@dataclass
class ErrcheckReport:
    """Result of the error-code analysis."""

    error_returning: set[str] = field(default_factory=set)
    checked_calls: int = 0
    passed_to_callee: int = 0
    unchecked: list[UncheckedCall] = field(default_factory=list)

    @property
    def unchecked_count(self) -> int:
        return len(self.unchecked)


def find_error_returning_functions(
        program: Program,
        summaries: "dict[str, FunctionSummary] | None" = None) -> set[str]:
    """Functions that may return a negative error constant.

    Derived from the interprocedural summaries: a function is
    error-returning when it is annotated ``errcodes(...)``, returns a
    negative constant directly, or *propagates* a callee's error return
    (``return helper();``) — the summary's error-return set carries the
    codes bottom-up through the call graph, so wrappers inherit the
    obligation their helpers create instead of silently laundering it.
    """
    result: set[str] = set()
    for name in program.all_function_names():
        annotations = program.function_annotations(name)
        if annotations.has(AnnotationKind.ERRCODES):
            result.add(name)
    if summaries is None:
        from ..blockstop.callgraph import build_direct_callgraph
        from ..dataflow.interproc import solve_summaries

        graph, _ = build_direct_callgraph(program)
        summaries = solve_summaries(program, graph)
    result |= {name for name, summary in summaries.items()
               if summary.error_returns and summary.defined}
    return result


def check_error_returns(ctx: AnalysisContext) -> ErrcheckReport:
    """Check that error-returning calls have their results examined.

    This is the primary entry point, consuming the engine's shared
    :class:`repro.dataflow.AnalysisContext`.  The error-returning name set
    travels in ``ctx.extras["error_returning"]`` when pre-built (it is a
    whole-program artifact the engine shares); ``ctx.functions`` restricts
    the scan to a subset of defined functions so the engine can shard by
    translation unit.  The ``unchecked`` list comes out sorted by
    (function, location) so shard merge order never changes the rendered
    report.  ``ctx.facts`` supplies the per-function condition facts
    (solved on demand when absent): calls inside constant-false arms create
    no obligation at all, and the assigned-then-compared pass never
    propagates pending obligations across infeasible edges.
    """
    report = ErrcheckReport()
    error_returning = ctx.extras.get("error_returning")
    report.error_returning = (error_returning if error_returning is not None
                              else find_error_returning_functions(ctx.program))
    consts_cache = ctx.facts if ctx.facts is not None else {}
    for caller, func in ctx.program.functions_subset(ctx.functions):
        _scan_function(report, caller, func, consts_cache)
    report.unchecked.sort(key=_unchecked_sort_key)
    return report


def analyse_error_checks(program: Program,
                         error_returning: set[str] | None = None,
                         functions: list[str] | None = None,
                         consts: dict[str, FunctionFacts | None] | None = None,
                         ) -> ErrcheckReport:
    """Convenience wrapper for scripts and tests: loose artifacts in, one
    :class:`AnalysisContext` out, delegated to :func:`check_error_returns`."""
    extras: dict = {}
    if error_returning is not None:
        extras["error_returning"] = error_returning
    return check_error_returns(AnalysisContext(
        program=program, functions=functions, facts=consts, extras=extras))


def _unchecked_sort_key(call: UncheckedCall) -> tuple:
    return (call.caller, getattr(call.location, "filename", "") or "",
            getattr(call.location, "line", 0) or 0,
            getattr(call.location, "column", 0) or 0, call.callee)


# ---------------------------------------------------------------------------
# Usage classification
# ---------------------------------------------------------------------------

def _parent_map(root: ast.Node) -> dict[int, ast.Node]:
    parents: dict[int, ast.Node] = {}
    for node in walk(root):
        for child in iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _classify_usage(call: ast.Call,
                    parents: dict[int, ast.Node]) -> tuple[str, str | None]:
    """How the result of ``call`` is consumed: ``(kind, assigned_variable)``.

    Climbs through value-transparent positions (casts, ternary arms, the
    last expression of a comma) to the first consuming construct.
    """
    node: ast.Node = call
    while True:
        parent = parents.get(id(node))
        if parent is None:
            return "unknown", None
        if isinstance(parent, ast.ExprStmt):
            return "discarded", None
        if isinstance(parent, ast.Assign):
            if parent.value is node:
                if isinstance(parent.target, ast.Ident):
                    return "assigned", parent.target.name
                return "assigned-to-memory", None
            return "unknown", None      # call in lvalue position
        if isinstance(parent, ast.Initializer):
            climber: ast.Node | None = parent
            while isinstance(climber, ast.Initializer):
                climber = parents.get(id(climber))
            if isinstance(climber, ast.Declaration) and climber.name:
                return "assigned", climber.name
            return "unknown", None
        if isinstance(parent, (ast.If, ast.While, ast.DoWhile, ast.Switch)):
            return "condition", None    # the cond is the only expression child
        if isinstance(parent, ast.For):
            if node is parent.cond:
                return "condition", None
            return "discarded", None    # for-init / for-step value is unused
        if isinstance(parent, ast.Return):
            return "propagated", None
        if isinstance(parent, ast.Binary):
            if parent.op in _COMPARISONS or parent.op in _LOGICAL:
                return "condition", None
            return "unknown", None      # arithmetic on an unchecked error code
        if isinstance(parent, ast.Unary):
            if parent.op in _CHECK_UNARIES:
                node = parent           # !/- preserve the check information
                continue
            return "unknown", None
        if isinstance(parent, ast.Call):
            if any(argument is node for argument in parent.args):
                return "argument", None
            return "unknown", None      # used as the callee expression
        if isinstance(parent, ast.Cast):
            node = parent
            continue
        if isinstance(parent, ast.Conditional):
            if node is parent.cond:
                return "condition", None
            node = parent               # the value flows through the arm
            continue
        if isinstance(parent, ast.Comma):
            if parent.exprs and parent.exprs[-1] is node:
                node = parent
                continue
            return "discarded", None
        return "unknown", None


# ---------------------------------------------------------------------------
# Flow-sensitive assigned-then-compared pass
# ---------------------------------------------------------------------------

def _value_sources(expr: ast.Expr) -> list[ast.Expr]:
    """The expressions whose value can become the value of ``expr``.

    Mirrors the value-transparent climb of :func:`_classify_usage`, descending
    instead: casts, both ternary arms, and the last expression of a comma.
    """
    if isinstance(expr, ast.Cast):
        return _value_sources(expr.operand)
    if isinstance(expr, ast.Conditional):
        return _value_sources(expr.then) + _value_sources(expr.otherwise)
    if isinstance(expr, ast.Comma):
        return _value_sources(expr.exprs[-1]) if expr.exprs else []
    return [expr]


def _strip_check(expr: ast.Expr) -> ast.Expr:
    """Peel wrappers that preserve "is this error code zero?" information:
    casts, ``!ret``/``-ret`` (and ``!!ret``), and an embedded assignment —
    the kernel idiom ``if ((rc = f()) < 0)`` examines ``rc``."""
    while True:
        if isinstance(expr, ast.Cast):
            expr = expr.operand
        elif isinstance(expr, ast.Unary) and expr.op in _CHECK_UNARIES:
            expr = expr.operand
        elif isinstance(expr, ast.Assign) and isinstance(expr.target, ast.Ident):
            expr = expr.target
        else:
            return expr


def _credit(state: PendingState, expr: ast.Expr,
            checked: set[int] | None) -> PendingState:
    """Discharge the pending obligations of the variable ``expr`` examines."""
    target = _strip_check(expr)
    if not isinstance(target, ast.Ident):
        return state
    hits = frozenset(pair for pair in state if pair[0] == target.name)
    if not hits:
        return state
    if checked is not None:
        checked.update(index for _, index in hits)
    return state - hits


def _bind(state: PendingState, variable: str, value: ast.Expr,
          assigned: dict[int, int]) -> PendingState:
    """Kill ``variable``'s obligations, then gen new ones from ``value``."""
    state = frozenset(pair for pair in state if pair[0] != variable)
    for source in _value_sources(value):
        if isinstance(source, ast.Call) and id(source) in assigned:
            state = state | {(variable, assigned[id(source)])}
    return state


def _eval_expr(state: PendingState, expr: ast.Expr,
               assigned: dict[int, int],
               checked: set[int] | None) -> PendingState:
    """Step the state through ``expr`` in evaluation order (children first).

    Processing sub-expressions before the construct that consumes them makes
    ``if ((rc = f()) < 0)`` work: the assignment gens the obligation, then
    the enclosing comparison discharges it.
    """
    if isinstance(expr, ast.Assign):
        state = _eval_expr(state, expr.value, assigned, checked)
        if isinstance(expr.target, ast.Ident):
            return _bind(state, expr.target.name, expr.value, assigned)
        return _eval_expr(state, expr.target, assigned, checked)
    if isinstance(expr, ast.Binary):
        state = _eval_expr(state, expr.left, assigned, checked)
        state = _eval_expr(state, expr.right, assigned, checked)
        if expr.op in _COMPARISONS or expr.op in _LOGICAL:
            # Comparison operands are examined; && / || operands are
            # truth-tested (`if (rc && rc != -11)`), which is also a check.
            state = _credit(state, expr.left, checked)
            state = _credit(state, expr.right, checked)
        return state
    if isinstance(expr, ast.Conditional):
        state = _eval_expr(state, expr.cond, assigned, checked)
        state = _credit(state, expr.cond, checked)
        state = _eval_expr(state, expr.then, assigned, checked)
        state = _eval_expr(state, expr.otherwise, assigned, checked)
        return state
    for child in iter_child_nodes(expr):
        state = _eval_expr(state, child, assigned, checked)
    return state


def _apply_element(state: PendingState, element,
                   assigned: dict[int, int],
                   checked: set[int] | None = None) -> PendingState:
    """Step the pending-obligation state over one CFG element.

    ``assigned`` maps ``id(call_node) -> call_index`` for the calls whose
    results are stored in a variable.  With ``checked`` supplied this is the
    recording pass: discharged obligations land in that set.
    """
    if element.expr is None:
        return state
    state = _eval_expr(state, element.expr, assigned, checked)
    if element.kind == DECL and element.decl is not None and element.decl.name:
        state = _bind(state, element.decl.name, element.expr, assigned)
    if element.kind == COND:
        state = _credit(state, element.expr, checked)
    return state


def _join(a: PendingState, b: PendingState) -> PendingState:
    return a | b


def _scan_function(report: ErrcheckReport, caller: str,
                   func: ast.FuncDef,
                   consts_cache: dict[str, FunctionFacts | None]) -> None:
    call_nodes = [node for node in walk(func.body)
                  if (isinstance(node, ast.Call) and isinstance(node.func, ast.Ident)
                      and node.func.name in report.error_returning)]
    if not call_nodes:
        return      # skip the parent-map walk on the (common) irrelevant function
    func_consts = facts_of(func, cache=consts_cache)
    cfg = None
    if func_consts is not None and func_consts.prunes:
        # A call in a provably-dead arm can never run: it creates no
        # obligation (and is not "checked" either — it simply is not there).
        cfg = build_cfg(func)
        live = {id(node)
                for block in cfg.blocks if block.index in func_consts.reachable
                for element in block.elements if element.expr is not None
                for node in walk(element.expr)}
        call_nodes = [node for node in call_nodes if id(node) in live]
        if not call_nodes:
            return
    parents = _parent_map(func.body)
    calls: list[tuple[ast.Call, str, str | None]] = [
        (node, *_classify_usage(node, parents)) for node in call_nodes]

    assigned = {id(call): index for index, (call, kind, _) in enumerate(calls)
                if kind == "assigned"}
    checked_ids: set[int] = set()
    if assigned:
        cfg = cfg or build_cfg(func)

        def transfer(block, state: PendingState) -> PendingState:
            for element in block.elements:
                state = _apply_element(state, element, assigned)
            return state

        in_states = solve_forward(cfg, transfer, _join,
                                  entry_state=frozenset(),
                                  edge_refine=refined_edges(func_consts))
        for block, state in reachable_blocks(cfg, in_states):
            for element in block.elements:
                state = _apply_element(state, element, assigned, checked_ids)

    for index, (call, kind, variable) in enumerate(calls):
        callee = call.func.name
        if kind == "discarded":
            report.unchecked.append(UncheckedCall(
                caller=caller, callee=callee, location=call.location,
                reason="return value discarded"))
        elif kind == "assigned":
            if index in checked_ids:
                report.checked_calls += 1
            else:
                report.unchecked.append(UncheckedCall(
                    caller=caller, callee=callee, location=call.location,
                    reason=f"stored in {variable!r} but never compared"))
        elif kind == "unknown":
            report.unchecked.append(UncheckedCall(
                caller=caller, callee=callee, location=call.location,
                reason="used in a position that is not a check"))
        elif kind == "argument":
            report.checked_calls += 1
            report.passed_to_callee += 1
        else:   # condition, propagated, assigned-to-memory
            report.checked_calls += 1
