"""Future analysis (§3.1): error-code checking at call sites.

Functions whose negative return values are error codes (either annotated with
``errcodes(...)`` or detected by the "negative constant returns are errors"
heuristic the paper suggests) must have their results checked by callers.
A call whose result is discarded, or stored and never compared, is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.attrs import AnnotationKind
from ..machine.program import Program
from ..minic import ast_nodes as ast
from ..minic.visitor import walk


@dataclass(frozen=True)
class UncheckedCall:
    """A call whose error return value is never examined."""

    caller: str
    callee: str
    location: object
    reason: str


@dataclass
class ErrcheckReport:
    """Result of the error-code analysis."""

    error_returning: set[str] = field(default_factory=set)
    checked_calls: int = 0
    unchecked: list[UncheckedCall] = field(default_factory=list)

    @property
    def unchecked_count(self) -> int:
        return len(self.unchecked)


def find_error_returning_functions(program: Program) -> set[str]:
    """Functions that may return a negative error constant."""
    result: set[str] = set()
    for name in program.all_function_names():
        annotations = program.function_annotations(name)
        if annotations.has(AnnotationKind.ERRCODES):
            result.add(name)
    for name, func in program.functions.items():
        for node in walk(func.body):
            if isinstance(node, ast.Return) and node.value is not None:
                value = node.value
                if (isinstance(value, ast.Unary) and value.op == "-"
                        and isinstance(value.operand, ast.IntLit)
                        and value.operand.value > 0):
                    result.add(name)
                    break
    return result


def analyse_error_checks(program: Program,
                         error_returning: set[str] | None = None,
                         functions: list[str] | None = None) -> ErrcheckReport:
    """Check that error-returning calls have their results examined.

    ``error_returning`` may be supplied pre-built (it is a whole-program
    artifact the engine shares); ``functions`` restricts the scan to a subset
    of defined functions so the engine can shard by translation unit.
    """
    report = ErrcheckReport()
    report.error_returning = (error_returning if error_returning is not None
                              else find_error_returning_functions(program))
    for caller, func in program.functions_subset(functions):
        _scan_function(report, program, caller, func)
    return report


def _scan_function(report: ErrcheckReport, program: Program, caller: str,
                   func: ast.FuncDef) -> None:
    checked_names: set[str] = set()
    assigned: dict[str, ast.Call] = {}
    for node in walk(func.body):
        # result-compared-to-something counts as a check
        if isinstance(node, ast.Binary) and node.op in ("<", "<=", "==", "!=", ">", ">="):
            for side in (node.left, node.right):
                if isinstance(side, ast.Ident):
                    checked_names.add(side.name)
        if isinstance(node, ast.If) and isinstance(node.cond, ast.Ident):
            checked_names.add(node.cond.name)
    for node in walk(func.body):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Ident):
            continue
        callee = node.func.name
        if callee not in report.error_returning:
            continue
        usage = _call_usage(func, node)
        if usage == "discarded":
            report.unchecked.append(UncheckedCall(
                caller=caller, callee=callee, location=node.location,
                reason="return value discarded"))
        elif usage.startswith("assigned:"):
            variable = usage.split(":", 1)[1]
            if variable in checked_names:
                report.checked_calls += 1
            else:
                report.unchecked.append(UncheckedCall(
                    caller=caller, callee=callee, location=node.location,
                    reason=f"stored in {variable!r} but never compared"))
        else:
            report.checked_calls += 1


def _call_usage(func: ast.FuncDef, call: ast.Call) -> str:
    """How the result of ``call`` is used inside ``func``."""
    for node in walk(func.body):
        if isinstance(node, ast.ExprStmt) and node.expr is call:
            return "discarded"
        if isinstance(node, ast.Assign) and node.value is call:
            if isinstance(node.target, ast.Ident):
                return f"assigned:{node.target.name}"
            return "assigned-to-memory"
        if isinstance(node, ast.DeclStmt) and node.decl.init is not None \
                and node.decl.init.expr is call:
            return f"assigned:{node.decl.name}"
        if isinstance(node, (ast.If, ast.While)) and _contains(node.cond, call):
            return "checked-in-condition"
        if isinstance(node, ast.Return) and node.value is not None \
                and _contains(node.value, call):
            return "propagated"
        if isinstance(node, ast.Binary) and (_is(node.left, call) or _is(node.right, call)):
            return "checked-in-condition"
    return "checked-in-condition"


def _contains(root: ast.Expr, target: ast.Call) -> bool:
    return any(node is target for node in walk(root))


def _is(node: ast.Expr, target: ast.Call) -> bool:
    return node is target
