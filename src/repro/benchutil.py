"""Helpers for the pytest-benchmark suite in ``benchmarks/``.

Lives inside the package (rather than the benchmark conftest) so the
benchmark modules can import it under any pytest import mode —
``--import-mode=importlib`` does not put the benchmarks directory on
``sys.path``.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The abstract machine is deterministic, so a single round per benchmark is
    enough — repeated rounds would measure the Python interpreter, not the
    simulated kernel.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
