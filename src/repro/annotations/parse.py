"""Helpers for working with annotation expressions.

Annotation arguments are ordinary MiniC expressions parsed in the scope of the
annotated declaration.  The checkers need a few common manipulations:

* parsing a textual annotation (``"count(len)"``) into an :class:`Annotation`,
  used by the shared repository when importing externally supplied facts;
* extracting the free variables of an annotation argument, so Deputy can
  verify that a ``count(n)`` annotation on a parameter only mentions other
  parameters or globals that are in scope;
* a tiny census used by the conversion reports (how many annotations of each
  kind a program carries).
"""

from __future__ import annotations

from collections import Counter

from ..minic import ast_nodes as ast
from ..minic.errors import ParseError
from ..minic.parser import parse_expression
from ..minic.visitor import walk
from .attrs import (
    KEYWORD_TO_KIND,
    NULLARY_KINDS,
    Annotation,
    AnnotationKind,
    AnnotationSet,
)


def parse_annotation(text: str) -> Annotation:
    """Parse ``"count(len)"`` / ``"nullterm"`` style text into an Annotation."""
    text = text.strip()
    if "(" not in text:
        keyword = text
        if keyword not in KEYWORD_TO_KIND:
            raise ParseError(f"unknown annotation keyword {keyword!r}")
        kind = KEYWORD_TO_KIND[keyword]
        if kind not in NULLARY_KINDS:
            raise ParseError(f"annotation {keyword!r} requires arguments")
        return Annotation(kind=kind)
    keyword, _, rest = text.partition("(")
    keyword = keyword.strip()
    if keyword not in KEYWORD_TO_KIND:
        raise ParseError(f"unknown annotation keyword {keyword!r}")
    if not rest.endswith(")"):
        raise ParseError(f"malformed annotation {text!r}")
    body = rest[:-1].strip()
    args: list[ast.Expr] = []
    if body:
        for part in _split_args(body):
            args.append(parse_expression(part))
    return Annotation(kind=KEYWORD_TO_KIND[keyword], args=tuple(args))


def _split_args(body: str) -> list[str]:
    """Split an argument list on top-level commas."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    return parts


def annotation_free_variables(annotation: Annotation) -> set[str]:
    """Names referenced by the annotation's argument expressions."""
    names: set[str] = set()
    for arg in annotation.args:
        if isinstance(arg, ast.Node):
            for node in walk(arg):
                if isinstance(node, ast.Ident):
                    names.add(node.name)
    return names


def annotation_census(sets: list[AnnotationSet]) -> Counter:
    """Count annotations by kind across a list of annotation sets."""
    counts: Counter = Counter()
    for annotation_set in sets:
        for annotation in annotation_set:
            counts[annotation.kind] += 1
    return counts


def format_census(counts: Counter) -> str:
    """Human-readable rendering of an annotation census."""
    lines = []
    for kind, count in sorted(counts.items(), key=lambda kv: kv[0].name):
        lines.append(f"{kind.name.lower():>18}: {count}")
    return "\n".join(lines)


def has_blocking_annotation(annotations: AnnotationSet) -> bool:
    """Whether a function is annotated as (conditionally) blocking."""
    return (annotations.has(AnnotationKind.BLOCKING)
            or annotations.has(AnnotationKind.BLOCKING_IF_WAIT))
