"""The shared annotation vocabulary used by Deputy, CCount and BlockStop."""

from .attrs import (
    BLOCKSTOP_KINDS,
    DEPUTY_KINDS,
    FUTURE_KINDS,
    KEYWORD_TO_KIND,
    KIND_TO_KEYWORD,
    NULLARY_KINDS,
    Annotation,
    AnnotationKind,
    AnnotationSet,
    empty,
)
from .erase import erase_type, erase_unit, erased_source
from .parse import (
    annotation_census,
    annotation_free_variables,
    format_census,
    has_blocking_annotation,
    parse_annotation,
)

__all__ = [
    "Annotation", "AnnotationKind", "AnnotationSet", "empty",
    "KEYWORD_TO_KIND", "KIND_TO_KEYWORD", "NULLARY_KINDS",
    "DEPUTY_KINDS", "BLOCKSTOP_KINDS", "FUTURE_KINDS",
    "erase_type", "erase_unit", "erased_source",
    "parse_annotation", "annotation_census", "annotation_free_variables",
    "format_census", "has_blocking_annotation",
]
