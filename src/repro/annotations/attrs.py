"""Annotation attributes shared by Deputy, CCount and BlockStop.

The paper's central design point is a small vocabulary of *lightweight,
untrusted* annotations that extend ordinary C type declarations.  This module
defines that vocabulary.  Annotations are attached to declarators (pointer
types, parameters, functions) by the parser, and each analysis consumes the
subset it understands while ignoring the rest — exactly the "erasure
semantics" the paper requires.

The annotation argument expressions (for example the ``n`` in ``count(n)``)
are stored as unparsed AST expressions so the checkers can evaluate them in
the environment of the annotated declaration, which is what makes Deputy's
types *dependent*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Iterable, Iterator


class AnnotationKind(Enum):
    """All annotation kinds recognized by the toolchain."""

    # Deputy (type safety)
    COUNT = auto()          # count(n): pointer to >= n elements
    BOUND = auto()          # bound(lo, hi): explicit bounds expressions
    NULLTERM = auto()       # nullterm: null-terminated sequence
    NONNULL = auto()        # nonnull: never null
    OPT = auto()            # opt: may be null (checked before deref)
    SENTINEL = auto()       # sentinel: one-past-the-end pointer, not dereferenceable
    WHEN = auto()           # when(cond): union member active when cond holds
    TRUSTED = auto()        # trusted: skip checking, count as trusted code

    # BlockStop (blocking / interrupt discipline)
    BLOCKING = auto()           # function may sleep
    NOBLOCK = auto()            # function asserted never to sleep
    BLOCKING_IF_WAIT = auto()   # blocks iff its flags argument has GFP_WAIT set

    # Future analyses (section 3.1)
    ACQUIRES = auto()       # acquires(lock): function takes this lock
    RELEASES = auto()       # releases(lock): function releases this lock
    LOCKS_IRQ = auto()      # locks_irq(lock): lock also taken from IRQ context
    STACKSIZE = auto()      # stacksize(n): stack frame size hint
    ERRCODES = auto()       # errcodes(a, b, ...): possible error return codes


#: Mapping from surface keyword to annotation kind.
KEYWORD_TO_KIND: dict[str, AnnotationKind] = {
    "count": AnnotationKind.COUNT,
    "bound": AnnotationKind.BOUND,
    "nullterm": AnnotationKind.NULLTERM,
    "nonnull": AnnotationKind.NONNULL,
    "opt": AnnotationKind.OPT,
    "sentinel": AnnotationKind.SENTINEL,
    "when": AnnotationKind.WHEN,
    "trusted": AnnotationKind.TRUSTED,
    "blocking": AnnotationKind.BLOCKING,
    "noblock": AnnotationKind.NOBLOCK,
    "blocking_if_wait": AnnotationKind.BLOCKING_IF_WAIT,
    "acquires": AnnotationKind.ACQUIRES,
    "releases": AnnotationKind.RELEASES,
    "locks_irq": AnnotationKind.LOCKS_IRQ,
    "stacksize": AnnotationKind.STACKSIZE,
    "errcodes": AnnotationKind.ERRCODES,
}

KIND_TO_KEYWORD: dict[AnnotationKind, str] = {v: k for k, v in KEYWORD_TO_KIND.items()}

#: Kinds that take no arguments.
NULLARY_KINDS: frozenset[AnnotationKind] = frozenset({
    AnnotationKind.NULLTERM, AnnotationKind.NONNULL, AnnotationKind.OPT,
    AnnotationKind.SENTINEL, AnnotationKind.TRUSTED, AnnotationKind.BLOCKING,
    AnnotationKind.NOBLOCK, AnnotationKind.BLOCKING_IF_WAIT,
})

#: Kinds understood by each tool (used by erasure and by the repository).
DEPUTY_KINDS: frozenset[AnnotationKind] = frozenset({
    AnnotationKind.COUNT, AnnotationKind.BOUND, AnnotationKind.NULLTERM,
    AnnotationKind.NONNULL, AnnotationKind.OPT, AnnotationKind.SENTINEL,
    AnnotationKind.WHEN, AnnotationKind.TRUSTED,
})
BLOCKSTOP_KINDS: frozenset[AnnotationKind] = frozenset({
    AnnotationKind.BLOCKING, AnnotationKind.NOBLOCK,
    AnnotationKind.BLOCKING_IF_WAIT,
})
FUTURE_KINDS: frozenset[AnnotationKind] = frozenset({
    AnnotationKind.ACQUIRES, AnnotationKind.RELEASES, AnnotationKind.LOCKS_IRQ,
    AnnotationKind.STACKSIZE, AnnotationKind.ERRCODES,
})


@dataclass(frozen=True)
class Annotation:
    """A single annotation instance, e.g. ``count(len)``.

    ``args`` holds AST expression nodes (from :mod:`repro.minic.ast_nodes`);
    they are kept opaque here to avoid a circular import.
    """

    kind: AnnotationKind
    args: tuple[Any, ...] = ()

    @property
    def keyword(self) -> str:
        return KIND_TO_KEYWORD[self.kind]

    def __str__(self) -> str:
        if not self.args:
            return self.keyword
        rendered = ", ".join(_render_arg(a) for a in self.args)
        return f"{self.keyword}({rendered})"


def _render_arg(arg: Any) -> str:
    """Best-effort rendering of an annotation argument for display."""
    # The pretty printer renders real expressions; fall back to str().
    try:
        from ..minic.pretty import render_expression
        return render_expression(arg)
    except Exception:
        return str(arg)


@dataclass
class AnnotationSet:
    """An ordered collection of annotations attached to one declarator."""

    annotations: list[Annotation] = field(default_factory=list)

    def add(self, annotation: Annotation) -> None:
        self.annotations.append(annotation)

    def extend(self, annotations: Iterable[Annotation]) -> None:
        for annotation in annotations:
            self.add(annotation)

    def has(self, kind: AnnotationKind) -> bool:
        return any(a.kind is kind for a in self.annotations)

    def get(self, kind: AnnotationKind) -> Annotation | None:
        for annotation in self.annotations:
            if annotation.kind is kind:
                return annotation
        return None

    def all_of(self, kind: AnnotationKind) -> list[Annotation]:
        return [a for a in self.annotations if a.kind is kind]

    def only(self, kinds: frozenset[AnnotationKind]) -> "AnnotationSet":
        """Return a new set containing only annotations of the given kinds."""
        return AnnotationSet([a for a in self.annotations if a.kind in kinds])

    def without(self, kinds: frozenset[AnnotationKind]) -> "AnnotationSet":
        """Return a new set with annotations of the given kinds removed."""
        return AnnotationSet([a for a in self.annotations if a.kind not in kinds])

    def copy(self) -> "AnnotationSet":
        return AnnotationSet(list(self.annotations))

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self.annotations)

    def __len__(self) -> int:
        return len(self.annotations)

    def __bool__(self) -> bool:
        return bool(self.annotations)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.annotations)


def empty() -> AnnotationSet:
    """Return a fresh empty annotation set."""
    return AnnotationSet()
