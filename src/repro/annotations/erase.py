"""Annotation erasure.

The paper requires that annotations "can be ignored ('erased') by the
traditional build process": an annotated program with the annotations removed
is an ordinary program with identical behaviour.  This module implements
erasure both at the type level (stripping :class:`AnnotationSet` contents from
types, declarations and functions in place or on a copy) and at the source
level (the pretty printer's ``erase_annotations`` flag).
"""

from __future__ import annotations

from ..minic import ast_nodes as ast
from ..minic.ctypes import CArray, CFunc, CPointer, CStruct, CType
from ..minic.visitor import walk
from .attrs import AnnotationSet


def erase_type(ctype: CType, _seen: set[int] | None = None) -> None:
    """Remove all annotations reachable from ``ctype`` (in place)."""
    seen = _seen if _seen is not None else set()
    if id(ctype) in seen:
        return
    seen.add(id(ctype))
    if isinstance(ctype, CPointer):
        ctype.annotations = AnnotationSet()
        erase_type(ctype.target, seen)
    elif isinstance(ctype, CArray):
        erase_type(ctype.element, seen)
    elif isinstance(ctype, CStruct):
        ctype.annotations = AnnotationSet()
        for field in ctype.fields:
            field.annotations = AnnotationSet()
            erase_type(field.type, seen)
    elif isinstance(ctype, CFunc):
        ctype.annotations = AnnotationSet()
        for param in ctype.params:
            param.annotations = AnnotationSet()
            erase_type(param.type, seen)
        erase_type(ctype.return_type, seen)


def erase_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Remove every annotation from a translation unit (in place).

    Returns the same unit for convenience.
    """
    for node in walk(unit):
        if isinstance(node, ast.Declaration):
            node.annotations = AnnotationSet()
            erase_type(node.type)
        elif isinstance(node, ast.FuncDef):
            node.annotations = AnnotationSet()
            erase_type(node.type)
        elif isinstance(node, ast.Block):
            node.trusted = False
        elif isinstance(node, ast.Cast):
            node.trusted = False
        elif isinstance(node, ast.StructDecl):
            erase_type(node.ctype)
    return unit


def erased_source(unit: ast.TranslationUnit) -> str:
    """Render ``unit`` as plain MiniC with every annotation dropped."""
    from ..minic.pretty import render_unit
    return render_unit(unit, erase_annotations=True)
