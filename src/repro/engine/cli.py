"""Command-line interface for the unified analysis engine.

Usage (also installed as the ``repro-engine`` console script)::

    python -m repro.engine run --analyses deputy,blockstop --jobs 4
    python -m repro.engine run --analyses all --cache-dir .engine-cache \
        --format json --output report.json
    python -m repro.engine report report.json --format text
    python -m repro.engine list
"""

from __future__ import annotations

import argparse
import json
import sys

from ..blockstop.pointsto import Precision
from ..kernel.corpus import ALL_FILES, KERNEL_FILES
from .analyses import ANALYSIS_ORDER
from .core import AnalysisEngine, EngineReport


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine",
        description="Run the paper's analyses over the kernel corpus with "
                    "shared parse/call-graph/points-to artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="analyze the corpus in one batched pass")
    run.add_argument("--analyses", default="all",
                     help="comma-separated analyses, or 'all' (default). "
                          f"Known: {', '.join(ANALYSIS_ORDER)}")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes; >1 shards by translation unit")
    run.add_argument("--cache-dir", default=None,
                     help="directory for the on-disk artifact cache")
    run.add_argument("--precision", default="type_based",
                     choices=[p.name.lower() for p in Precision],
                     help="function-pointer points-to precision")
    run.add_argument("--format", default="text", choices=("text", "json"),
                     help="report format printed to stdout")
    run.add_argument("--output", default=None,
                     help="also write the JSON report to this file")
    run.add_argument("--include-user", action="store_true",
                     help="analyze user-level corpus files too, not just the kernel")
    run.add_argument("--fail-on-findings", action="store_true",
                     help="exit non-zero if any analysis reports findings "
                          "(for gating CI jobs; the smoke job omits it)")

    report = sub.add_parser("report", help="re-render a saved JSON report")
    report.add_argument("input", help="path to a report written by 'run --output'")
    report.add_argument("--format", default="text", choices=("text", "json"))

    sub.add_parser("list", help="list the registered analyses")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    engine = AnalysisEngine(
        files=ALL_FILES if args.include_user else KERNEL_FILES,
        precision=Precision[args.precision.upper()],
        cache_dir=args.cache_dir)
    try:
        names = engine.resolve_analyses(args.analyses)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    report = engine.run(analyses=names, jobs=args.jobs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    print(report.to_json() if args.format == "json" else report.render_text())
    if args.fail_on_findings and report.finding_count:
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read report {args.input!r}: {error}", file=sys.stderr)
        return 2
    report = EngineReport.from_dict(payload)
    print(report.to_json() if args.format == "json" else report.render_text())
    return 0


def _cmd_list() -> int:
    for name in ANALYSIS_ORDER:
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
