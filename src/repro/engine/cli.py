"""Command-line interface for the unified analysis engine.

Usage (also installed as the ``repro-engine`` console script)::

    python -m repro.engine run --analyses deputy,blockstop --jobs 4
    python -m repro.engine run --analyses all --cache-dir .engine-cache \
        --format json --output report.json
    python -m repro.engine report report.json --format text
    python -m repro.engine callgraph --witnesses
    python -m repro.engine cfg kernel/watchdog.c --function stats_sample_fast
    python -m repro.engine export-corpus ./corpus
    python -m repro.engine gen-corpus ./scale-corpus --scale 10
    python -m repro.engine serve --corpus-dir ./corpus --port 8571
    python -m repro.engine list
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..blockstop.pointsto import Precision
from ..dataflow.cfg import build_cfg
from ..dataflow.domains import FunctionFacts, facts_of
from ..kernel.build import parse_corpus
from ..kernel.corpus import ALL_FILES, KERNEL_FILES, CorpusFile
from ..minic import ast_nodes as ast
from ..minic.pretty import render_expression
from .analyses import ANALYSIS_ORDER, blocking_witness, summary_payload
from .core import SCHEDULER_MODES, AnalysisEngine, EngineReport


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine",
        description="Run the paper's analyses over the kernel corpus with "
                    "shared parse/call-graph/points-to artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="analyze the corpus in one batched pass")
    run.add_argument("--analyses", default="all",
                     help="comma-separated analyses, or 'all' (default). "
                          f"Known: {', '.join(ANALYSIS_ORDER)}")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes; >1 shards by translation unit, "
                          "0 auto-detects the machine's CPU count "
                          "(os.cpu_count())")
    run.add_argument("--scheduler", default="work-steal",
                     choices=SCHEDULER_MODES,
                     help="parallel scheduling strategy: 'work-steal' "
                          "(default) drives one persistent worker pool from "
                          "a dependency-counted ready queue with no "
                          "inter-wave barrier; 'wave' is the legacy "
                          "Pool.map-per-wave barrier mode; 'inline' runs "
                          "the work-steal task graph in-process (for "
                          "debugging/determinism checks)")
    run.add_argument("--chunk", type=int, default=None,
                     help="max tasks per work-steal dispatch batch "
                          "(default: the scheduler's MAX_CHUNK); recorded "
                          "in --bench-json entries for tuning sweeps")
    run.add_argument("--cache-dir", default=None,
                     help="directory for the on-disk artifact cache")
    run.add_argument("--precision", default="type_based",
                     choices=[p.name.lower() for p in Precision],
                     help="function-pointer points-to precision")
    run.add_argument("--format", default="text", choices=("text", "json"),
                     help="report format printed to stdout")
    run.add_argument("--output", default=None,
                     help="also write the JSON report to this file")
    run.add_argument("--include-user", action="store_true",
                     help="analyze user-level corpus files too, not just the kernel")
    run.add_argument("--fail-on-findings", action="store_true",
                     help="exit non-zero if any analysis reports findings "
                          "(for gating CI jobs; the smoke job omits it)")
    run.add_argument("--bench-json", default=None,
                     help="append {wall time, cache stats, summary stats} to "
                          "this JSON file (one entry per run; the CI smoke "
                          "step tracks the perf trajectory with it)")
    run.add_argument("--bench-tag", default=None,
                     help="label for the --bench-json entry (e.g. 'scale'); "
                          "untagged entries are treated as seed-corpus runs "
                          "by the discharge-baseline gate")
    run.add_argument("--bench-incremental", action="store_true",
                     help="also benchmark the incremental analyzer (cold "
                          "pass, then touch one TU and re-analyze); the "
                          "result lands in the --bench-json entry")
    run.add_argument("--cache-max-mb", type=float, default=None,
                     help="LRU-evict the on-disk artifact cache beyond this "
                          "size (requires --cache-dir)")
    run.add_argument("--corpus-dir", default=None,
                     help="analyze a corpus tree exported by 'export-corpus' "
                          "instead of the embedded sources")

    report = sub.add_parser("report", help="re-render a saved JSON report")
    report.add_argument("input", help="path to a report written by 'run --output'")
    report.add_argument("--format", default="text", choices=("text", "json"))

    callgraph = sub.add_parser(
        "callgraph",
        help="print the SCC condensation, per-function summaries, and a "
             "witness call chain for every may-block function")
    callgraph.add_argument("--precision", default="type_based",
                           choices=[p.name.lower() for p in Precision],
                           help="function-pointer points-to precision")
    callgraph.add_argument("--include-user", action="store_true",
                           help="include user-level corpus files")
    callgraph.add_argument("--cache-dir", default=None,
                           help="directory for the on-disk artifact cache")
    callgraph.add_argument("--format", default="text", choices=("text", "json"))
    callgraph.add_argument("--function", default=None,
                           help="restrict the summary/witness listing to one "
                                "function")

    cfg = sub.add_parser(
        "cfg",
        help="dump a translation unit's control-flow graphs: basic blocks, "
             "edge labels, per-edge condition facts, and infeasible-edge "
             "marks from the constant-propagation lattice")
    cfg.add_argument("file",
                     help="a corpus translation unit (e.g. kernel/watchdog.c) "
                          "or a MiniC source file on disk")
    cfg.add_argument("--function", default=None,
                     help="restrict the dump to one function")
    cfg.add_argument("--format", default="text", choices=("text", "json"))

    export = sub.add_parser(
        "export-corpus",
        help="write the embedded corpus to a directory tree (plus a "
             "MANIFEST.json recording link order) for 'serve' to watch")
    export.add_argument("directory", help="target directory")
    export.add_argument("--include-user", action="store_true",
                        help="export user-level corpus files too")

    gen = sub.add_parser(
        "gen-corpus",
        help="generate a synthetic kernel-shaped corpus at --scale N "
             "(~N× the embedded corpus); ingest is resumable — files whose "
             "content hash already matches MANIFEST.json are skipped")
    gen.add_argument("directory", help="target directory")
    gen.add_argument("--scale", type=int, default=10,
                     help="corpus size multiplier (default 10 ≈ 100 TUs / "
                          "~2k functions)")
    gen.add_argument("--seed", type=int, default=0,
                     help="generator seed (same seed ⇒ same corpus)")

    serve = sub.add_parser(
        "serve",
        help="run the always-on analysis service: a file watcher drives "
             "incremental re-analysis behind an HTTP JSON API")
    serve.add_argument("--corpus-dir", default=None,
                       help="corpus tree to watch (from 'export-corpus'); "
                            "without it the embedded corpus is served and "
                            "only POST /analyze re-analyzes")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8571,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--precision", default="type_based",
                       choices=[p.name.lower() for p in Precision])
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the dirty-SCC re-solve; "
                            "0 auto-detects the machine's CPU count")
    serve.add_argument("--poll-seconds", type=float, default=0.5,
                       help="corpus poll interval")
    serve.add_argument("--store-dir", default=None,
                       help="directory for the persistent warm-start store; "
                            "a restarted serve over an unchanged corpus "
                            "re-solves ~0 SCCs from it")
    serve.add_argument("--store-max-mb", type=float, default=None,
                       help="LRU-evict the warm-start store beyond this "
                            "size (requires --store-dir)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")

    sub.add_parser("list", help="list the registered analyses")
    return parser


def _run_files(args: argparse.Namespace) -> "tuple[CorpusFile, ...]":
    if getattr(args, "corpus_dir", None):
        from ..service.watcher import load_corpus_dir

        return load_corpus_dir(args.corpus_dir)
    return ALL_FILES if args.include_user else KERNEL_FILES


def _cmd_run(args: argparse.Namespace) -> int:
    files = _run_files(args)
    precision = Precision[args.precision.upper()]
    engine = AnalysisEngine(
        files=files,
        precision=precision,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        tolerant=True)
    try:
        names = engine.resolve_analyses(args.analyses)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    report = engine.run(analyses=names, jobs=args.jobs,
                        scheduler=args.scheduler, chunk=args.chunk)
    incremental = (_bench_incremental(files, precision)
                   if args.bench_incremental else None)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    if args.bench_json:
        _append_bench_entry(args.bench_json, report, incremental=incremental,
                            tag=args.bench_tag)
    print(report.to_json() if args.format == "json" else report.render_text())
    if args.fail_on_findings and report.finding_count:
        return 1
    return 0


def _bench_incremental(files: "tuple[CorpusFile, ...]",
                       precision: Precision) -> dict:
    """Time the incremental analyzer: cold pass, one-TU touch, warm restart.

    The touch appends a fresh no-op function to the last translation unit —
    a body-level edit that must dirty exactly one SCC (the new singleton)
    and re-parse exactly one unit; the entry records how far the pass
    actually was from that ideal alongside its wall time.

    The warm-restart leg simulates killing and restarting ``serve`` over an
    unchanged corpus: a *fresh* analyzer pointed at the persistent store the
    cold pass filled must re-solve 0 consts/SCCs/shards.
    """
    import dataclasses
    import tempfile
    import time

    from ..service.incremental import IncrementalAnalyzer
    from ..service.store import PersistentStore

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = PersistentStore(tmp)
        analyzer = IncrementalAnalyzer(files=files, precision=precision,
                                       store=store)
        start = time.perf_counter()
        analyzer.analyze()
        cold_seconds = time.perf_counter() - start
        touched = dataclasses.replace(
            files[-1],
            source=files[-1].source
            + "\nint __bench_touch(void) { return 0; }\n")
        start = time.perf_counter()
        analyzer.analyze(files[:-1] + (touched,))
        touch_seconds = time.perf_counter() - start
        stats = analyzer.last_stats

        restarted = IncrementalAnalyzer(files=files, precision=precision,
                                        store=store)
        start = time.perf_counter()
        restarted.analyze()
        warm_seconds = time.perf_counter() - start
        warm = restarted.last_stats
        store.close()
    return {
        "cold_seconds": round(cold_seconds, 4),
        "touch_seconds": round(touch_seconds, 4),
        "parsed_units": stats.parsed_units,
        "dirty_sccs": stats.dirty_sccs,
        "sccs_reused": stats.sccs_reused,
        "shards_rerun": stats.shards_rerun,
        "full_reparse": stats.full_reparse,
        "warm_restart": {
            "seconds": round(warm_seconds, 4),
            "consts_solved": warm.consts_solved,
            "dirty_sccs": warm.dirty_sccs,
            "shards_rerun": warm.shards_rerun,
            "store_hits": warm.store_hits,
        },
    }


def _append_bench_entry(path: str, report: EngineReport,
                        incremental: dict | None = None,
                        tag: str | None = None) -> None:
    """Append one run's perf entry to the benchmark-trajectory JSON file."""
    entries: list[dict] = []
    baseline = None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entries = list(payload.get("runs", []))
        baseline = payload.get("deputy_discharge_baseline")
        relational_baseline = payload.get("deputy_relational_baseline")
    except (OSError, json.JSONDecodeError):
        relational_baseline = None
    entry = {
        "elapsed_seconds": round(report.elapsed_seconds, 4),
        "jobs": report.jobs,
        "parallel": report.parallel,
        "corpus_files": len(report.corpus_files),
        "finding_count": report.finding_count,
        "cache_stats": report.cache_stats,
        "summary_stats": report.summary_stats,
    }
    if tag is not None:
        entry["tag"] = tag
    if report.perf:
        entry["perf"] = report.perf
        scheduler = report.perf.get("scheduler", {})
        if "max_chunk" in scheduler:
            entry["chunk"] = scheduler["max_chunk"]
        if "worker_idle_ratio" in scheduler:
            entry["worker_idle_ratio"] = scheduler["worker_idle_ratio"]
    deputy = report.analyses.get("deputy")
    if deputy is not None:
        entry["deputy_checks_discharged"] = deputy.metrics.get(
            "obligations_static", 0)
        entry["deputy_checks_total"] = deputy.metrics.get(
            "obligations_total", 0)
        entry["deputy_checks_interval"] = deputy.metrics.get(
            "checks_interval", 0)
        entry["deputy_checks_relational"] = deputy.metrics.get(
            "checks_relational", 0)
    if incremental is not None:
        entry["incremental"] = incremental
    entries.append(entry)
    hits = sum(1 for entry in entries
               if entry.get("summary_stats", {}).get("cache_hit"))
    payload = {
        "schema": "repro-engine-bench/1",
        "runs": entries,
        "summary_cache_hit_rate": round(hits / len(entries), 4),
    }
    # The discharge baselines are checked-in floors maintained by
    # scripts/check_discharge_baseline.py; appending runs must not drop them.
    if baseline is not None:
        payload["deputy_discharge_baseline"] = baseline
    if relational_baseline is not None:
        payload["deputy_relational_baseline"] = relational_baseline
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read report {args.input!r}: {error}", file=sys.stderr)
        return 2
    report = EngineReport.from_dict(payload)
    print(report.to_json() if args.format == "json" else report.render_text())
    return 0


def _cmd_callgraph(args: argparse.Namespace) -> int:
    engine = AnalysisEngine(
        files=ALL_FILES if args.include_user else KERNEL_FILES,
        precision=Precision[args.precision.upper()],
        cache_dir=args.cache_dir)
    artifacts = engine.artifacts()
    condensation = artifacts.condensation
    names = sorted(artifacts.summaries)
    if args.function is not None:
        if args.function not in artifacts.summaries:
            print(f"error: unknown function {args.function!r}", file=sys.stderr)
            return 2
        names = [args.function]

    if args.format == "json":
        payload = {
            "schema": "repro-engine-callgraph/1",
            "functions": len(artifacts.summaries),
            "sccs": [list(scc) for scc in condensation.sccs],
            "waves": [[list(condensation.sccs[i]) for i in wave]
                      for wave in condensation.waves],
            "recursive": sorted(condensation.recursive_functions()),
            "summaries": {name: summary_payload(artifacts, name)
                          for name in names},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    lines = ["== call-graph condensation =="]
    lines.append(f"{len(artifacts.summaries)} functions in "
                 f"{len(condensation.sccs)} SCCs over "
                 f"{len(condensation.waves)} bottom-up waves")
    recursive = sorted(condensation.recursive_functions())
    if recursive:
        lines.append(f"recursive: {', '.join(recursive)}")
        for scc in condensation.sccs:
            if len(scc) > 1:
                lines.append(f"  cycle: {' <-> '.join(scc)}")
    lines.append("")
    lines.append("-- function summaries --")
    for name in names:
        summary = artifacts.summaries[name]
        if not summary.defined:
            continue
        lines.append(f"  {name}: {summary.describe()}")
    lines.append("")
    lines.append("-- may-block witnesses --")
    for name in names:
        summary = artifacts.summaries[name]
        if not (summary.defined and summary.may_block):
            continue
        lines.append(f"  {name}: {' -> '.join(blocking_witness(artifacts, name))}")
    print("\n".join(lines))
    return 0


def _resolve_cfg_unit(spec: str) -> "tuple[object, list[str]] | None":
    """Resolve the ``cfg`` subcommand's file argument to (program, names).

    A corpus filename parses the whole corpus (kernel files reference each
    other's types); an on-disk path parses standalone.
    """
    corpus = {f.filename: f for f in ALL_FILES}
    if spec in corpus:
        files = KERNEL_FILES if corpus[spec].kernel else ALL_FILES
        program = AnalysisEngine(files=files).program()
        names = [decl.name for unit in program.units
                 if unit.filename == spec
                 for decl in unit.decls if isinstance(decl, ast.FuncDef)]
        return program, names
    path = Path(spec)
    if not path.is_file():
        return None
    program = parse_corpus((CorpusFile(spec, path.read_text()),))
    return program, list(program.functions)


def _render_octagon_row(row: tuple) -> str:
    """``((x, sx), (y, sy), c)`` as the constraint ``±x ∓ y <= c``."""
    (x, sx), (y, sy), c = row
    first = f"-{x}" if sx < 0 else x
    second = f"+ {y}" if sy < 0 else f"- {y}"
    return f"{first} {second} <= {c}"


def _edge_pruned_by(consts: "FunctionFacts | None",
                    key: tuple[int, int]) -> "str | None":
    """Which domain proved an infeasible edge dead (registry order)."""
    if consts is None or key not in consts.infeasible:
        return None
    if key in getattr(consts, "interval_pruned", frozenset()):
        return "intervals"
    if key in getattr(consts, "octagon_pruned", frozenset()):
        return "octagons"
    return "consts"


def _cfg_payload(func: ast.FuncDef,
                 consts: "FunctionFacts | None") -> dict:
    """One function's CFG + refinement facts, in a render-friendly shape."""
    cfg = build_cfg(func)
    in_envs = dict(consts.in_envs) if consts is not None else {}
    interval_envs = dict(consts.interval_envs) if consts is not None else {}
    octagon_envs = (dict(getattr(consts, "octagon_envs", None) or {})
                    if consts is not None else {})
    edge_facts = dict(consts.edge_facts) if consts is not None else {}
    octagon_edge_facts = (dict(getattr(consts, "octagon_edge_facts", None)
                               or {}) if consts is not None else {})
    infeasible = consts.infeasible if consts is not None else frozenset()
    reachable = (consts.reachable if consts is not None
                 else cfg.reachable())
    blocks = []
    for block in cfg.blocks:
        tags = []
        if block.index == cfg.entry:
            tags.append("entry")
        if block.index == cfg.exit:
            tags.append("exit")
        if block.index not in reachable:
            tags.append("unreachable")
        blocks.append({
            "index": block.index,
            "tags": tags,
            "consts": dict(in_envs.get(block.index, ())),
            "intervals": {
                name: list(bounds)
                for name, bounds in interval_envs.get(block.index, ())},
            "octagons": [_render_octagon_row(row)
                         for row in octagon_envs.get(block.index, ())],
            "elements": [
                {"kind": element.kind,
                 "expr": (render_expression(element.expr)
                          if element.expr is not None else None)}
                for element in block.elements],
            "edges": [
                {"target": edge.target,
                 "label": edge.label,
                 "facts": dict(edge_facts.get((block.index, pos), ())),
                 "relations": [
                     _render_octagon_row(row) for row in
                     octagon_edge_facts.get((block.index, pos), ())],
                 "infeasible": (block.index, pos) in infeasible,
                 "pruned_by": _edge_pruned_by(consts, (block.index, pos))}
                for pos, edge in enumerate(block.succs)],
        })
    return {"function": func.name, "entry": cfg.entry, "exit": cfg.exit,
            "blocks": blocks}


def _render_cfg_text(payload: dict) -> list[str]:
    lines = [f"-- {payload['function']} "
             f"(entry {payload['entry']}, exit {payload['exit']}) --"]
    for block in payload["blocks"]:
        tag = f" [{', '.join(block['tags'])}]" if block["tags"] else ""
        lines.append(f"block {block['index']}{tag}")
        if block["consts"]:
            facts = ", ".join(f"{name}={value}"
                              for name, value in sorted(block["consts"].items()))
            lines.append(f"    consts: {facts}")
        if block.get("intervals"):
            def bound(value, infinity):
                return infinity if value is None else str(value)
            facts = ", ".join(
                f"{name}=[{bound(lo, '-inf')}, {bound(hi, '+inf')}]"
                for name, (lo, hi) in sorted(block["intervals"].items()))
            lines.append(f"    intervals: {facts}")
        if block.get("octagons"):
            lines.append(f"    octagons: {'; '.join(block['octagons'])}")
        for element in block["elements"]:
            rendered = element["expr"] if element["expr"] is not None else "(void)"
            lines.append(f"    {element['kind']}: {rendered}")
        for edge in block["edges"]:
            label = f" [{edge['label']}]" if edge["label"] else ""
            facts = ""
            if edge["facts"]:
                facts = " {" + ", ".join(
                    f"{name}={value}"
                    for name, value in sorted(edge["facts"].items())) + "}"
            if edge.get("relations"):
                facts += " <" + "; ".join(edge["relations"]) + ">"
            mark = (f"  INFEASIBLE (by {edge['pruned_by']})"
                    if edge["infeasible"] else "")
            lines.append(f"    -> {edge['target']}{label}{facts}{mark}")
    return lines


def _cmd_cfg(args: argparse.Namespace) -> int:
    resolved = _resolve_cfg_unit(args.file)
    if resolved is None:
        print(f"error: {args.file!r} is neither a corpus translation unit "
              "nor a readable file", file=sys.stderr)
        return 2
    program, names = resolved
    if args.function is not None:
        if args.function not in names:
            known = ", ".join(names)
            print(f"error: unknown function {args.function!r} in "
                  f"{args.file} (known: {known})", file=sys.stderr)
            return 2
        names = [args.function]

    payloads = []
    for name in names:
        func = program.functions.get(name)
        if func is None:
            continue
        payloads.append(_cfg_payload(func, facts_of(func)))

    if args.format == "json":
        print(json.dumps({"schema": "repro-engine-cfg/2", "file": args.file,
                          "functions": payloads}, indent=2, sort_keys=True))
        return 0
    lines = [f"== control-flow graphs: {args.file} =="]
    for payload in payloads:
        lines.append("")
        lines.extend(_render_cfg_text(payload))
    print("\n".join(lines))
    return 0


def _cmd_export_corpus(args: argparse.Namespace) -> int:
    from ..service.watcher import export_corpus

    files = ALL_FILES if args.include_user else KERNEL_FILES
    manifest = export_corpus(args.directory, files)
    print(f"exported {len(files)} corpus files to {args.directory} "
          f"({manifest.name} records link order)")
    return 0


def _cmd_gen_corpus(args: argparse.Namespace) -> int:
    from ..kernel.synth import generate_corpus, write_corpus

    try:
        files = generate_corpus(scale=args.scale, seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stats = write_corpus(args.directory, files,
                         scale=args.scale, seed=args.seed)
    print(f"generated scale-{args.scale} corpus in {args.directory}: "
          f"{stats['total']} files "
          f"({stats['written']} written, {stats['skipped']} up to date)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.daemon import serve

    serve(corpus_dir=args.corpus_dir, host=args.host, port=args.port,
          precision=Precision[args.precision.upper()],
          poll_seconds=args.poll_seconds, jobs=args.jobs,
          store_dir=args.store_dir, store_max_mb=args.store_max_mb,
          verbose=args.verbose)
    return 0


def _cmd_list() -> int:
    for name in ANALYSIS_ORDER:
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "callgraph":
        return _cmd_callgraph(args)
    if args.command == "cfg":
        return _cmd_cfg(args)
    if args.command == "export-corpus":
        return _cmd_export_corpus(args)
    if args.command == "gen-corpus":
        return _cmd_gen_corpus(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
