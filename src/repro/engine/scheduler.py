"""Dependency-counted work-stealing task scheduler for the engine.

The wave-barrier scheduler (PR 3) solved each dependency *wave* of the SCC
condensation with one ``Pool.map`` and waited for the whole wave before
starting the next — a single straggler left every other worker idle, and
each phase (constant facts, summaries, checker shards) forked its own pool.
This module replaces that with a ready-queue executor:

* the engine submits one :class:`Task` per unit of work with its explicit
  dependency edges (``deps``).  Each task carries a pending-dependency
  counter; completing a task decrements its dependents and enqueues every
  newly-ready task — there is no inter-wave barrier, so a long chain and a
  pile of independent leaves drain concurrently;
* one pool of forked workers persists across *all* phases of a run.  Each
  worker owns an inbox queue and pulls continuously; the parent assigns
  ready tasks to idle workers the moment either appears, and batches large
  ready backlogs into chunks so per-task dispatch overhead stays amortized
  (the same trick ``Pool.map``'s chunksize plays, without the barrier);
* ``broadcast()`` pushes a (tag, value) pair into every worker's inbox —
  inbox FIFO order guarantees a worker sees the broadcast before any task
  dispatched after it, which is how the checker-shard phase ships the
  merged summaries once per worker instead of once per shard;
* results are keyed by task id and merged by the *caller* in a
  deterministic order, so completion order never influences any report —
  serial, scrambled-inline and parallel runs are byte-identical by
  construction (``InlineExecutor(pick=...)`` exists to assert exactly
  that in tests).

:class:`TaskGraph` is the pure scheduling core (dependency counters and the
FIFO ready queue) so its starvation behavior can be tested without
processes; the executors wrap it with real or inline execution.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable

#: handler(kind, payload, state) -> result; ``state`` is the worker-local
#: broadcast store ({tag: value}), empty until a broadcast arrives.
TaskHandler = Callable[[str, Any, dict], Any]

#: Dispatch at most this many tasks per worker message, however long the
#: ready backlog grows.
MAX_CHUNK = 16

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 10.0


def resolve_jobs(jobs: int) -> int:
    """``--jobs 0`` means "use every core": resolve it to ``os.cpu_count()``."""
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Worker processes beyond this add fork, copy-on-write and IPC cost while
    time-slicing the same cores — the engine clamps its pool size here, so
    ``--jobs 4`` on a 1-core container degrades to the inline executor
    instead of paying four-way oversubscription for nothing.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class Task:
    """One schedulable unit of work.

    ``payload_fn`` late-binds the payload: it runs in the parent at dispatch
    time with the results of every completed task, so a task can ship data
    produced by its dependencies (an SCC task ships its callees' solved
    summaries) without the caller materializing it up front.
    """

    id: str
    kind: str
    deps: tuple[str, ...] = ()
    payload: Any = None
    payload_fn: Callable[[dict], Any] | None = None
    #: The wave index this task would run in under the barrier scheduler
    #: (-1 = the pre-wave phase, -2 = the post-wave phase); only used for
    #: the barrier-vs-queue estimate in the stats.
    wave: int = 0

    def bind(self, results: dict) -> Any:
        return self.payload_fn(results) if self.payload_fn is not None else self.payload


@dataclass
class SchedulerStats:
    """What the executor did, and how busy it kept the pool.

    Besides the raw wall numbers (which depend on how many cores the host
    really has), the stats carry each task's measured cost, dependencies
    and barrier wave — enough to *replay* the run under both schedules
    deterministically.  ``barrier_span_estimate`` / ``queue_span_estimate``
    are those replays at ``sim_jobs`` workers: the structural
    barrier-vs-ready-queue comparison, independent of host core count.
    """

    jobs: int = 1
    #: Dispatch batch cap in effect (``--chunk``, default ``MAX_CHUNK``).
    max_chunk: int = MAX_CHUNK
    tasks: int = 0
    chunks: int = 0
    broadcasts: int = 0
    max_ready: int = 0
    busy_seconds: float = 0.0
    span_seconds: float = 0.0
    #: Per-task busy time keyed by id, for the schedule replays.
    task_busy: dict[str, float] = field(default_factory=dict)
    task_wave: dict[str, int] = field(default_factory=dict)
    task_deps: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: run() call the task belonged to; replays never move work across
    #: rounds (the real executor drains each round fully, too).
    task_round: dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    #: Width for the schedule replays; defaults to the pool width, the
    #: engine pins it to the *requested* --jobs so a clamped/inline run
    #: still reports the comparison the user asked about.
    sim_jobs: int | None = None

    @property
    def idle_ratio(self) -> float:
        """Fraction of pool capacity spent waiting, 0.0 (saturated) to 1.0."""
        capacity = self.jobs * self.span_seconds
        if capacity <= 0.0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.busy_seconds / capacity))

    def _width(self) -> int:
        return max(1, self.sim_jobs or self.jobs)

    def barrier_span_estimate(self) -> float:
        """Replayed wall time of the wave-barrier schedule over these tasks.

        Waves run one after another (that is the barrier); within a wave the
        load-balance lower bound ``max(longest task, total work / width)``
        is taken — generous to the barrier scheduler, which also pays
        per-wave pool latency this estimate ignores.
        """
        width = self._width()
        by_wave: dict[tuple[int, int], list[float]] = {}
        for task_id, busy in self.task_busy.items():
            key = (self.task_round.get(task_id, 0),
                   self.task_wave.get(task_id, 0))
            by_wave.setdefault(key, []).append(busy)
        total = 0.0
        for key in sorted(by_wave):
            times = by_wave[key]
            total += max(max(times), sum(times) / width)
        return total

    def queue_span_estimate(self) -> float:
        """Replayed wall time of the ready-queue schedule over these tasks.

        Event-driven list scheduling at ``sim_jobs`` workers over the
        recorded dependency graph and per-task costs, one round at a time —
        the deterministic twin of what the executor actually did, at
        whatever width the host couldn't provide."""
        width = self._width()
        total = 0.0
        for round_no in range(max(self.rounds, 1)):
            ids = {task_id for task_id, busy in self.task_busy.items()
                   if self.task_round.get(task_id, 0) == round_no}
            if not ids:
                continue
            graph = TaskGraph([
                Task(id=task_id, kind="sim",
                     deps=tuple(dep for dep
                                in self.task_deps.get(task_id, ())
                                if dep in ids))
                for task_id in sorted(ids)])
            events: list[tuple[float, str]] = []
            free = width
            now = 0.0
            while not graph.done:
                while free and graph.ready:
                    (task,) = graph.pop_ready(1)
                    free -= 1
                    heapq.heappush(events,
                                   (now + self.task_busy.get(task.id, 0.0),
                                    task.id))
                if not events:
                    break
                now, task_id = heapq.heappop(events)
                free += 1
                graph.complete(task_id)
            total += now
        return total

    def to_dict(self) -> dict:
        barrier = self.barrier_span_estimate()
        queue = self.queue_span_estimate()
        return {
            "jobs": self.jobs,
            "sim_jobs": self._width(),
            "max_chunk": self.max_chunk,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "broadcasts": self.broadcasts,
            "max_ready": self.max_ready,
            "busy_seconds": round(self.busy_seconds, 4),
            "span_seconds": round(self.span_seconds, 4),
            "worker_idle_ratio": round(self.idle_ratio, 4),
            "barrier_span_estimate": round(barrier, 4),
            "queue_span_estimate": round(queue, 4),
            "barrier_vs_queue_delta": round(barrier - queue, 4),
        }


class TaskGraph:
    """The pure ready-queue core: dependency counters, FIFO among ready.

    Deterministic by construction — the ready order is submission order
    filtered by readiness, and :meth:`complete` appends newly-ready tasks
    in the dependents' submission order.
    """

    def __init__(self, tasks: "list[Task]") -> None:
        self.tasks: dict[str, Task] = {}
        self.pending: dict[str, int] = {}
        self.dependents: dict[str, list[str]] = {}
        self.ready: list[str] = []
        self.outstanding = 0
        for task in tasks:
            if task.id in self.tasks:
                raise ValueError(f"duplicate task id {task.id!r}")
            self.tasks[task.id] = task
        for task in tasks:
            missing = [dep for dep in task.deps if dep not in self.tasks]
            if missing:
                raise ValueError(
                    f"task {task.id!r} depends on unknown task(s) {missing}")
            self.pending[task.id] = len(task.deps)
            for dep in task.deps:
                self.dependents.setdefault(dep, []).append(task.id)
            self.outstanding += 1
            if not task.deps:
                self.ready.append(task.id)

    def pop_ready(self, limit: int, position: int = 0) -> list[Task]:
        """Take up to ``limit`` ready tasks starting at ``position``."""
        taken = self.ready[position:position + limit]
        del self.ready[position:position + limit]
        return [self.tasks[task_id] for task_id in taken]

    def complete(self, task_id: str) -> list[str]:
        """Mark ``task_id`` done; returns the ids that just became ready.

        Newly-ready tasks jump to the *front* of the ready queue: a task
        unblocked by a completion sits on a dependency chain, and chains
        are the critical path — leaves can fill the remaining slots any
        time, but delaying a chain link delays everything behind it.
        """
        self.outstanding -= 1
        newly_ready: list[str] = []
        for dependent in self.dependents.get(task_id, ()):
            self.pending[dependent] -= 1
            if self.pending[dependent] == 0:
                newly_ready.append(dependent)
        self.ready[0:0] = newly_ready
        return newly_ready

    @property
    def done(self) -> bool:
        return self.outstanding == 0


class ExecutorError(RuntimeError):
    """A task raised in a worker; carries the remote traceback."""


class InlineExecutor:
    """The executors' API with no processes: tasks run in the caller.

    ``pick(ready_ids)`` selects which ready task runs next (an index into
    the list); the default is FIFO.  Tests inject adversarial pickers to
    prove completion order cannot influence results.
    """

    parallel = False

    def __init__(self, handler: TaskHandler,
                 pick: Callable[[list[str]], int] | None = None) -> None:
        self.handler = handler
        self.pick = pick
        self.state: dict = {}
        self.stats = SchedulerStats(jobs=1)

    def broadcast(self, tag: str, value: Any) -> None:
        self.state[tag] = value
        self.stats.broadcasts += 1

    def run(self, tasks: "list[Task]",
            parent_tasks: "list[tuple[str, Callable[[], Any]]]" = ()) -> dict:
        started = time.perf_counter()
        graph = TaskGraph(tasks)
        round_no = self.stats.rounds
        self.stats.rounds += 1
        for task in tasks:
            self.stats.task_deps[task.id] = tuple(task.deps)
            self.stats.task_round[task.id] = round_no
        results: dict[str, Any] = {}
        for task_id, thunk in parent_tasks:
            results[task_id] = thunk()
        while not graph.done:
            if not graph.ready:
                stuck = [t for t, n in graph.pending.items()
                         if n > 0 and t not in results]
                raise ExecutorError(f"dependency cycle among tasks {stuck[:4]}")
            self.stats.max_ready = max(self.stats.max_ready, len(graph.ready))
            position = self.pick(list(graph.ready)) if self.pick else 0
            (task,) = graph.pop_ready(1, position)
            payload = task.bind(results)
            t0 = time.perf_counter()
            results[task.id] = self.handler(task.kind, payload, self.state)
            busy = time.perf_counter() - t0
            self.stats.tasks += 1
            self.stats.chunks += 1
            self.stats.busy_seconds += busy
            self.stats.task_busy[task.id] = busy
            self.stats.task_wave[task.id] = task.wave
            graph.complete(task.id)
        self.stats.span_seconds += time.perf_counter() - started
        return results

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _worker_loop(worker_id: int, inbox, results, handler: TaskHandler) -> None:
    """One pool worker: pull from the inbox forever, push to the results.

    The handler and its captured context arrive through ``fork()`` — nothing
    here is pickled except task payloads and results.
    """
    state: dict = {}
    while True:
        message = inbox.get()
        if message is None:
            return
        kind = message[0]
        if kind == "bcast":
            _, tag, value = message
            state[tag] = value
            continue
        _, batch = message
        out = []
        for task_id, task_kind, payload in batch:
            started = time.perf_counter()
            try:
                value = handler(task_kind, payload, state)
            except BaseException:
                results.put(("err", worker_id, task_id, traceback.format_exc()))
                return
            out.append((task_id, time.perf_counter() - started, value))
        results.put(("done", worker_id, out))


class WorkStealingExecutor:
    """A persistent fork pool driven by the dependency-counted ready queue.

    Workers are forked at construction, inheriting the handler's captured
    context (the parsed program, call graph, registry...).  One executor
    serves every phase of an engine run; phases interleave freely because
    ``run`` is just "submit a task graph, drain it" and the pool never
    restarts in between.
    """

    parallel = True

    def __init__(self, jobs: int, handler: TaskHandler,
                 chunk: int | None = None) -> None:
        if jobs < 2:
            raise ValueError("WorkStealingExecutor needs jobs >= 2; "
                             "use InlineExecutor for serial runs")
        if not fork_available():
            raise RuntimeError("fork start method unavailable")
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.jobs = jobs
        self.max_chunk = chunk if chunk is not None else MAX_CHUNK
        self.stats = SchedulerStats(jobs=jobs, max_chunk=self.max_chunk)
        context = multiprocessing.get_context("fork")
        self._results = context.Queue()
        self._inboxes = []
        self._workers = []
        for worker_id in range(jobs):
            inbox = context.SimpleQueue()
            process = context.Process(
                target=_worker_loop,
                args=(worker_id, inbox, self._results, handler),
                name=f"repro-scheduler-{worker_id}",
                daemon=True)
            process.start()
            self._inboxes.append(inbox)
            self._workers.append(process)
        self._closed = False

    # -- messaging ----------------------------------------------------------

    def broadcast(self, tag: str, value: Any) -> None:
        """Ship (tag, value) to every worker's local state.

        Inbox FIFO order makes this race-free without acks: any task
        dispatched after the broadcast is behind it in every inbox.
        """
        for inbox in self._inboxes:
            inbox.put(("bcast", tag, value))
        self.stats.broadcasts += 1

    def _dispatch(self, graph: TaskGraph, idle: list[int], inflight: dict,
                  results: dict) -> None:
        """Hand ready tasks to idle workers, chunking large backlogs."""
        while idle and graph.ready:
            chunk_size = max(1, min(self.max_chunk,
                                    len(graph.ready) // (self.jobs * 2)))
            batch = graph.pop_ready(chunk_size)
            worker_id = idle.pop()
            message = [(task.id, task.kind, task.bind(results))
                       for task in batch]
            for task in batch:
                self.stats.task_wave[task.id] = task.wave
            inflight[worker_id] = [task.id for task in batch]
            self._inboxes[worker_id].put(("tasks", message))
            self.stats.chunks += 1

    def _next_result(self):
        """Wait for one worker message, watching for dead workers."""
        while True:
            try:
                return self._results.get(timeout=_POLL_SECONDS)
            except Empty:
                dead = [p.name for p in self._workers if not p.is_alive()]
                if dead:
                    raise ExecutorError(
                        f"worker(s) died without reporting: {dead}") from None

    def run(self, tasks: "list[Task]",
            parent_tasks: "list[tuple[str, Callable[[], Any]]]" = ()) -> dict:
        """Drain one task graph; returns {task id: result}.

        ``parent_tasks`` run inline in the parent *after* the first dispatch
        round — the parent is otherwise idle while workers chew, so
        whole-program work (single-shard analyses) overlaps the pool for
        free instead of serializing behind it.
        """
        if self._closed:
            raise ExecutorError("executor already closed")
        started = time.perf_counter()
        graph = TaskGraph(tasks)
        round_no = self.stats.rounds
        self.stats.rounds += 1
        for task in tasks:
            self.stats.task_deps[task.id] = tuple(task.deps)
            self.stats.task_round[task.id] = round_no
        results: dict[str, Any] = {}
        idle = list(range(self.jobs))
        inflight: dict[int, list[str]] = {}
        self.stats.max_ready = max(self.stats.max_ready, len(graph.ready))
        self._dispatch(graph, idle, inflight, results)
        for task_id, thunk in parent_tasks:
            results[task_id] = thunk()
        while not graph.done:
            if not inflight:
                stuck = sorted(t for t, n in graph.pending.items() if n > 0)
                raise ExecutorError(f"dependency cycle among tasks {stuck[:4]}")
            message = self._next_result()
            if message[0] == "err":
                _, worker_id, task_id, remote_traceback = message
                raise ExecutorError(
                    f"task {task_id!r} failed in worker {worker_id}:\n"
                    f"{remote_traceback}")
            _, worker_id, batch = message
            inflight.pop(worker_id, None)
            idle.append(worker_id)
            for task_id, busy, value in batch:
                results[task_id] = value
                self.stats.tasks += 1
                self.stats.busy_seconds += busy
                self.stats.task_busy[task_id] = busy
                graph.complete(task_id)
            self.stats.max_ready = max(self.stats.max_ready, len(graph.ready))
            self._dispatch(graph, idle, inflight, results)
        self.stats.span_seconds += time.perf_counter() - started
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        self._results.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
