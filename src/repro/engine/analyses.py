"""Engine adapters for every registered analysis.

Each adapter maps one of the repro's checkers onto the engine's shared
artifacts and a common report shape:

* ``run_shard(artifacts, functions)`` does the actual checking.  For
  analyses whose work is per-function (``per_unit = True``) the engine calls
  it once per translation unit with that unit's function list, which is how
  the parallel mode shards the corpus; whole-program analyses get a single
  shard with ``functions=None``.  Shard payloads are plain picklable dicts so
  they can cross a ``multiprocessing`` boundary.
* ``merge(artifacts, payloads)`` combines the shard payloads into the final
  :class:`AnalysisReport`.  Serial and parallel runs share this code path,
  which is what makes their results identical by construction.

Findings are normalized dicts (``analysis``, ``kind``, ``function``,
``file``, ``line``, ``message``) so reports can be merged, diffed, sorted
and serialized to JSON without caring which checker produced them.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..analyses.errcheck import check_error_returns
from ..analyses.lockcheck import (
    LockAcquisition,
    LockLeak,
    check_locks,
    derive_report,
)
from ..analyses.stackcheck import analyse_stack
from ..blockstop.checker import check_blockstop
from ..blockstop.runtime_checks import RuntimeCheckSet
from ..ccount.delayed_free import (
    count_delayed_scopes_in,
    count_pointer_nullouts_in,
    count_rtti_sites_in,
)
from ..ccount.instrument import CCountInstrumenter
from ..ccount.typeinfo import build_typeinfo
from ..dataflow.context import AnalysisContext
from ..deputy.checker import DeputyOptions, ObligationStatus, check_program
from ..minic import ast_nodes as minic_ast
from ..minic.errors import SourceLocation
from .artifacts import SharedArtifacts

Finding = dict  # normalized: analysis, kind, function, file, line, message


def analysis_context(artifacts: SharedArtifacts,
                     functions: list[str] | None = None) -> AnalysisContext:
    """The one :class:`AnalysisContext` bundle a shard's checker consumes.

    Every checker adapter derives its context here, so the mapping from
    the engine's ``SharedArtifacts`` to the checkers' shared-context API
    lives in exactly one place.
    """
    return AnalysisContext(
        program=artifacts.program,
        type_envs=artifacts.type_envs,
        call_graph=artifacts.graph,
        summaries=artifacts.summaries,
        facts=artifacts.consts,
        functions=functions,
        extras={
            "blocking": artifacts.blocking,
            "irq_handlers": artifacts.irq_handlers,
            "error_returning": artifacts.error_returning,
        },
    )


def make_finding(analysis: str, kind: str, function: str, location: Any,
                 message: str) -> Finding:
    filename = getattr(location, "filename", "") or ""
    line = getattr(location, "line", 0) or 0
    return {"analysis": analysis, "kind": kind, "function": function,
            "file": filename, "line": int(line), "message": message}


def finding_sort_key(finding: Finding) -> tuple:
    return (finding["file"], finding["line"], finding["function"],
            finding["kind"], finding["message"])


@dataclass
class AnalysisReport:
    """One analysis's merged result: findings plus summary metrics."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "findings": self.findings,
                "metrics": self.metrics}

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisReport":
        return cls(name=payload["name"], findings=list(payload.get("findings", [])),
                   metrics=dict(payload.get("metrics", {})))


class EngineAnalysis:
    """Base adapter: one registered analysis over the shared artifacts."""

    name = "base"
    #: Whether run_shard can be restricted to a translation unit's functions.
    per_unit = False
    #: Whether a shard's result can depend on *callees* of its functions
    #: (through summaries, blocking facts, error-return sets...).  The
    #: incremental service folds callee SCC keys into the shard cache key
    #: only when this is set; intraprocedural analyses skip that.
    interprocedural = True

    def run_shard(self, artifacts: SharedArtifacts,
                  functions: list[str] | None) -> dict:
        raise NotImplementedError

    def merge(self, artifacts: SharedArtifacts,
              payloads: list[dict]) -> AnalysisReport:
        raise NotImplementedError

    def shard_salt(self, artifacts: SharedArtifacts) -> str:
        """Extra content folded into this analysis's incremental shard keys.

        Override when ``run_shard`` consumes a *global* artifact that body
        hashes and callee SCC keys don't cover (e.g. errcheck's
        error-returning set).  The empty default means the standard key
        components fully determine the shard payload.
        """
        return ""


class DeputyAnalysis(EngineAnalysis):
    """Deputy's hybrid type checking (static pass; no rewriting)."""

    name = "deputy"
    per_unit = True

    def __init__(self, options: DeputyOptions | None = None) -> None:
        self.options = options or DeputyOptions()

    def run_shard(self, artifacts, functions):
        ctx = analysis_context(artifacts, functions)
        results = check_program(ctx.program, self.options,
                                functions=ctx.functions,
                                env_cache=ctx.type_envs,
                                facts=ctx.facts)
        payload = {"functions": {}, "findings": []}
        for name, result in results.items():
            discharges = {"interval": 0, "relational": 0}
            for obligation in result.obligations:
                if obligation.status is ObligationStatus.STATIC:
                    if obligation.detail == "interval-bounded index":
                        discharges["interval"] += 1
                    elif obligation.detail == "relational-bounded index":
                        discharges["relational"] += 1
            payload["functions"][name] = {
                "trusted": result.trusted,
                "counts": {status.name.lower(): result.count(status)
                           for status in ObligationStatus},
                "discharges": discharges,
            }
            for error in result.errors:
                payload["findings"].append(make_finding(
                    self.name, "static-error", name, error.location, error.message))
        return payload

    def merge(self, artifacts, payloads):
        report = AnalysisReport(name=self.name)
        totals = {status.name.lower(): 0 for status in ObligationStatus}
        discharge_totals = {"interval": 0, "relational": 0}
        trusted_functions = 0
        checked = 0
        for payload in payloads:
            report.findings.extend(payload["findings"])
            for info in payload["functions"].values():
                checked += 1
                trusted_functions += 1 if info["trusted"] else 0
                for key, value in info["counts"].items():
                    totals[key] += value
                for key, value in info.get("discharges", {}).items():
                    discharge_totals[key] += value
        report.findings.sort(key=finding_sort_key)
        report.metrics = {
            "functions_checked": checked,
            "trusted_functions": trusted_functions,
            "obligations_total": sum(totals.values()),
            **{f"obligations_{key}": value for key, value in totals.items()},
            "checks_interval": discharge_totals["interval"],
            "checks_relational": discharge_totals["relational"],
        }
        return report


class BlockStopAnalysis(EngineAnalysis):
    """BlockStop: no blocking calls while interrupts are disabled."""

    name = "blockstop"
    per_unit = False

    def __init__(self, runtime_checks: RuntimeCheckSet | None = None) -> None:
        self.runtime_checks = runtime_checks

    def run_shard(self, artifacts, functions):
        result = check_blockstop(analysis_context(artifacts, functions),
                                 artifacts.precision,
                                 runtime_checks=self.runtime_checks)
        findings = [make_finding(self.name, "blocking-in-atomic-context",
                                 violation.caller, violation.location,
                                 violation.describe())
                    for violation in result.reported]
        return {
            "findings": findings,
            "metrics": {
                "functions_analyzed": len(result.graph),
                "blocking_functions": len(result.blocking.may_block),
                "atomic_call_sites": len(result.atomic_call_sites),
                "irq_handlers": len(result.irq_handlers),
                "violations_reported": len(result.reported),
                "violations_silenced": len(result.silenced),
                "precision": artifacts.precision.name.lower(),
            },
        }

    def merge(self, artifacts, payloads):
        payload = payloads[0]
        findings = sorted(payload["findings"], key=finding_sort_key)
        return AnalysisReport(name=self.name, findings=findings,
                              metrics=payload["metrics"])


class ErrcheckAnalysis(EngineAnalysis):
    """Error-code checking at call sites (§3.1)."""

    name = "errcheck"
    per_unit = True

    def shard_salt(self, artifacts):
        # The whole error-returning set reaches every shard; callee SCC keys
        # already cover the members a unit actually calls, but keying on the
        # full set keeps the cache sound against any use of the rest.
        joined = ",".join(sorted(artifacts.error_returning))
        return hashlib.sha256(joined.encode()).hexdigest()[:32]

    def run_shard(self, artifacts, functions):
        report = check_error_returns(analysis_context(artifacts, functions))
        findings = [make_finding(self.name, "unchecked-error-return",
                                 call.caller, call.location,
                                 f"result of {call.callee}() {call.reason}")
                    for call in report.unchecked]
        return {"findings": findings, "checked_calls": report.checked_calls,
                "passed_to_callee": report.passed_to_callee}

    def merge(self, artifacts, payloads):
        report = AnalysisReport(name=self.name)
        checked = 0
        passed = 0
        for payload in payloads:
            report.findings.extend(payload["findings"])
            checked += payload["checked_calls"]
            passed += payload.get("passed_to_callee", 0)
        report.findings.sort(key=finding_sort_key)
        report.metrics = {
            "error_returning_functions": len(artifacts.error_returning),
            "checked_calls": checked,
            "passed_to_callee": passed,
            "unchecked_calls": len(report.findings),
        }
        return report


class LockcheckAnalysis(EngineAnalysis):
    """Hybrid lock-safety checking (§3.1): ordering + IRQ discipline."""

    name = "lockcheck"
    per_unit = True

    @staticmethod
    def _acq_payload(acq: LockAcquisition) -> dict:
        return {"function": acq.function, "lock": acq.lock,
                "irqsave": acq.irqsave, "held_before": list(acq.held_before),
                "file": acq.location.filename, "line": acq.location.line,
                "column": acq.location.column, "reacquired": acq.reacquired,
                "via_callee": acq.via_callee}

    @staticmethod
    def _acq_restore(raw: dict) -> LockAcquisition:
        return LockAcquisition(
            function=raw["function"], lock=raw["lock"],
            irqsave=raw["irqsave"], held_before=tuple(raw["held_before"]),
            location=SourceLocation(raw.get("file", "<unknown>"),
                                    raw.get("line", 0), raw.get("column", 0)),
            reacquired=raw.get("reacquired", False),
            via_callee=raw.get("via_callee", ""))

    def run_shard(self, artifacts, functions):
        facts = check_locks(analysis_context(artifacts, functions))
        return {
            "acquisitions": [self._acq_payload(acq)
                             for acq in facts.acquisitions],
            "interproc_acquires": [self._acq_payload(acq)
                                   for acq in facts.interproc_acquires],
            "leaks": [{"function": leak.function, "lock": leak.lock,
                       "file": leak.location.filename,
                       "line": leak.location.line,
                       "column": leak.location.column,
                       "via_callee": leak.via_callee}
                      for leak in facts.leaks],
        }

    def merge(self, artifacts, payloads):
        acquisitions = [self._acq_restore(raw) for payload in payloads
                        for raw in payload["acquisitions"]]
        interproc = [self._acq_restore(raw) for payload in payloads
                     for raw in payload.get("interproc_acquires", [])]
        leaks = [
            LockLeak(function=raw["function"], lock=raw["lock"],
                     location=SourceLocation(raw.get("file", "<unknown>"),
                                             raw.get("line", 0),
                                             raw.get("column", 0)),
                     via_callee=raw.get("via_callee", ""))
            for payload in payloads for raw in payload.get("leaks", [])
        ]
        lock_report = derive_report(acquisitions,
                                    irq_functions=artifacts.irq_handlers,
                                    interproc_acquires=interproc,
                                    leaks=leaks)
        report = AnalysisReport(name=self.name)
        for first, second in lock_report.order_violations:
            report.findings.append(make_finding(
                self.name, "lock-order", "", None,
                f"inconsistent lock order: {first} -> {second} and "
                f"{second} -> {first} both observed"))
        for acq in lock_report.irq_violations:
            report.findings.append(make_finding(
                self.name, "irq-discipline", acq.function, acq.location,
                f"{acq.lock} is taken in interrupt context but acquired with "
                f"plain spin_lock in {acq.function}"))
        for acq in lock_report.double_acquires:
            if acq.via_callee:
                report.findings.append(make_finding(
                    self.name, "double-acquire", acq.function, acq.location,
                    f"{acq.lock} is held in {acq.function} when calling "
                    f"{acq.via_callee}, which may acquire it again "
                    f"(interprocedural self-deadlock)"))
            else:
                report.findings.append(make_finding(
                    self.name, "double-acquire", acq.function, acq.location,
                    f"{acq.lock} is acquired while already held in "
                    f"{acq.function} (self-deadlock on a non-recursive lock)"))
        for leak in lock_report.leaked_returns:
            origin = (f" (leaked through {leak.via_callee})"
                      if leak.via_callee else "")
            report.findings.append(make_finding(
                self.name, "returns-with-lock-held", leak.function,
                leak.location,
                f"{leak.function} may return with {leak.lock} still held on "
                f"some path{origin}"))
        report.findings.sort(key=finding_sort_key)
        report.metrics = {
            "acquisitions": len(lock_report.acquisitions),
            "order_pairs": len(lock_report.order_pairs),
            "order_violations": len(lock_report.order_violations),
            "irq_violations": len(lock_report.irq_violations),
            "double_acquires": len(lock_report.double_acquires),
            "leaked_returns": len(lock_report.leaked_returns),
            "irq_context_locks": len(lock_report.irq_context_locks),
        }
        return report


class StackcheckAnalysis(EngineAnalysis):
    """Stack-depth bounding over the shared call graph (§3.1).

    Deliberately uses the points-to-*resolved* graph (the paper reuses the
    BlockStop call graph, indirect edges included): a direct-only graph
    would under-estimate the worst case and miss recursion closed through a
    function pointer.  The ``call_graph`` metric records this basis.
    """

    name = "stackcheck"
    per_unit = False

    def run_shard(self, artifacts, functions):
        stack_report = analyse_stack(artifacts.program, artifacts.graph,
                                     summaries=artifacts.summaries,
                                     condensation=artifacts.condensation)
        findings = [make_finding(self.name, "recursion-needs-runtime-check",
                                 name, None,
                                 f"{name} is (mutually) recursive; stack depth "
                                 "needs a run-time check")
                    for name in sorted(stack_report.recursive_functions)]
        if not stack_report.fits:
            findings.append(make_finding(
                self.name, "stack-overflow-risk", stack_report.deepest_chain[0]
                if stack_report.deepest_chain else "", None,
                f"worst-case stack {stack_report.worst_case} bytes exceeds "
                f"{stack_report.stack_limit}; deepest chain: "
                + " -> ".join(stack_report.deepest_chain)))
        return {
            "findings": findings,
            "metrics": {
                "worst_case_bytes": stack_report.worst_case,
                "stack_limit_bytes": stack_report.stack_limit,
                "fits": stack_report.fits,
                "recursive_functions": len(stack_report.recursive_functions),
                "deepest_chain": list(stack_report.deepest_chain),
                "call_graph": "pointsto_resolved",
            },
        }

    def merge(self, artifacts, payloads):
        payload = payloads[0]
        findings = sorted(payload["findings"], key=finding_sort_key)
        return AnalysisReport(name=self.name, findings=findings,
                              metrics=payload["metrics"])


class CCountAnalysis(EngineAnalysis):
    """CCount instrumentation planning (counts only; shared AST untouched).

    The rewriter mutates trees in place, so planning deep-copies each shard's
    function definitions and instruments the clones — still O(parse-once),
    since nothing is re-parsed, and now shardable per translation unit: every
    census counter is a per-function sum (a function's null-outs depend only
    on its own body), and the type-layout registry is a pure function of the
    shared program, computed once at merge.
    """

    name = "ccount"
    per_unit = True
    #: Purely intraprocedural — an edit to a callee never changes this
    #: analysis's result for the caller's unit, so the incremental service
    #: keys its shards on body hashes alone, without callee SCC keys.
    interprocedural = False

    def run_shard(self, artifacts, functions):
        program = artifacts.program
        if functions is None:
            units = list(program.units)
        else:
            units = [unit for unit in program.units
                     if artifacts.unit_functions.get(unit.filename) == functions]
        instrumenter = CCountInstrumenter(program,
                                          typeinfo=build_typeinfo(program))
        # The census counters run on the *instrumented* clones, matching the
        # established harness census (build_conversion_report): the rewriter
        # turns plain null-out assignments into __ccount_ptr_write calls, so
        # counting before instrumentation would report different numbers for
        # the same metric names.
        clones: list[minic_ast.FuncDef] = []
        top_level: list[minic_ast.Node] = []
        for unit in units:
            for decl in unit.decls:
                if isinstance(decl, minic_ast.FuncDef):
                    clone = copy.deepcopy(decl)
                    instrumenter.instrument_function(clone)
                    clones.append(clone)
                else:
                    top_level.append(decl)
        result = instrumenter.result
        return {
            "findings": [],
            "metrics": {
                "pointer_writes_instrumented": result.pointer_writes_instrumented,
                "pointer_writes_skipped_local": result.pointer_writes_skipped_local,
                "bulk_calls_converted": result.bulk_calls_converted,
                "rtti_sites": (count_rtti_sites_in(clones)
                               + count_rtti_sites_in(top_level)),
                "pointer_nullouts": count_pointer_nullouts_in(clones),
                "delayed_free_scopes": (count_delayed_scopes_in(clones)
                                        + count_delayed_scopes_in(top_level)),
            },
        }

    def merge(self, artifacts, payloads):
        program = artifacts.program
        totals = {
            "pointer_writes_instrumented": 0,
            "pointer_writes_skipped_local": 0,
            "bulk_calls_converted": 0,
            "rtti_sites": 0,
            "pointer_nullouts": 0,
            "delayed_free_scopes": 0,
        }
        for payload in payloads:
            for key in totals:
                totals[key] += payload["metrics"][key]
        # Units defining no functions never get a shard; their top-level
        # code still belongs in the census.
        leftovers = [unit for unit in program.units
                     if not artifacts.unit_functions.get(unit.filename)]
        if leftovers:
            totals["rtti_sites"] += count_rtti_sites_in(leftovers)
            totals["delayed_free_scopes"] += count_delayed_scopes_in(leftovers)
        metrics = {
            "pointer_writes_instrumented": totals["pointer_writes_instrumented"],
            "pointer_writes_skipped_local": totals["pointer_writes_skipped_local"],
            "bulk_calls_converted": totals["bulk_calls_converted"],
            "type_layouts": len(build_typeinfo(program).layouts),
            "rtti_sites": totals["rtti_sites"],
            "pointer_nullouts": totals["pointer_nullouts"],
            "delayed_free_scopes": totals["delayed_free_scopes"],
        }
        return AnalysisReport(name=self.name, findings=[], metrics=metrics)


def diagnostics_report(diagnostics) -> AnalysisReport:
    """Frontend errors as a pseudo-analysis (tolerant mode; never empty).

    ``diagnostics`` is a sequence of :class:`repro.kernel.build.ParseDiagnostic`
    records; the engine and the analysis service attach this report only when
    at least one translation unit failed to parse, so healthy runs are
    byte-identical with strict mode.
    """
    report = AnalysisReport(name="diagnostics")
    for diag in diagnostics:
        report.findings.append(make_finding(
            "diagnostics", diag.kind, "", diag.location,
            f"{diag.filename} skipped: {diag.message}"))
    report.findings.sort(key=finding_sort_key)
    report.metrics = {
        "parse_errors": len(report.findings),
        "skipped_files": sorted({diag.filename for diag in diagnostics}),
    }
    return report


def blocking_witness(artifacts: SharedArtifacts, name: str) -> list[str]:
    """A shortest call chain from ``name`` to a blocking primitive.

    This is the paper's "why might this block" explanation: the path ends
    at an annotated ``blocking`` seed, or at a ``blocking_if_wait``
    allocator when the function only blocks through a GFP_WAIT allocation.
    """
    blocking = artifacts.blocking
    path = artifacts.graph.shortest_path(name, set(blocking.seeds))
    if not path:
        path = artifacts.graph.shortest_path(name, set(blocking.conditional_seeds))
    return path or [name]


def summary_payload(artifacts: SharedArtifacts, name: str) -> dict:
    """One function's summary in JSON shape (CLI callgraph + service API)."""
    summary = artifacts.summaries.get(name)
    if summary is None:
        return {}
    payload = {
        "defined": summary.defined,
        "may_block": summary.may_block,
        "irq_delta": summary.irq_delta,
        "locks_held": [list(pair) for pair in summary.locks_held],
        "locks_released": [list(pair) for pair in summary.locks_released],
        "may_return_held": list(summary.may_return_held),
        "acquires": list(summary.acquires),
        "error_returns": list(summary.error_returns),
        "frame_size": summary.frame_size,
        "stack_depth": summary.stack_depth,
    }
    if summary.may_block:
        payload["witness"] = blocking_witness(artifacts, name)
    return payload


#: Construction order doubles as the default run order.
ANALYSIS_ORDER = ("deputy", "blockstop", "errcheck", "lockcheck",
                  "stackcheck", "ccount")


def make_registry(deputy_options: DeputyOptions | None = None,
                  runtime_checks: RuntimeCheckSet | None = None,
                  ) -> dict[str, EngineAnalysis]:
    """Instantiate every registered analysis adapter, in run order."""
    return {
        "deputy": DeputyAnalysis(deputy_options),
        "blockstop": BlockStopAnalysis(runtime_checks),
        "errcheck": ErrcheckAnalysis(),
        "lockcheck": LockcheckAnalysis(),
        "stackcheck": StackcheckAnalysis(),
        "ccount": CCountAnalysis(),
    }
