"""``python -m repro.engine`` entry point."""

import sys

from .cli import main

sys.exit(main())
