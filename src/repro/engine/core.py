"""The unified analysis engine.

:class:`AnalysisEngine` parses each corpus translation unit exactly once,
derives the shared artifacts (AST, symbol tables, annotations, call graph,
points-to solution) through the content-keyed :class:`ArtifactCache`, and
dispatches every registered analysis over them — serially, or sharded by
translation unit across a ``multiprocessing`` pool.  Per-analysis shard
payloads are merged by the same code path in both modes, so parallel runs
produce byte-identical reports.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..blockstop.pointsto import Precision
from ..blockstop.runtime_checks import RuntimeCheckSet
from ..deputy.checker import DeputyOptions
from ..kernel.build import parse_corpus
from ..kernel.corpus import KERNEL_FILES, CorpusFile
from ..machine.program import Program
from .analyses import (
    ANALYSIS_ORDER,
    AnalysisReport,
    EngineAnalysis,
    finding_sort_key,
    make_registry,
)
from .artifacts import ArtifactCache, SharedArtifacts, build_shared_artifacts

#: Task tuple: (analysis name, shard index, function subset or None).
_Task = tuple[str, int, "list[str] | None"]

#: Worker state inherited through fork(); set only around a parallel run.
_WORKER_CONTEXT: "tuple[SharedArtifacts, dict[str, EngineAnalysis]] | None" = None


def _run_shard_task(task: _Task) -> tuple[str, int, dict]:
    """Execute one shard in a worker (or inline, for the serial path)."""
    assert _WORKER_CONTEXT is not None, "worker context not initialised"
    artifacts, registry = _WORKER_CONTEXT
    name, index, functions = task
    return name, index, registry[name].run_shard(artifacts, functions)


@dataclass
class EngineReport:
    """The merged result of one engine run over the corpus."""

    analyses: dict[str, AnalysisReport] = field(default_factory=dict)
    corpus_files: list[str] = field(default_factory=list)
    precision: str = "type_based"
    jobs: int = 1
    parallel: bool = False
    elapsed_seconds: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)

    # -- queries ------------------------------------------------------------

    def all_findings(self) -> list[dict]:
        collected: list[dict] = []
        for name in sorted(self.analyses):
            collected.extend(self.analyses[name].findings)
        return sorted(collected, key=finding_sort_key)

    @property
    def finding_count(self) -> int:
        return sum(len(report.findings) for report in self.analyses.values())

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro-engine-report/1",
            "corpus_files": self.corpus_files,
            "precision": self.precision,
            "jobs": self.jobs,
            "parallel": self.parallel,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "cache_stats": self.cache_stats,
            "analyses": {name: report.to_dict()
                         for name, report in self.analyses.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineReport":
        report = cls(
            corpus_files=list(payload.get("corpus_files", [])),
            precision=payload.get("precision", "type_based"),
            jobs=int(payload.get("jobs", 1)),
            parallel=bool(payload.get("parallel", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            cache_stats=dict(payload.get("cache_stats", {})),
        )
        for name, raw in payload.get("analyses", {}).items():
            report.analyses[name] = AnalysisReport.from_dict(raw)
        return report

    # -- rendering ----------------------------------------------------------

    def render_text(self) -> str:
        lines = ["== repro analysis engine =="]
        lines.append(f"corpus: {len(self.corpus_files)} translation units; "
                     f"precision {self.precision}; "
                     f"{'parallel, %d jobs' % self.jobs if self.parallel else 'serial'}")
        if self.cache_stats:
            lines.append("cache: {hits} hits, {misses} misses, "
                         "{disk_hits} from disk".format(**self.cache_stats))
        for name in sorted(self.analyses):
            report = self.analyses[name]
            lines.append("")
            lines.append(f"-- {name} --")
            for key in sorted(report.metrics):
                lines.append(f"  {key:>32}: {report.metrics[key]}")
            lines.append(f"  findings: {len(report.findings)}")
            for finding in report.findings:
                where = f"{finding['file']}:{finding['line']}" if finding["file"] else "-"
                lines.append(f"    {where} [{finding['kind']}] "
                             f"{finding['function']}: {finding['message']}")
        lines.append("")
        lines.append(f"total findings: {self.finding_count} "
                     f"({self.elapsed_seconds:.2f}s)")
        return "\n".join(lines)


class AnalysisEngine:
    """Parse once, analyze many: the shared-work front end for all checkers."""

    def __init__(self,
                 files: tuple[CorpusFile, ...] = KERNEL_FILES,
                 defines: dict[str, str] | None = None,
                 precision: Precision = Precision.TYPE_BASED,
                 cache: ArtifactCache | None = None,
                 cache_dir: str | None = None,
                 deputy_options: DeputyOptions | None = None,
                 runtime_checks: RuntimeCheckSet | None = None) -> None:
        self.files = tuple(files)
        self.defines = dict(defines or {})
        self.precision = precision
        self.cache = cache if cache is not None else ArtifactCache(cache_dir)
        self.registry = make_registry(deputy_options, runtime_checks)

    # -- shared artifacts ---------------------------------------------------

    def program_key(self) -> str:
        return self.cache.content_key("program", files=self.files,
                                      defines=self.defines)

    def program(self) -> Program:
        """The parsed, linked corpus — built at most once per content key."""
        return self.cache.get_or_build(
            self.program_key(),
            lambda: parse_corpus(self.files, self.defines))

    def fresh_program(self) -> Program:
        """A private, mutation-safe copy of the parsed corpus.

        Instrumenting builds (Deputy/CCount rewriting, the hbench harness)
        mutate the AST in place; they get a deep copy of the cached parse
        instead of re-parsing the corpus.
        """
        return copy.deepcopy(self.program())

    def fresh_kernel_program(self, config=None) -> Program | None:
        """A mutation-safe parse for a kernel build, or None on mismatch.

        Kernel builds parse ``KERNEL_FILES`` with ``config.defines``; this
        engine's cached parse can only substitute for that when its own file
        set and defines match.  Returning ``None`` tells ``build_kernel`` to
        parse from scratch rather than silently build the wrong corpus.
        """
        defines = dict(getattr(config, "defines", None) or {})
        if self.files == KERNEL_FILES and defines == self.defines:
            return self.fresh_program()
        return None

    def kernel_program_factory(self):
        """A ``program_factory`` for the hbench/boot path (see above)."""
        return self.fresh_kernel_program

    def artifacts(self) -> SharedArtifacts:
        """Shared artifacts for the configured precision (memory-cached)."""
        key = self.cache.content_key(
            "artifacts", files=self.files, defines=self.defines,
            extra={"precision": self.precision.name})
        return self.cache.get_or_build(
            key, lambda: build_shared_artifacts(self.program(), self.precision),
            persist=False)

    # -- running ------------------------------------------------------------

    def resolve_analyses(self, analyses: Iterable[str] | str | None) -> list[str]:
        """Normalize an analysis selection ('all', CSV, or a list) to names."""
        if analyses is None or analyses == "all":
            return [name for name in ANALYSIS_ORDER if name in self.registry]
        if isinstance(analyses, str):
            analyses = [part.strip() for part in analyses.split(",") if part.strip()]
        names: list[str] = []
        for name in analyses:
            if name == "all":
                names.extend(n for n in ANALYSIS_ORDER if n in self.registry)
                continue
            if name not in self.registry:
                known = ", ".join(sorted(self.registry))
                raise KeyError(f"unknown analysis {name!r} (known: {known})")
            names.append(name)
        seen: set[str] = set()
        return [n for n in names if not (n in seen or seen.add(n))]

    def _build_tasks(self, names: list[str],
                     artifacts: SharedArtifacts) -> list[_Task]:
        tasks: list[_Task] = []
        for name in names:
            adapter = self.registry[name]
            if adapter.per_unit:
                index = 0
                for functions in artifacts.unit_functions.values():
                    if not functions:
                        continue
                    tasks.append((name, index, functions))
                    index += 1
            else:
                tasks.append((name, 0, None))
        return tasks

    def run(self, analyses: Iterable[str] | str | None = None,
            jobs: int = 1) -> EngineReport:
        """Run the selected analyses over the corpus and merge their reports."""
        global _WORKER_CONTEXT
        start = time.perf_counter()
        names = self.resolve_analyses(analyses)
        artifacts = self.artifacts()
        tasks = self._build_tasks(names, artifacts)

        use_parallel = (jobs > 1 and len(tasks) > 1
                        and "fork" in multiprocessing.get_all_start_methods())
        _WORKER_CONTEXT = (artifacts, self.registry)
        try:
            if use_parallel:
                context = multiprocessing.get_context("fork")
                with context.Pool(processes=jobs) as pool:
                    results = pool.map(_run_shard_task, tasks)
            else:
                results = [_run_shard_task(task) for task in tasks]
        finally:
            _WORKER_CONTEXT = None

        shards: dict[str, list[tuple[int, dict]]] = {name: [] for name in names}
        for name, index, payload in results:
            shards[name].append((index, payload))

        report = EngineReport(
            corpus_files=[f.filename for f in self.files],
            precision=self.precision.name.lower(),
            jobs=jobs if use_parallel else 1,
            parallel=use_parallel,
        )
        for name in names:
            payloads = [payload for _, payload in sorted(shards[name])]
            report.analyses[name] = self.registry[name].merge(artifacts, payloads)
        report.elapsed_seconds = time.perf_counter() - start
        report.cache_stats = {"hits": self.cache.hits,
                              "misses": self.cache.misses,
                              "disk_hits": self.cache.disk_hits}
        return report
