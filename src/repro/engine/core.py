"""The unified analysis engine.

:class:`AnalysisEngine` parses each corpus translation unit exactly once,
derives the shared artifacts (AST, symbol tables, annotations, call graph,
points-to solution) through the content-keyed :class:`ArtifactCache`, and
dispatches every registered analysis over them — serially, or sharded by
translation unit across a ``multiprocessing`` pool.  Per-analysis shard
payloads are merged by the same code path in both modes, so parallel runs
produce byte-identical reports.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..blockstop.pointsto import Precision
from ..blockstop.runtime_checks import RuntimeCheckSet
from ..dataflow.domains import (
    DEFAULT_DOMAINS,
    domain_fingerprint,
    solve_program_facts,
)
from ..dataflow.interproc import (
    build_context,
    callgraph_fingerprint,
    solve_scc,
    solve_summaries,
)
from ..deputy.checker import DeputyOptions
from ..kernel.build import ParseDiagnostic, parse_corpus, parse_corpus_tolerant
from ..kernel.corpus import KERNEL_FILES, CorpusFile
from ..machine.program import Program
from .analyses import (
    ANALYSIS_ORDER,
    AnalysisReport,
    EngineAnalysis,
    diagnostics_report,
    finding_sort_key,
    make_registry,
)
from .artifacts import (
    ArtifactCache,
    SharedArtifacts,
    build_shared_artifacts,
    unit_function_map,
)
from .scheduler import (
    InlineExecutor,
    Task,
    WorkStealingExecutor,
    fork_available,
    resolve_jobs,
    usable_cpus,
)

#: Scheduler modes accepted by :meth:`AnalysisEngine.run`.  ``work-steal``
#: (the default) drives all phases through one persistent ready-queue
#: executor; ``wave`` keeps the historical per-wave ``Pool.map`` barriers
#: (the bench comparison baseline); ``inline`` runs the work-stealing task
#: graph in-process (tests use it to scramble completion order).
SCHEDULER_MODES = ("work-steal", "wave", "inline")

#: Task tuple: (analysis name, shard index, function subset or None).
_Task = tuple[str, int, "list[str] | None"]

#: Worker state inherited through fork(); set only around a parallel run.
_WORKER_CONTEXT: "tuple[SharedArtifacts, dict[str, EngineAnalysis]] | None" = None

#: (context, graph) for summary-wave workers, inherited through fork().
_SUMMARY_CONTEXT = None

#: Program for constant-facts workers, inherited through fork().
_CONSTS_CONTEXT = None


def _run_shard_task(task: _Task) -> tuple[str, int, dict]:
    """Execute one shard in a worker (or inline, for the serial path)."""
    assert _WORKER_CONTEXT is not None, "worker context not initialised"
    artifacts, registry = _WORKER_CONTEXT
    name, index, functions = task
    return name, index, registry[name].run_shard(artifacts, functions)


def _solve_scc_task(task: "tuple[tuple[str, ...], dict]") -> dict:
    """Solve one SCC in a worker; program/graph arrive via fork inheritance,
    the (small) dependency summaries travel with the task."""
    assert _SUMMARY_CONTEXT is not None, "summary context not initialised"
    ctx, graph = _SUMMARY_CONTEXT
    scc, solved = task
    return solve_scc(scc, ctx, graph, solved)


def _solve_consts_task(functions: "list[str]") -> dict:
    """Solve one translation unit's condition facts in a worker."""
    assert _CONSTS_CONTEXT is not None, "consts context not initialised"
    return solve_program_facts(_CONSTS_CONTEXT, functions)


def _make_steal_handler(program, graph, pointsto, precision, registry):
    """The per-worker task handler for work-steal mode.

    Returns a closure over the phase-independent artifacts (parsed program,
    resolved call graph, points-to solution) — workers receive it through
    ``fork()`` at executor construction, so none of it is ever pickled.
    Per-phase inputs arrive with the task payload (dependency summaries,
    member constant facts) or via broadcast (the merged artifacts the
    checker shards consume); ``memo`` holds what a worker derives once and
    reuses across tasks (its summary context, its assembled artifact view).
    """
    memo: dict = {}

    def handler(kind, payload, state):
        if kind == "consts":
            return solve_program_facts(program, payload)
        if kind == "scc":
            scc, needed, member_facts = payload
            ctx = memo.get("ctx")
            if ctx is None:
                ctx = memo["ctx"] = build_context(program, graph)
            # Shipped facts are pure functions of the sources, so the
            # context's memo can only ever grow consistent entries; any
            # member missing one falls back to the lazy in-context solve.
            ctx.consts.update(member_facts)
            return solve_scc(scc, ctx, graph, needed)
        if kind == "shard":
            name, index, functions = payload
            # Inline executors share the parent's memory: use the real
            # artifacts (warm type envs and all) instead of assembling a
            # worker-side view from broadcast pieces.
            shared = state.get("shared_artifacts")
            if shared is not None:
                return name, index, registry[name].run_shard(shared,
                                                             functions)
            data = state["artifacts"]
            artifacts = memo.get("artifacts")
            if artifacts is None or memo.get("artifacts_from") is not data:
                artifacts = SharedArtifacts(
                    program=program,
                    precision=precision,
                    graph=graph,
                    pointsto=pointsto,
                    consts=data["consts"],
                    condensation=data["condensation"],
                    summaries=data["summaries"],
                    blocking=data["blocking"],
                    irq_handlers=data["irq_handlers"],
                    error_returning=data["error_returning"],
                    annotations=data["annotations"],
                    unit_functions=unit_function_map(program))
                memo["artifacts"] = artifacts
                memo["artifacts_from"] = data
            return name, index, registry[name].run_shard(artifacts, functions)
        raise ValueError(f"unknown task kind {kind!r}")

    return handler


def _scc_payload_fn(scc, graph, condensation, unit_of, cached_consts,
                    spec_facts=None):
    """Late-bound payload for one SCC task: assembled at dispatch time from
    the results of the tasks it depends on.

    Ships ``(scc, needed, member_facts)`` — the out-of-component callee
    summaries this component's fixpoint can look up, and the constant
    facts of its member functions (from the members' consts tasks, the
    parse workers' speculative solves, or the cached artifact when this
    run only re-solves summaries)."""

    def payload_fn(results):
        members = set(scc)
        needed = {}
        for name in scc:
            for callee in graph.edges.get(name, ()):
                if callee in members or callee in needed:
                    continue
                owner = condensation.scc_of.get(callee)
                solved = results.get(f"scc:{owner}")
                if solved is not None and callee in solved:
                    needed[callee] = solved[callee]
        member_facts = {}
        for name in scc:
            if cached_consts is not None:
                if name in cached_consts:
                    member_facts[name] = cached_consts[name]
                continue
            if spec_facts is not None and name in spec_facts:
                member_facts[name] = spec_facts[name]
                continue
            shard = results.get(f"consts:{unit_of.get(name)}")
            if shard is not None and name in shard:
                member_facts[name] = shard[name]
        return (scc, needed, member_facts)

    return payload_fn


@dataclass
class EngineReport:
    """The merged result of one engine run over the corpus."""

    analyses: dict[str, AnalysisReport] = field(default_factory=dict)
    corpus_files: list[str] = field(default_factory=list)
    precision: str = "type_based"
    jobs: int = 1
    parallel: bool = False
    elapsed_seconds: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)
    summary_stats: dict = field(default_factory=dict)
    #: Wall-clock breakdown and scheduler counters — timing-dependent, so
    #: (like ``cache_stats``) excluded from byte-identity comparisons.
    perf: dict = field(default_factory=dict)

    # -- queries ------------------------------------------------------------

    def all_findings(self) -> list[dict]:
        collected: list[dict] = []
        for name in sorted(self.analyses):
            collected.extend(self.analyses[name].findings)
        return sorted(collected, key=finding_sort_key)

    @property
    def finding_count(self) -> int:
        return sum(len(report.findings) for report in self.analyses.values())

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro-engine-report/1",
            "corpus_files": self.corpus_files,
            "precision": self.precision,
            "jobs": self.jobs,
            "parallel": self.parallel,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "cache_stats": self.cache_stats,
            "summary_stats": self.summary_stats,
            "perf": self.perf,
            "analyses": {name: report.to_dict()
                         for name, report in self.analyses.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineReport":
        report = cls(
            corpus_files=list(payload.get("corpus_files", [])),
            precision=payload.get("precision", "type_based"),
            jobs=int(payload.get("jobs", 1)),
            parallel=bool(payload.get("parallel", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            cache_stats=dict(payload.get("cache_stats", {})),
            summary_stats=dict(payload.get("summary_stats", {})),
            perf=dict(payload.get("perf", {})),
        )
        for name, raw in payload.get("analyses", {}).items():
            report.analyses[name] = AnalysisReport.from_dict(raw)
        return report

    # -- rendering ----------------------------------------------------------

    def render_text(self) -> str:
        lines = ["== repro analysis engine =="]
        lines.append(f"corpus: {len(self.corpus_files)} translation units; "
                     f"precision {self.precision}; "
                     f"{'parallel, %d jobs' % self.jobs if self.parallel else 'serial'}")
        if self.cache_stats:
            lines.append("cache: {hits} hits, {misses} misses, "
                         "{disk_hits} from disk".format(**self.cache_stats))
        if self.perf:
            phases = self.perf.get("phases", {})
            scheduler = self.perf.get("scheduler", {})
            lines.append(
                "perf: parse {parse:.2f}s, artifacts {artifacts:.2f}s, "
                "checkers {checkers:.2f}s [{mode}]".format(
                    parse=phases.get("parse", 0.0),
                    artifacts=phases.get("artifacts", 0.0),
                    checkers=phases.get("checkers", 0.0),
                    mode=scheduler.get("mode", "serial")))
            if "worker_idle_ratio" in scheduler:
                lines.append(
                    "scheduler: {tasks} tasks in {chunks} chunks, "
                    "max ready {max_ready}, idle {idle:.0%}".format(
                        tasks=scheduler.get("tasks", 0),
                        chunks=scheduler.get("chunks", 0),
                        max_ready=scheduler.get("max_ready", 0),
                        idle=scheduler.get("worker_idle_ratio", 0.0)))
        if self.summary_stats:
            lines.append(
                "summaries: {functions} functions in {sccs} SCCs "
                "({recursive} recursive) over {waves} waves; "
                "cache {cache}".format(
                    functions=self.summary_stats.get("functions", 0),
                    sccs=self.summary_stats.get("sccs", 0),
                    recursive=self.summary_stats.get("recursive_functions", 0),
                    waves=self.summary_stats.get("waves", 0),
                    cache="hit" if self.summary_stats.get("cache_hit")
                    else "miss"))
            lines.append(
                "consts: {functions} functions solved, {pruned} with "
                "infeasible edges ({edges} edges pruned); cache {cache}".format(
                    functions=self.summary_stats.get("consts_functions", 0),
                    pruned=self.summary_stats.get("consts_pruned_functions", 0),
                    edges=self.summary_stats.get("consts_infeasible_edges", 0),
                    cache="hit" if self.summary_stats.get("consts_cache_hit")
                    else "miss"))
            lines.append(
                "intervals: {pruned} functions with interval-only pruning "
                "({edges} edges pruned)".format(
                    pruned=self.summary_stats.get(
                        "intervals_pruned_functions", 0),
                    edges=self.summary_stats.get(
                        "intervals_infeasible_edges", 0)))
            lines.append(
                "octagons: {pruned} functions with relational-only pruning "
                "({edges} edges pruned)".format(
                    pruned=self.summary_stats.get(
                        "octagons_pruned_functions", 0),
                    edges=self.summary_stats.get(
                        "octagons_infeasible_edges", 0)))
        for name in sorted(self.analyses):
            report = self.analyses[name]
            lines.append("")
            lines.append(f"-- {name} --")
            for key in sorted(report.metrics):
                lines.append(f"  {key:>32}: {report.metrics[key]}")
            lines.append(f"  findings: {len(report.findings)}")
            for finding in report.findings:
                where = f"{finding['file']}:{finding['line']}" if finding["file"] else "-"
                lines.append(f"    {where} [{finding['kind']}] "
                             f"{finding['function']}: {finding['message']}")
        lines.append("")
        lines.append(f"total findings: {self.finding_count} "
                     f"({self.elapsed_seconds:.2f}s)")
        return "\n".join(lines)


class AnalysisEngine:
    """Parse once, analyze many: the shared-work front end for all checkers."""

    def __init__(self,
                 files: tuple[CorpusFile, ...] = KERNEL_FILES,
                 defines: dict[str, str] | None = None,
                 precision: Precision = Precision.TYPE_BASED,
                 cache: ArtifactCache | None = None,
                 cache_dir: str | None = None,
                 cache_max_mb: float | None = None,
                 tolerant: bool = False,
                 deputy_options: DeputyOptions | None = None,
                 runtime_checks: RuntimeCheckSet | None = None) -> None:
        self.files = tuple(files)
        self.defines = dict(defines or {})
        self.precision = precision
        self.cache = (cache if cache is not None
                      else ArtifactCache(cache_dir, max_mb=cache_max_mb))
        #: Tolerant mode isolates frontend errors per translation unit: the
        #: broken file becomes a structured ``diagnostics`` finding and every
        #: other unit is still analyzed.  Strict mode (the default) raises.
        self.tolerant = tolerant
        self.registry = make_registry(deputy_options, runtime_checks)
        #: Whether the last summary solve was served from the cache; None
        #: until a solve is attempted (e.g. artifacts were memory-cached).
        self._summary_cache_hit: bool | None = None
        #: Same flag for the constant-facts artifact, plus its solve time
        #: (0.0 on a cache hit; excluded from deterministic report fields).
        self._consts_cache_hit: bool | None = None
        self._consts_solve_seconds: float = 0.0
        #: The run's persistent executor (work-steal/inline modes).  Created
        #: by the first phase that schedules work, reused by every later
        #: phase of the same run, closed when the run finishes.
        self._executor = None
        #: Test hook: ready-queue pick function for the inline executor
        #: (scrambles completion order to prove determinism).
        self._inline_pick = None
        #: Stats from the last parallel parse (None when the serial parser
        #: built the program), and the constant facts its workers solved
        #: speculatively while parsing — exact ``facts_of`` results for
        #: functions of adopted TUs, so the consts phase skips them.
        self._parse_stats = None
        self._speculative_facts: dict = {}
        #: Dispatch chunk override for the work-stealing executor
        #: (``--chunk``); None keeps the scheduler default.
        self._chunk: int | None = None

    # -- shared artifacts ---------------------------------------------------

    def program_key(self) -> str:
        kind = "program-tolerant" if self.tolerant else "program"
        return self.cache.content_key(kind, files=self.files,
                                      defines=self.defines)

    def program(self, jobs: int = 1,
                parse_mode: str | None = None) -> Program:
        """The parsed, linked corpus — built at most once per content key.

        With ``jobs > 1`` (or an explicit ``parse_mode``) the build runs the
        two-pass speculative parallel parser instead of the serial
        front-end; the replay pass makes the result byte-identical either
        way, so both paths share one cache key.
        """
        if self.tolerant:
            return self._tolerant_parse(jobs, parse_mode)[0]

        def build() -> Program:
            if jobs > 1 or parse_mode is not None:
                from ..kernel.parallel import parse_corpus_parallel
                result = parse_corpus_parallel(
                    self.files, self.defines, jobs=jobs, mode=parse_mode)
                self._parse_stats = result.stats
                self._speculative_facts = dict(result.facts)
                return result.program
            return parse_corpus(self.files, self.defines)

        return self.cache.get_or_build(self.program_key(), build)

    def _tolerant_parse(self, jobs: int = 1, parse_mode: str | None = None
                        ) -> "tuple[Program, tuple[ParseDiagnostic, ...]]":
        def build():
            if jobs > 1 or parse_mode is not None:
                from ..kernel.parallel import parse_corpus_parallel
                result = parse_corpus_parallel(
                    self.files, self.defines, jobs=jobs, tolerant=True,
                    mode=parse_mode)
                self._parse_stats = result.stats
                self._speculative_facts = dict(result.facts)
                return (result.program, result.diagnostics)
            return parse_corpus_tolerant(self.files, self.defines)

        return self.cache.get_or_build(self.program_key(), build)

    def parse_diagnostics(self) -> tuple[ParseDiagnostic, ...]:
        """Per-file frontend errors (tolerant mode only; else empty)."""
        if not self.tolerant:
            return ()
        return self._tolerant_parse()[1]

    def fresh_program(self) -> Program:
        """A private, mutation-safe copy of the parsed corpus.

        Instrumenting builds (Deputy/CCount rewriting, the hbench harness)
        mutate the AST in place; they get a deep copy of the cached parse
        instead of re-parsing the corpus.
        """
        return copy.deepcopy(self.program())

    def fresh_kernel_program(self, config=None) -> Program | None:
        """A mutation-safe parse for a kernel build, or None on mismatch.

        Kernel builds parse ``KERNEL_FILES`` with ``config.defines``; this
        engine's cached parse can only substitute for that when its own file
        set and defines match.  Returning ``None`` tells ``build_kernel`` to
        parse from scratch rather than silently build the wrong corpus.
        """
        defines = dict(getattr(config, "defines", None) or {})
        if self.files == KERNEL_FILES and defines == self.defines:
            return self.fresh_program()
        return None

    def kernel_program_factory(self):
        """A ``program_factory`` for the hbench/boot path (see above)."""
        return self.fresh_kernel_program

    def artifacts(self, jobs: int = 1,
                  scheduler: str = "wave") -> SharedArtifacts:
        """Shared artifacts for the configured precision (memory-cached).

        In ``wave`` mode with ``jobs > 1`` the interprocedural summary
        computation is scheduled in SCC waves across a fork pool —
        components of the same wave are mutually independent, so the merged
        result is byte-identical with the serial bottom-up order by
        construction.  In ``work-steal``/``inline`` mode the constant-facts
        and summary phases are instead solved over one dependency-counted
        task graph on the run's persistent executor (see
        :meth:`_phase_solver`); the merge replays serial order either way.
        """
        key = self.cache.content_key(
            "artifacts", files=self.files, defines=self.defines,
            extra={"precision": self.precision.name})
        if scheduler in ("work-steal", "inline"):
            return self.cache.get_or_build(
                key,
                lambda: build_shared_artifacts(
                    self.program(), self.precision,
                    phase_solver=lambda program, graph, pointsto, condensation:
                    self._phase_solver(program, graph, pointsto, condensation,
                                       jobs, scheduler)),
                persist=False)
        return self.cache.get_or_build(
            key,
            lambda: build_shared_artifacts(
                self.program(), self.precision,
                summary_solver=lambda program, graph, condensation, consts:
                self._solve_summaries(program, graph, condensation, jobs,
                                      consts),
                consts_solver=lambda program:
                self._solve_consts(program, jobs)),
            persist=False)

    def _solve_consts(self, program, jobs: int):
        """The cache-aware condition-facts solver injected into the build.

        The artifact depends only on the parsed sources (files + defines +
        package version) and the abstract-domain set, not on points-to
        precision, so engines at different precisions share one entry —
        while flipping the domain product (the ``domains`` salt) invalidates
        persisted facts instead of misreading them.  Functions are
        independent, so ``--jobs N`` shards the solve by translation unit
        over the fork pool; the merge re-orders results into program
        function order, making serial and parallel artifacts byte-identical.
        """
        key = self.cache.content_key(
            "consts", files=self.files, defines=self.defines,
            extra={"domains": domain_fingerprint(DEFAULT_DOMAINS)})
        self._consts_cache_hit = self.cache.contains(key)

        def build():
            start = time.perf_counter()
            value = self._compute_consts(program, jobs)
            self._consts_solve_seconds = time.perf_counter() - start
            return value

        return self.cache.get_or_build(key, build)

    def _compute_consts(self, program, jobs: int):
        global _CONSTS_CONTEXT
        unit_map = [functions for functions
                    in unit_function_map(program).values() if functions]
        use_parallel = (jobs > 1 and len(unit_map) > 1
                        and "fork" in multiprocessing.get_all_start_methods())
        if not use_parallel:
            return solve_program_facts(program)
        _CONSTS_CONTEXT = program
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=jobs) as pool:
                shards = pool.map(_solve_consts_task, unit_map)
        finally:
            _CONSTS_CONTEXT = None
        merged: dict = {}
        for shard in shards:
            merged.update(shard)
        # Deterministic ordering: program definition order, as serial does.
        return {name: merged[name] for name, _ in program.functions_subset(None)
                if name in merged}

    def _solve_summaries(self, program, graph, condensation, jobs: int,
                         consts=None):
        """The cache-aware summary solver injected into the artifact build.

        The cache key mixes in the call-graph fingerprint — any change to
        the corpus or to the points-to resolution produces a different graph
        hash and invalidates persisted summaries; the summaries themselves
        are small, picklable records, so they round-trip through the
        on-disk layer (``--cache-dir``) across processes.  ``consts`` (the
        engine's constant-facts artifact) seeds the computation so summaries
        are taken over the pruned CFGs; the sources determine both artifacts,
        so the shared files+defines key components keep them in lockstep.
        """
        key = self.cache.content_key(
            "summaries", files=self.files, defines=self.defines,
            extra={"precision": self.precision.name,
                   "callgraph": callgraph_fingerprint(graph)})
        self._summary_cache_hit = self.cache.contains(key)
        return self.cache.get_or_build(
            key, lambda: self._compute_summaries(program, graph,
                                                 condensation, jobs, consts))

    def _compute_summaries(self, program, graph, condensation, jobs: int,
                           consts=None):
        global _SUMMARY_CONTEXT
        ctx = build_context(program, graph, consts=consts)
        use_parallel = (jobs > 1
                        and "fork" in multiprocessing.get_all_start_methods())
        if not use_parallel:
            return solve_summaries(program, graph, condensation, ctx)
        _SUMMARY_CONTEXT = (ctx, graph)
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=jobs) as pool:
                def scc_runner(wave_sccs, _ctx, _graph, solved):
                    # Each task carries only the summaries its component can
                    # actually look up (its members' out-of-SCC callees),
                    # not the whole solved dict — keeping the per-task
                    # pickle payload constant-size as the corpus grows.
                    tasks = []
                    for scc in wave_sccs:
                        members = set(scc)
                        needed = {}
                        for name in scc:
                            for callee in graph.edges.get(name, ()):
                                if callee not in members and callee in solved:
                                    needed[callee] = solved[callee]
                        tasks.append((scc, needed))
                    return pool.map(_solve_scc_task, tasks)

                return solve_summaries(program, graph, condensation, ctx,
                                       scc_runner=scc_runner)
        finally:
            _SUMMARY_CONTEXT = None

    def _ensure_executor(self, program, graph, pointsto, jobs: int,
                         scheduler: str):
        """The run's persistent executor, forked on first use.

        Workers fork *after* points-to resolution (``resolve`` mutates the
        call graph in place), so the handler's inherited view of the graph
        is the final one every phase agrees on.
        """
        if self._executor is None:
            handler = _make_steal_handler(program, graph, pointsto,
                                          self.precision, self.registry)
            # Forking more workers than cores only adds fork/IPC cost while
            # time-slicing the same CPUs — clamp the pool to the affinity
            # mask.  An explicit --jobs >= 2 still gets a real pool (the
            # floor of 2) so parallel behavior stays testable everywhere.
            effective = min(jobs, max(2, usable_cpus()))
            if (scheduler == "inline" or effective < 2
                    or not fork_available()):
                self._executor = InlineExecutor(handler,
                                                pick=self._inline_pick)
                if self._chunk is not None:
                    # Inline dispatch is one-at-a-time, but the stats still
                    # record the requested cap so bench entries compare
                    # like-for-like across hosts.
                    self._executor.stats.max_chunk = self._chunk
            else:
                self._executor = WorkStealingExecutor(effective, handler,
                                                      chunk=self._chunk)
            # Schedule replays compare barrier vs queue at the width the
            # user asked for, even when the host clamped the real pool.
            self._executor.stats.sim_jobs = jobs
        return self._executor

    def _close_executor(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _phase_solver(self, program, graph, pointsto, condensation,
                      jobs: int, scheduler: str):
        """Solve constant facts and summaries as one overlapped task graph.

        Per-TU consts tasks have no dependencies; each SCC task depends on
        the consts tasks covering its member functions plus its callee SCC
        tasks — so summary work starts as soon as *its* TUs' facts exist,
        while other TUs are still being solved, with no phase barrier in
        between.  Dependency summaries and member facts are late-bound into
        each task's payload at dispatch, keeping per-task pickle size
        proportional to the component, not the program.

        Both artifacts keep their existing cache keys: a warm run loads
        them here without scheduling anything, and serial/wave runs share
        the entries.  Merging replays the serial order (program order for
        consts, wave order for summaries), so the artifacts are
        byte-identical with the serial path no matter when tasks finished.
        """
        consts_key = self.cache.content_key(
            "consts", files=self.files, defines=self.defines,
            extra={"domains": domain_fingerprint(DEFAULT_DOMAINS)})
        summaries_key = self.cache.content_key(
            "summaries", files=self.files, defines=self.defines,
            extra={"precision": self.precision.name,
                   "callgraph": callgraph_fingerprint(graph)})
        consts_hit = self.cache.contains(consts_key)
        summaries_hit = self.cache.contains(summaries_key)
        self._consts_cache_hit = consts_hit
        self._summary_cache_hit = summaries_hit
        cached_consts = (self.cache.get_or_build(consts_key, dict)
                         if consts_hit else None)
        if consts_hit and summaries_hit:
            return cached_consts, self.cache.get_or_build(summaries_key, dict)

        executor = self._ensure_executor(program, graph, pointsto, jobs,
                                         scheduler)
        unit_map = {filename: functions for filename, functions
                    in unit_function_map(program).items() if functions}
        unit_of = {name: filename for filename, functions in unit_map.items()
                   for name in functions}

        # Facts the parallel parse workers already solved while parsing:
        # exact facts_of results, so their functions need no consts task.
        # A unit fully covered schedules nothing; partially covered units
        # get a shrunken payload of just the missing names.
        spec_facts = self._speculative_facts if not consts_hit else {}
        solved_units: set[str] = set()

        tasks: list[Task] = []
        if not consts_hit:
            for filename, functions in unit_map.items():
                missing = [name for name in functions
                           if name not in spec_facts]
                if not missing:
                    solved_units.add(filename)
                    continue
                tasks.append(Task(id=f"consts:{filename}", kind="consts",
                                  payload=missing, wave=-1))
        if not summaries_hit:
            wave_of = {index: wave_index
                       for wave_index, wave in enumerate(condensation.waves)
                       for index in wave}
            for index, scc in enumerate(condensation.sccs):
                deps: list[str] = []
                if not consts_hit:
                    deps.extend(sorted({f"consts:{unit_of[name]}"
                                        for name in scc
                                        if name in unit_of
                                        and unit_of[name] not in solved_units}))
                deps.extend(f"scc:{callee}" for callee
                            in condensation.scc_callees.get(index, ()))
                tasks.append(Task(
                    id=f"scc:{index}", kind="scc", deps=tuple(deps),
                    payload_fn=_scc_payload_fn(scc, graph, condensation,
                                               unit_of, cached_consts,
                                               spec_facts or None),
                    wave=wave_of.get(index, 0)))

        results = executor.run(tasks)

        if consts_hit:
            consts = cached_consts
        else:
            merged: dict = dict(spec_facts)
            for filename in unit_map:
                if filename in solved_units:
                    continue
                merged.update(results[f"consts:{filename}"])
            ordered = {name: merged[name]
                       for name, _ in program.functions_subset(None)
                       if name in merged}
            consts = self.cache.get_or_build(consts_key, lambda: ordered)
            self._consts_solve_seconds = sum(
                busy for task_id, busy in executor.stats.task_busy.items()
                if task_id.startswith("consts:"))
        if summaries_hit:
            summaries = self.cache.get_or_build(summaries_key, dict)
        else:
            solved: dict = {}
            for wave in condensation.waves:
                for index in wave:
                    solved.update(results[f"scc:{index}"])
            summaries = self.cache.get_or_build(summaries_key, lambda: solved)
        return consts, summaries

    def summary_stats(self, artifacts: SharedArtifacts) -> dict:
        """Condensation/summary metrics for the report (and the CI bench).

        The ``consts_*`` / ``intervals_*`` / ``octagons_*`` entries describe
        the condition facts artifact (the consts×intervals×octagons
        product): function coverage, how many functions each component
        pruned, and the per-component infeasible-edge counts — each pruned
        edge is attributed to exactly one component (the constant lattice
        first, then intervals, then octagons for edges only the relational
        domain proves dead), so the three edge counters sum to the total.
        All pure functions of the sources, so serial and parallel reports
        agree byte-for-byte (the wall-clock solve time lives in
        ``cache_stats``, which report comparisons already normalize away).
        """
        condensation = artifacts.condensation
        solved = [fc for fc in artifacts.consts.values() if fc is not None]
        interval_edges = sum(len(fc.interval_pruned) for fc in solved)
        octagon_edges = sum(len(fc.octagon_pruned) for fc in solved)
        return {
            "functions": len(artifacts.summaries),
            "sccs": len(condensation.sccs),
            "waves": len(condensation.waves),
            "largest_wave": max((len(w) for w in condensation.waves),
                                default=0),
            "recursive_functions": len(condensation.recursive_functions()),
            "cache_hit": (True if self._summary_cache_hit is None
                          else self._summary_cache_hit),
            "consts_functions": len(solved),
            "consts_pruned_functions": sum(
                1 for fc in solved
                if len(fc.infeasible) > len(fc.interval_pruned)
                + len(fc.octagon_pruned)),
            "consts_infeasible_edges": (sum(len(fc.infeasible)
                                            for fc in solved)
                                        - interval_edges - octagon_edges),
            "consts_cache_hit": (True if self._consts_cache_hit is None
                                 else self._consts_cache_hit),
            "intervals_pruned_functions": sum(
                1 for fc in solved if fc.interval_pruned),
            "intervals_infeasible_edges": interval_edges,
            "octagons_pruned_functions": sum(
                1 for fc in solved if fc.octagon_pruned),
            "octagons_infeasible_edges": octagon_edges,
        }

    # -- running ------------------------------------------------------------

    def resolve_analyses(self, analyses: Iterable[str] | str | None) -> list[str]:
        """Normalize an analysis selection ('all', CSV, or a list) to names."""
        if analyses is None or analyses == "all":
            return [name for name in ANALYSIS_ORDER if name in self.registry]
        if isinstance(analyses, str):
            analyses = [part.strip() for part in analyses.split(",") if part.strip()]
        names: list[str] = []
        for name in analyses:
            if name == "all":
                names.extend(n for n in ANALYSIS_ORDER if n in self.registry)
                continue
            if name not in self.registry:
                known = ", ".join(sorted(self.registry))
                raise KeyError(f"unknown analysis {name!r} (known: {known})")
            names.append(name)
        seen: set[str] = set()
        return [n for n in names if not (n in seen or seen.add(n))]

    def _build_tasks(self, names: list[str],
                     artifacts: SharedArtifacts) -> list[_Task]:
        tasks: list[_Task] = []
        for name in names:
            adapter = self.registry[name]
            if adapter.per_unit:
                index = 0
                for functions in artifacts.unit_functions.values():
                    if not functions:
                        continue
                    tasks.append((name, index, functions))
                    index += 1
            else:
                tasks.append((name, 0, None))
        return tasks

    def _run_shards_steal(self, artifacts: SharedArtifacts,
                          tasks: "list[_Task]", jobs: int, scheduler: str):
        """Run the checker shards on the run's persistent executor.

        The merged artifacts are broadcast once per worker (inbox FIFO
        order guarantees every shard task dispatched afterwards sees them);
        per-unit shards then ship only ``(analysis, index, functions)``.
        Whole-program analyses run inline in the parent, overlapping the
        pool instead of serializing behind it.
        """
        executor = self._ensure_executor(artifacts.program, artifacts.graph,
                                         artifacts.pointsto, jobs, scheduler)
        if executor.parallel:
            executor.broadcast("artifacts", {
                "consts": artifacts.consts,
                "condensation": artifacts.condensation,
                "summaries": artifacts.summaries,
                "blocking": artifacts.blocking,
                "irq_handlers": artifacts.irq_handlers,
                "error_returning": artifacts.error_returning,
                "annotations": artifacts.annotations,
            })
        else:
            executor.broadcast("shared_artifacts", artifacts)
        shard_wave = len(artifacts.condensation.waves) + 1
        steal_tasks: list[Task] = []
        parent_tasks = []
        for name, index, functions in tasks:
            task_id = f"shard:{name}:{index}"
            if functions is None:
                parent_tasks.append(
                    (task_id,
                     lambda name=name, index=index:
                     (name, index,
                      self.registry[name].run_shard(artifacts, None))))
            else:
                steal_tasks.append(Task(id=task_id, kind="shard",
                                        payload=(name, index, functions),
                                        wave=shard_wave))
        results = executor.run(steal_tasks, parent_tasks)
        return list(results.values()), executor.parallel

    def _run_shards_pool(self, artifacts: SharedArtifacts,
                         tasks: "list[_Task]", jobs: int):
        """The historical shard phase: one ``Pool.map`` over all shards."""
        global _WORKER_CONTEXT
        use_parallel = jobs > 1 and len(tasks) > 1 and fork_available()
        _WORKER_CONTEXT = (artifacts, self.registry)
        try:
            if use_parallel:
                context = multiprocessing.get_context("fork")
                with context.Pool(processes=jobs) as pool:
                    results = pool.map(_run_shard_task, tasks)
            else:
                results = [_run_shard_task(task) for task in tasks]
        finally:
            _WORKER_CONTEXT = None
        return results, use_parallel

    @staticmethod
    def _perf_payload(mode: str, phases: dict, executor) -> dict:
        """The report's timing/scheduler block (normalized out of identity
        comparisons alongside ``cache_stats``)."""
        payload = {"phases": {key: round(value, 4)
                              for key, value in phases.items()}}
        scheduler_stats = {"mode": mode}
        if executor is not None:
            scheduler_stats.update(executor.stats.to_dict())
            busy = {"consts": 0.0, "scc": 0.0, "shard": 0.0}
            for task_id, seconds in executor.stats.task_busy.items():
                kind = task_id.split(":", 1)[0]
                if kind in busy:
                    busy[kind] += seconds
            scheduler_stats["busy_by_phase"] = {
                key: round(value, 4) for key, value in busy.items()}
        payload["scheduler"] = scheduler_stats
        return payload

    def run(self, analyses: Iterable[str] | str | None = None,
            jobs: int = 1, scheduler: str = "work-steal",
            chunk: int | None = None) -> EngineReport:
        """Run the selected analyses over the corpus and merge their reports.

        ``jobs=0`` auto-detects ``os.cpu_count()``.  ``scheduler`` selects
        how parallel work is driven: ``work-steal`` (default) runs consts,
        summaries and checker shards over one persistent dependency-counted
        executor with no phase barriers; ``wave`` keeps the historical
        per-wave pools; ``inline`` exercises the work-steal task graph
        in-process.  Serial runs (``jobs=1``) bypass the executor entirely.
        ``chunk`` caps the executor's dispatch batch (``--chunk``).  All
        modes produce byte-identical reports.

        Parallel runs also parse in parallel: the two-pass speculative
        front-end hands adopted TUs' speculative constant facts straight to
        the consts phase, so per-TU solving effectively starts before the
        last TU finishes parsing.
        """
        if scheduler not in SCHEDULER_MODES:
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             f"(known: {', '.join(SCHEDULER_MODES)})")
        jobs = resolve_jobs(jobs)
        self._chunk = chunk
        start = time.perf_counter()
        phases: dict[str, float] = {}
        names = self.resolve_analyses(analyses)
        use_steal = (scheduler == "inline"
                     or (scheduler == "work-steal" and jobs > 1
                         and fork_available()))
        try:
            step = time.perf_counter()
            self.program(jobs=jobs if use_steal else 1,
                         parse_mode=("inline" if scheduler == "inline"
                                     else None))
            phases["parse"] = time.perf_counter() - step
            step = time.perf_counter()
            artifacts = self.artifacts(
                jobs=jobs, scheduler=(scheduler if use_steal else "wave"))
            phases["artifacts"] = time.perf_counter() - step
            tasks = self._build_tasks(names, artifacts)
            step = time.perf_counter()
            if use_steal:
                results, use_parallel = self._run_shards_steal(
                    artifacts, tasks, jobs, scheduler)
            else:
                results, use_parallel = self._run_shards_pool(
                    artifacts, tasks, jobs)
            phases["checkers"] = time.perf_counter() - step
        finally:
            executor = self._executor
            self._close_executor()

        shards: dict[str, list[tuple[int, dict]]] = {name: [] for name in names}
        for name, index, payload in results:
            shards[name].append((index, payload))

        report = EngineReport(
            corpus_files=[f.filename for f in self.files],
            precision=self.precision.name.lower(),
            jobs=jobs if use_parallel else 1,
            parallel=use_parallel,
        )
        for name in names:
            payloads = [payload for _, payload in sorted(shards[name])]
            report.analyses[name] = self.registry[name].merge(artifacts, payloads)
        diagnostics = self.parse_diagnostics()
        if diagnostics:
            report.analyses["diagnostics"] = diagnostics_report(diagnostics)
        report.elapsed_seconds = time.perf_counter() - start
        report.cache_stats = {"hits": self.cache.hits,
                              "misses": self.cache.misses,
                              "disk_hits": self.cache.disk_hits,
                              "evictions": self.cache.evictions,
                              "const_solve_ms": round(
                                  self._consts_solve_seconds * 1000, 3)}
        report.summary_stats = self.summary_stats(artifacts)
        mode = ("serial" if not use_parallel and not use_steal
                else scheduler if use_steal else "wave")
        report.perf = self._perf_payload(mode, phases, executor)
        if self._parse_stats is not None:
            report.perf["parse"] = self._parse_stats.to_dict()
        return report
