"""The unified analysis engine: parse once, analyze everything.

Public surface:

* :class:`AnalysisEngine` — parses the corpus once, memoizes shared
  artifacts, dispatches the registered analyses (serially or sharded by
  translation unit over ``multiprocessing``);
* :class:`ArtifactCache` / :class:`SharedArtifacts` — the content-keyed
  memo table and the artifact bundle every analysis consumes;
* :class:`EngineReport` / :class:`AnalysisReport` — merged, serializable
  results;
* ``python -m repro.engine`` (or the ``repro-engine`` script) — the batch
  CLI.
"""

from .analyses import (
    ANALYSIS_ORDER,
    AnalysisReport,
    EngineAnalysis,
    finding_sort_key,
    make_finding,
    make_registry,
)
from .artifacts import ArtifactCache, SharedArtifacts, build_shared_artifacts
from .core import AnalysisEngine, EngineReport

__all__ = [
    "ANALYSIS_ORDER", "AnalysisReport", "EngineAnalysis",
    "finding_sort_key", "make_finding", "make_registry",
    "ArtifactCache", "SharedArtifacts", "build_shared_artifacts",
    "AnalysisEngine", "EngineReport",
]
