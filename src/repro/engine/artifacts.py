"""Shared analysis artifacts and the content-keyed artifact cache.

Every analysis in this repro is *sound* and whole-program, and all of them
consume the same handful of derived facts: the parsed and linked corpus, the
per-function symbol tables, the merged annotations, the direct call graph,
and the points-to solution for indirect calls.  Before the engine existed
each checker re-derived those facts from scratch (and the harness re-parsed
the corpus per experiment); the :class:`ArtifactCache` memoizes them under
content-derived keys so a whole-corpus run parses each translation unit
exactly once, and repeated runs (CI smoke jobs, the harness) can reuse a
previous run's parse via the optional on-disk layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..analyses.errcheck import find_error_returning_functions
from ..annotations.attrs import AnnotationSet
from ..blockstop.blocking import BlockingInfo, derive_blocking
from ..blockstop.callgraph import CallGraph, build_direct_callgraph
from ..blockstop.checker import find_irq_handlers
from ..blockstop.pointsto import FunctionPointerAnalysis, PointsToResult, Precision
from ..dataflow.domains import FunctionFacts, solve_program_facts
from ..dataflow.interproc import Condensation, condense_callgraph, solve_summaries
from ..dataflow.summaries import FunctionSummary
from ..deputy.typesystem import TypeEnv
from ..kernel.corpus import CorpusFile
from ..machine.program import Program
from ..minic import ast_nodes as ast


class ArtifactCache:
    """A content-keyed memo table with an optional on-disk pickle layer.

    Keys are derived from the *content* that determines an artifact (source
    text, preprocessor defines, analysis parameters), never from object
    identity, so two engines over the same corpus share work and any change
    to a source file invalidates everything derived from it.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_mb: float | None = None) -> None:
        self._memory: dict[str, Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: On-disk budget in bytes; ``None`` disables eviction.  A daemon
        #: run accumulates one pickle per content key forever otherwise.
        self.max_bytes = (int(max_mb * 1024 * 1024)
                          if max_mb is not None else None)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def content_key(kind: str,
                    files: tuple[CorpusFile, ...] = (),
                    defines: dict[str, str] | None = None,
                    extra: dict[str, Any] | None = None) -> str:
        """A stable key for ``kind`` derived from the inputs that produce it.

        The package version is part of every key: artifacts depend on the
        analysis/parser *code* as much as on the sources, so a persisted
        cache must not serve parses made by an older repro release.
        """
        from .. import __version__

        digest = hashlib.sha256()

        def feed(part: str) -> None:
            # Length-prefix every field so adjacent fields can never collide
            # by shifting bytes between them (e.g. 'a.c'+'xb' vs 'a.cx'+'b').
            raw = part.encode()
            digest.update(f"{len(raw)}:".encode())
            digest.update(raw)

        feed(__version__)
        feed(kind)
        for corpus_file in files:
            feed(corpus_file.filename)
            feed(corpus_file.source)
            feed("1" if corpus_file.kernel else "0")
        feed(json.dumps(defines or {}, sort_keys=True))
        feed(json.dumps(extra or {}, sort_keys=True, default=str))
        return f"{kind}-{digest.hexdigest()[:32]}"

    # -- lookup -------------------------------------------------------------

    def get_or_build(self, key: str, builder: Callable[[], Any],
                     persist: bool = True) -> Any:
        """Return the artifact under ``key``, building (and storing) on miss."""
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if persist:
            value = self._load_disk(key)
            if value is not None:
                self.hits += 1
                self.disk_hits += 1
                self._memory[key] = value
                return value
        self.misses += 1
        value = builder()
        self._memory[key] = value
        if persist:
            self._store_disk(key, value)
        return value

    def contains(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer, if any, survives)."""
        self._memory.clear()

    # -- disk layer ---------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _load_disk(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except Exception:
            # A stale or truncated entry is treated as a miss.
            return None
        try:
            # Touch on read: mtime doubles as the LRU clock for eviction.
            os.utime(path)
        except OSError:
            pass
        return value

    def _store_disk(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except Exception:
            # Unpicklable artifacts simply stay memory-only.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self._evict_lru()

    def _evict_lru(self) -> None:
        """Drop least-recently-used pickles until the dir fits the budget."""
        if self.max_bytes is None or self.cache_dir is None:
            return
        entries = []
        for path in self.cache_dir.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1


@dataclass
class SharedArtifacts:
    """Everything the registered analyses consume, derived once per corpus.

    * ``program`` — the parsed, linked, *uninstrumented* corpus (the AST and
      type-registry artifact);
    * ``type_envs`` — per-function symbol tables (lazily filled; the
      points-to pass and the Deputy checker share the same entries);
    * ``annotations`` — merged definition+prototype annotations per function;
    * ``graph``/``pointsto`` — the direct call graph with points-to-resolved
      indirect edges for the chosen precision;
    * ``consts`` — per-function condition facts: the consts×intervals
      reduced product (:mod:`repro.dataflow.domains`) with branch-edge
      refinement — constant and interval environments per CFG block plus
      the infeasible-edge set every condition-aware solve prunes with;
      ``None`` entries mark branchless functions;
    * ``condensation`` — the SCC condensation of that graph, in bottom-up
      (reverse-topological) order, with its parallel-scheduling waves;
    * ``summaries`` — one interprocedural :class:`FunctionSummary` per
      function, solved callees-first over the condensation; every checker's
      cross-function knowledge comes from here;
    * ``blocking`` — the may-block classification (derived from summaries);
    * ``irq_handlers`` — functions registered as interrupt handlers;
    * ``error_returning`` — functions whose negative returns are error codes
      (annotation seeds plus the summaries' error-return sets);
    * ``unit_functions`` — translation-unit filename to the functions it
      defines, in corpus order (the parallel mode's sharding map).
    """

    program: Program
    precision: Precision
    graph: CallGraph
    pointsto: PointsToResult
    consts: dict[str, FunctionFacts | None]
    condensation: Condensation
    summaries: dict[str, FunctionSummary]
    blocking: BlockingInfo
    irq_handlers: set[str]
    error_returning: set[str]
    annotations: dict[str, AnnotationSet]
    type_envs: dict[str, TypeEnv] = field(default_factory=dict)
    unit_functions: dict[str, list[str]] = field(default_factory=dict)

    def env_for(self, name: str) -> TypeEnv | None:
        """The (shared, lazily built) type environment of function ``name``."""
        env = self.type_envs.get(name)
        if env is None:
            func = self.program.functions.get(name)
            if func is None:
                return None
            env = TypeEnv(self.program, func)
            self.type_envs[name] = env
        return env


def unit_function_map(program: Program) -> dict[str, list[str]]:
    """Map each translation unit to the functions it defines, corpus order."""
    mapping: dict[str, list[str]] = {}
    for unit in program.units:
        names = [decl.name for decl in unit.decls if isinstance(decl, ast.FuncDef)]
        mapping[unit.filename] = names
    return mapping


def build_shared_artifacts(program: Program,
                           precision: Precision = Precision.TYPE_BASED,
                           summary_solver=None,
                           consts_solver=None,
                           phase_solver=None) -> SharedArtifacts:
    """Derive every shared artifact from an already parsed corpus.

    ``summary_solver(program, graph, condensation, consts)`` and
    ``consts_solver(program)`` may be supplied to compute the function
    summaries / constant facts elsewhere — the engine passes cache-aware,
    optionally pool-backed solvers; the defaults solve them inline.  The
    constant facts are solved *first* and seeded into the summary
    computation so conditionally-dead effects never reach any summary.

    ``phase_solver(program, graph, pointsto, condensation)`` replaces both:
    it returns ``(consts, summaries)`` in one call, letting the engine's
    work-stealing executor overlap the two phases over a single dependency
    graph (per-TU constant facts feed exactly the SCCs whose members they
    cover, so summary work starts before the last TU's facts are solved).
    The condensation is built first either way — it depends only on the
    resolved call graph.
    """
    graph, indirect_calls = build_direct_callgraph(program)
    type_envs: dict[str, TypeEnv] = {}
    pointsto_pass = FunctionPointerAnalysis(program, precision)
    pointsto_pass.collect()
    pointsto = pointsto_pass.resolve(graph, indirect_calls, envs=type_envs)

    condensation = condense_callgraph(graph)
    if phase_solver is not None:
        consts, summaries = phase_solver(program, graph, pointsto,
                                         condensation)
    else:
        if consts_solver is not None:
            consts = consts_solver(program)
        else:
            consts = solve_program_facts(program)

        if summary_solver is not None:
            summaries = summary_solver(program, graph, condensation, consts)
        else:
            summaries = solve_summaries(program, graph, condensation,
                                        consts=consts)

    blocking = derive_blocking(program, graph, summaries)

    annotations = {name: program.function_annotations(name)
                   for name in program.all_function_names()}

    return SharedArtifacts(
        program=program,
        precision=precision,
        graph=graph,
        pointsto=pointsto,
        consts=consts,
        condensation=condensation,
        summaries=summaries,
        blocking=blocking,
        irq_handlers=find_irq_handlers(program),
        error_returning=find_error_returning_functions(program, summaries),
        annotations=annotations,
        type_envs=type_envs,
        unit_functions=unit_function_map(program),
    )
